"""Ablation E — parallel value checking (the paper's stated future work).

Section 6.2: "our algorithm naturally breaks into parallel processes,
where each possible value can be easily checked independently.  We
believe that this could even further reduce the running time."

Measured on the Figure 7 worst case (every value survives, nothing
prunes): workers = 1 is the serial algorithm; workers > 1 partitions
``V(Q)`` across processes.  The honest result: the speedup is *modest*
— the serial phase (option lists, pruned graph, candidate merging) and
per-worker shipping costs bound the win per Amdahl, matching the
paper's hedged phrasing ("we believe that this could even further
reduce the running time").  The cleaning phase itself parallelises
cleanly; workloads where it dominates (many users × many values) see
the benefit.
"""

import pytest

from repro.core import consistent_coordinate_parallel
from repro.workloads import flight_setup, worst_case_database, worst_case_queries

NUM_FLIGHTS = 400
NUM_USERS = 100


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_ablation_parallel_workers(benchmark, workers):
    db = worst_case_database(NUM_FLIGHTS, NUM_USERS)
    setup = flight_setup()
    queries = worst_case_queries(NUM_USERS)

    result = benchmark.pedantic(
        lambda: consistent_coordinate_parallel(
            db, setup, queries, workers=workers
        ),
        rounds=2,
        iterations=1,
    )
    assert result.found
    assert len(result.candidates) == NUM_FLIGHTS
    benchmark.extra_info["workers"] = workers
