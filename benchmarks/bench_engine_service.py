"""Lifecycle-operation latency: retraction and sharded routing.

Two questions this PR's API redesign raises, measured against
pending-set size (100/300/1000):

* **retract** — a single-query retraction is O(its weak component):
  the graph drops the query in place
  (:meth:`~repro.core.coordination_graph.CoordinationGraph.discard_queries`)
  and the union–find re-splits from surviving edges
  (:meth:`~repro.graphs.UnionFind.replace_component`).  Measured as
  steady-state retract+resubmit cycles against a pre-filled pending
  pool, so the pool size stays constant; per-operation latency is the
  cycle time halved (the resubmit is the already-benchmarked O(component)
  arrival path).  Flat-ish latency across pool sizes is the claim.

* **sharded submit** — routing a coordinating-pair stream through a
  :class:`~repro.core.ShardedCoordinationService` (4 shards) vs a
  single :class:`~repro.core.CoordinationEngine`.  The service pays one
  read-only incident probe per shard per arrival, buying per-shard
  coordination state (the prerequisite for parallel workers); the
  overhead factor vs the single engine is what this series tracks.

Results are emitted as ``BENCH_engine_service.json`` (series keys
``retract``, ``single submit``, ``sharded submit`` — asserted by the CI
smoke step).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_service.py            # full
    PYTHONPATH=src python benchmarks/bench_engine_service.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

from repro.bench import Series, run_series
from repro.bench.reporting import render_series
from repro.core import CoordinationEngine, ShardedCoordinationService
from repro.networks import member_name
from repro.workloads import members_database, partner_query

SIZES = (100, 300, 1000)
SMOKE_SIZES = (60, 120)
OPS = 60       # retract+resubmit cycles per measurement
PAIRS = 40     # coordinating pairs per measurement (2·PAIRS arrivals)
SMOKE_OPS = 15
SMOKE_PAIRS = 10
SHARDS = 4

ABSENT_BASE = 10 ** 6  # partners that never arrive keep the pool pending


def _prefill(engine, pending_size: int) -> None:
    """Load ``pending_size`` forever-waiting queries into an engine or
    service (each posts to a partner that never arrives)."""
    for i in range(pending_size):
        engine.submit(
            partner_query(member_name(i), [member_name(ABSENT_BASE + i)])
        )
    assert len(engine.pending()) == pending_size


def _retract_cycles(engine, pending_size: int, ops: int) -> None:
    """``ops`` retract+resubmit cycles; the pool size stays constant."""
    for k in range(ops):
        name = member_name(k % pending_size)
        engine.retract(name)
        engine.submit(
            partner_query(name, [member_name(ABSENT_BASE + k % pending_size)])
        )


def _timed_pairs(engine, pending_size: int, pairs: int) -> None:
    """Submit ``pairs`` mutually-coordinating pairs; each completes and
    leaves, so the pending size stays ~constant during measurement."""
    base = pending_size
    for k in range(pairs):
        a = member_name(base + 2 * k)
        b = member_name(base + 2 * k + 1)
        engine.submit(partner_query(a, [b]))
        engine.submit(partner_query(b, [a]))


def measure_retract(sizes, ops: int, repeats: int) -> Series:
    dbs = {size: members_database(size=size, seed=2012) for size in sizes}

    def make_point(x, repeat):
        engine = CoordinationEngine(dbs[int(x)])
        _prefill(engine, int(x))
        return lambda: _retract_cycles(engine, int(x), ops)

    return run_series(
        "retract",
        list(sizes),
        make_point,
        repeats=repeats,
        x_label="pending queries",
        y_label=f"seconds per {ops} retract+resubmit cycles",
    )


def measure_submit(name: str, make_engine, sizes, pairs: int, repeats: int) -> Series:
    dbs = {
        size: members_database(size=size + 2 * pairs + 8, seed=2012)
        for size in sizes
    }

    def make_point(x, repeat):
        engine = make_engine(dbs[int(x)])
        _prefill(engine, int(x))
        return lambda: _timed_pairs(engine, int(x), pairs)

    return run_series(
        name,
        list(sizes),
        make_point,
        repeats=repeats,
        x_label="pending queries",
        y_label=f"seconds per {2 * pairs} arrivals",
    )


def _per_op_us(series: Series, ops_per_point: int) -> Dict[int, float]:
    return {int(p.x): p.seconds / ops_per_point * 1e6 for p in series.points}


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_engine_service.py",
        description="Retraction and sharded-routing latency vs pending-set size.",
    )
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument(
        "--out",
        default="BENCH_engine_service.json",
        help="output JSON path (default: ./BENCH_engine_service.json)",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else SIZES
    ops = SMOKE_OPS if args.smoke else OPS
    pairs = SMOKE_PAIRS if args.smoke else PAIRS
    repeats = 1 if args.smoke else 3

    retract = measure_retract(sizes, ops, repeats)
    single = measure_submit(
        "single submit", CoordinationEngine, sizes, pairs, repeats
    )
    sharded = measure_submit(
        "sharded submit",
        lambda db: ShardedCoordinationService(db, shards=SHARDS),
        sizes,
        pairs,
        repeats,
    )

    print(render_series(retract, "Retract+resubmit cycles"))
    print()
    print(render_series(single, "Single engine (baseline)"))
    print()
    print(render_series(sharded, f"Sharded service ({SHARDS} shards)"))
    print()

    retract_us = _per_op_us(retract, 2 * ops)  # cycle = retract + resubmit
    single_us = _per_op_us(single, 2 * pairs)
    sharded_us = _per_op_us(sharded, 2 * pairs)
    overhead = {size: sharded_us[size] / single_us[size] for size in single_us}
    for size in sorted(retract_us):
        print(
            f"pending={size:5d}: retract {retract_us[size]:8.1f} µs/op, "
            f"single {single_us[size]:8.1f} µs/arrival, "
            f"sharded {sharded_us[size]:8.1f} µs/arrival "
            f"(routing overhead {overhead[size]:.2f}×)"
        )

    payload = {
        "benchmark": "engine_service",
        "smoke": args.smoke,
        "shards": SHARDS,
        "ops_per_point": {"retract_cycles": ops, "pair_arrivals": 2 * pairs},
        "repeats": repeats,
        "series": {
            series.name: {
                "x_label": series.x_label,
                "y_label": series.y_label,
                "points": [
                    {
                        "pending": int(p.x),
                        "seconds": p.seconds,
                        "seconds_stdev": p.seconds_stdev,
                        "us_per_op": us_map[int(p.x)],
                    }
                    for p in series.points
                ],
            }
            for series, us_map in (
                (retract, retract_us),
                (single, single_us),
                (sharded, sharded_us),
            )
        },
        "sharded_overhead": {str(size): overhead[size] for size in overhead},
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
