"""Lifecycle-operation latency: retraction, sharded routing, workers.

Three questions the lifecycle/service layers raise, measured against
pending-set size (100/300/1000):

* **retract** — a single-query retraction is O(its weak component):
  the graph drops the query in place
  (:meth:`~repro.core.coordination_graph.CoordinationGraph.discard_queries`)
  and the union–find re-splits from surviving edges
  (:meth:`~repro.graphs.UnionFind.replace_component`).  Measured as
  steady-state retract+resubmit cycles against a pre-filled pending
  pool, so the pool size stays constant; per-operation latency is the
  cycle time halved (the resubmit is the already-benchmarked O(component)
  arrival path).  Flat-ish latency across pool sizes is the claim.

* **sharded submit** — routing a coordinating-pair stream through a
  :class:`~repro.core.ShardedCoordinationService` (4 shards) vs a
  single :class:`~repro.core.CoordinationEngine`.  The service pays one
  read-only incident probe per shard per arrival, buying per-shard
  coordination state (the prerequisite for parallel workers); the
  overhead factor vs the single engine is what this series tracks.

* **worker arrivals** — the concurrent executor's *arrival throughput*:
  time to **accept** a burst of independent (self-coordinating)
  arrivals.  The serial sharded driver evaluates every component
  inline, so accepting an arrival costs routing *plus* evaluation; with
  ``--workers N`` admission is synchronous but evaluation runs on the
  shard workers, so the accept path costs routing only and the
  evaluations overlap.  The drain time (waiting out the overlapped
  evaluations) is reported alongside, not hidden: on a GIL build the
  *total* CPU is unchanged — the workers axis demonstrates accept-path
  decoupling (ingest throughput and latency), and adds parallel
  evaluation only on multi-core/free-threaded builds.  The
  ``workers_speedup`` figure is serial accept µs / workers accept µs.

* **replicated arrivals** — the same worker burst against the
  *replicated* storage backend (``backend="replicated"``): each shard
  evaluates on a private lock-free database replica lazily synced by
  per-relation version stamps, so the evaluation phase never touches
  the shared reader–writer lock.  On a GIL build this mostly measures
  the sync overhead being amortized away (the backends are
  byte-identical in outcomes); on free-threaded builds it is the
  configuration whose data plane scales with cores.

* **process arrivals** — the same burst with ``executor="process"``:
  each shard's engine lives in a worker *process* owning a wire-synced
  replica (``repro.core.procexec``), so evaluations run on separate
  interpreters — the only configuration whose data plane scales with
  cores on GIL builds.  The accept path pays IPC round trips for its
  routing probes (and a probe landing mid-evaluation waits for that
  command's reply), so ``process_speedup`` is an end-to-end figure:
  wire overhead included, not idealized.

* **durable arrivals** — the serial burst with a write-ahead log on
  the accept path (``durability=DurabilityConfig(...)``, DESIGN.md
  §11): every submit appends one wire-encoded journal record before
  evaluating.  Two fsync policies are swept: ``fsync="never"`` (one
  unbuffered ``write()`` per record — kill -9 durable, the deployment
  default for a local disk) and ``fsync="always"`` (a disk barrier per
  record — power-loss durable, and the honest price of it).  The
  ``durable_overhead`` figure is durable-accept µs / in-memory serial
  µs; the ``fsync="never"`` ratio is gated at ≤ 2× in CI.  Each
  measurement runs in a fresh scratch directory under
  ``benchmarks/_scratch/durability/`` (wiped before and after — a
  stale WAL would turn a benchmark into a recovery replay).

A second mode, ``--executor remote``, sweeps the TCP shard fabric
instead: the same arrival burst against loopback
:class:`~repro.core.remote.ShardHost` processes-in-threads, serial and
worker-overlapped, with the in-memory serial driver as the baseline.
It writes a separate payload (``BENCH_engine_service_remote.json``,
benchmark name ``engine_service_remote``) so this file's baseline
stays untouched by fabric-less runs.

Results are emitted as ``BENCH_engine_service.json`` (series keys
``retract``, ``single submit``, ``sharded submit``, ``serial
arrivals``, ``workers arrivals``, ``replicated arrivals``, ``process
arrivals``, ``durable arrivals``, ``durable fsync arrivals`` —
asserted by the CI smoke step).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_service.py            # full
    PYTHONPATH=src python benchmarks/bench_engine_service.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_engine_service.py --workers 4
    PYTHONPATH=src python benchmarks/bench_engine_service.py --executor remote
"""

from __future__ import annotations

import argparse
import itertools
import json
import shutil
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench import Point, Series, run_series
from repro.bench.reporting import render_series
from repro.core import (
    CoordinationEngine,
    EntangledQuery,
    ServiceConfig,
    ShardHost,
    ShardedCoordinationService,
)
from repro.db import DurabilityConfig
from repro.logic import Atom, Variable
from repro.networks import member_name
from repro.workloads import members_database, partner_query

SIZES = (100, 300, 1000)
SMOKE_SIZES = (60, 120)
# The arrival-throughput series sweeps its own pool sizes: the stalled
# join's cost grows with the member table, and the interesting regime
# is evaluation-dominated arrivals (the paper's "most demanding"
# steady state), which needs a few hundred members to materialize.
ARRIVAL_SIZES = (300, 600)
SMOKE_ARRIVAL_SIZES = (200, 400)
OPS = 60       # retract+resubmit cycles per measurement
PAIRS = 40     # coordinating pairs per measurement (2·PAIRS arrivals)
ARRIVALS = 80  # independent stalled-join arrivals per measurement
SMOKE_OPS = 15
SMOKE_PAIRS = 10
SMOKE_ARRIVALS = 30
SHARDS = 4

ABSENT_BASE = 10 ** 6  # partners that never arrive keep the pool pending

#: Scratch space for the durable-arrival measurements.  Every point
#: gets a fresh subdirectory (a stale WAL would make the service replay
#: someone else's run instead of benchmarking), and the whole tree is
#: wiped before and after a run.
SCRATCH = Path(__file__).resolve().parent / "_scratch" / "durability"
_SCRATCH_COUNTER = itertools.count()


def clean_scratch() -> None:
    shutil.rmtree(SCRATCH, ignore_errors=True)


def fresh_durability(fsync: str) -> DurabilityConfig:
    """A durability config rooted in a never-before-used directory.

    ``snapshot_every`` is set beyond the per-point record count so the
    series isolates the per-arrival WAL-append cost; checkpoint cost is
    amortized in deployment and covered by the recovery test suite.
    """
    target = SCRATCH / f"{fsync}-{next(_SCRATCH_COUNTER):04d}"
    shutil.rmtree(target, ignore_errors=True)
    return DurabilityConfig(dir=target, fsync=fsync, snapshot_every=1 << 20)


def _prefill(engine, pending_size: int) -> None:
    """Load ``pending_size`` forever-waiting queries into an engine or
    service (each posts to a partner that never arrives)."""
    for i in range(pending_size):
        engine.submit(
            partner_query(member_name(i), [member_name(ABSENT_BASE + i)])
        )
    assert len(engine.pending()) == pending_size


def _retract_cycles(engine, pending_size: int, ops: int) -> None:
    """``ops`` retract+resubmit cycles; the pool size stays constant."""
    for k in range(ops):
        name = member_name(k % pending_size)
        engine.retract(name)
        engine.submit(
            partner_query(name, [member_name(ABSENT_BASE + k % pending_size)])
        )


def _timed_pairs(engine, pending_size: int, pairs: int) -> None:
    """Submit ``pairs`` mutually-coordinating pairs; each completes and
    leaves, so the pending size stays ~constant during measurement."""
    base = pending_size
    for k in range(pairs):
        a = member_name(base + 2 * k)
        b = member_name(base + 2 * k + 1)
        engine.submit(partner_query(a, [b]))
        engine.submit(partner_query(b, [a]))


def measure_retract(sizes, ops: int, repeats: int) -> Series:
    dbs = {size: members_database(size=size, seed=2012) for size in sizes}

    def make_point(x, repeat):
        engine = CoordinationEngine(dbs[int(x)])
        _prefill(engine, int(x))
        return lambda: _retract_cycles(engine, int(x), ops)

    return run_series(
        "retract",
        list(sizes),
        make_point,
        repeats=repeats,
        x_label="pending queries",
        y_label=f"seconds per {ops} retract+resubmit cycles",
    )


def measure_submit(name: str, make_engine, sizes, pairs: int, repeats: int) -> Series:
    dbs = {
        size: members_database(size=size + 2 * pairs + 8, seed=2012)
        for size in sizes
    }

    def make_point(x, repeat):
        engine = make_engine(dbs[int(x)])
        _prefill(engine, int(x))
        return lambda: _timed_pairs(engine, int(x), pairs)

    return run_series(
        name,
        list(sizes),
        make_point,
        repeats=repeats,
        x_label="pending queries",
        y_label=f"seconds per {2 * pairs} arrivals",
    )


def _per_op_us(series: Series, ops_per_point: int) -> Dict[int, float]:
    return {int(p.x): p.seconds / ops_per_point * 1e6 for p in series.points}


def _stalled_arrival(user: str) -> EntangledQuery:
    """An independent arrival whose evaluation does real join work.

    The postcondition names the user's own head, so the query forms its
    own singleton component with a self-edge — never incident to any
    other arrival, so the accept path never stalls on a busy component,
    but the component *evaluates* (nothing is preprocessed away).  The
    body is a multi-way join whose last atom can never match (it uses
    the user's integer karma as a region), so evaluation enumerates the
    region join before failing and the query stays pending — the
    paper's steady-state "most demanding" case, where most arrivals
    evaluate and keep waiting.  The serial driver pays that evaluation
    inline on every submit; the concurrent executor overlaps it.
    """
    karma = Variable("x")
    region, interest = Variable("r"), Variable("i1")
    body = [
        Atom("Members", [user, region, Variable("i0"), karma]),
        Atom("Members", [Variable("v1"), region, interest, Variable("k1")]),
        Atom("Members", [Variable("v2"), region, interest, Variable("k2")]),
        # Karma values are integers, regions are strings: no row can
        # ever match, but the evaluator only discovers that after
        # walking the (v1, v2) join — honest, late-failing work.
        Atom("Members", [Variable("w"), karma, interest, Variable("k3")]),
    ]
    posts = [Atom("R", [Variable("y0"), user])]
    head = [Atom("R", [karma, user])]
    return EntangledQuery(user, posts, head, body)


def measure_arrivals(
    name: str,
    workers: int,
    threaded: bool,
    sizes,
    arrivals: int,
    repeats: int,
    backend: str = "shared",
    executor: str = "thread",
    fsync: Optional[str] = None,
) -> Series:
    """Accept-throughput series for a burst of independent arrivals.

    Each arrival is a self-coordinating query (its postcondition names
    its own user), so every component evaluates against the database
    and retires without ever becoming incident to another arrival —
    the accept path never has to wait out a busy component.  Timed:
    the submit loop only.  The drain (and, for the threaded service,
    worker shutdown) happens outside the clock but its duration is
    recorded per point as ``drain_seconds``.
    """
    series = Series(
        name,
        x_label="pending queries",
        y_label=f"seconds to accept {arrivals} arrivals",
    )
    # CPython's default 5 ms GIL switch interval convoys the router:
    # any micro-collision with a worker-held lock parks the accept loop
    # behind up to 5 ms of evaluation.  A sub-millisecond interval is
    # the documented latency/throughput knob for exactly this shape of
    # service; applied uniformly to both modes (the serial driver is
    # single-threaded and unaffected).
    previous_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        _measure_arrival_points(
            series, workers, threaded, sizes, arrivals, repeats, backend,
            executor, fsync,
        )
    finally:
        sys.setswitchinterval(previous_interval)
    return series


def _measure_arrival_points(
    series: Series,
    workers: int,
    threaded: bool,
    sizes,
    arrivals: int,
    repeats: int,
    backend: str,
    executor: str,
    fsync: Optional[str] = None,
) -> None:
    for size in sizes:
        accept_times: List[float] = []
        drain_times: List[float] = []
        for _ in range(repeats):
            db = members_database(size=size + arrivals + 8, seed=2012)
            durability = fresh_durability(fsync) if fsync else None
            hosts: List[ShardHost] = []
            if executor == "remote":
                # One in-process TCP host per shard: the loopback hop
                # is real (framing, sockets, session replicas), only
                # the network distance is not.
                hosts = [ShardHost() for _ in range(workers)]
                service = ShardedCoordinationService(
                    db,
                    ServiceConfig(
                        workers=workers if threaded else None,
                        mailbox_capacity=arrivals + 8,
                        executor="remote",
                        remote_shards=tuple(h.start() for h in hosts),
                        durability=durability,
                    ),
                )
            elif threaded:
                service = ShardedCoordinationService(
                    db,
                    ServiceConfig(
                        workers=workers,
                        mailbox_capacity=arrivals + 8,
                        backend=backend,
                        executor=executor,
                        durability=durability,
                    ),
                )
            else:
                service = ShardedCoordinationService(
                    db,
                    ServiceConfig(
                        shards=workers, backend=backend, durability=durability
                    ),
                )
            _prefill(service, size)
            submit = service.submit_nowait if threaded else service.submit
            start = time.perf_counter()
            for k in range(arrivals):
                submit(_stalled_arrival(member_name(size + k)))
            accept_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            service.drain()
            drain_times.append(time.perf_counter() - start)
            service.close()
            for host in hosts:
                host.close()
        series.points.append(
            Point(
                x=size,
                seconds=statistics.mean(accept_times),
                repeats=repeats,
                seconds_stdev=(
                    statistics.stdev(accept_times)
                    if len(accept_times) > 1
                    else 0.0
                ),
                extra=(("drain_seconds", statistics.mean(drain_times)),),
            )
        )


def _remote_main(args, arrival_sizes, arrivals: int, repeats: int) -> int:
    """The TCP shard-fabric sweep (``--executor remote``).

    Three series against the same arrival burst: the in-memory serial
    driver (the baseline every other series in this file compares to),
    the serial driver routing over loopback-TCP ShardHosts (every
    routing probe and evaluation pays a framed socket round trip), and
    the worker-threaded remote configuration (mailbox threads act as
    I/O waiters, so round trips overlap).  ``remote_overhead`` is
    remote-serial µs / in-memory-serial µs — the honest wire tax;
    ``remote_workers_speedup`` is remote-serial µs / remote-workers µs
    — what overlap buys back.  Emitted as a *separate* payload
    (``engine_service_remote``) so the in-process baseline file stays
    byte-comparable across runs that lack the fabric.
    """
    serial_arrivals = measure_arrivals(
        "serial arrivals", args.workers, False, arrival_sizes, arrivals, repeats
    )
    remote_arrivals = measure_arrivals(
        "remote arrivals", args.workers, False, arrival_sizes, arrivals,
        repeats, executor="remote",
    )
    remote_workers_arrivals = measure_arrivals(
        "remote workers arrivals", args.workers, True, arrival_sizes,
        arrivals, repeats, executor="remote",
    )

    print(render_series(serial_arrivals, "Serial sharded driver (in-memory)"))
    print()
    print(
        render_series(
            remote_arrivals,
            f"Remote executor ({args.workers} TCP shard hosts, serial driver)",
        )
    )
    print()
    print(
        render_series(
            remote_workers_arrivals,
            f"Remote executor ({args.workers} TCP shard hosts, "
            f"{args.workers} workers)",
        )
    )
    print()

    serial_us = _per_op_us(serial_arrivals, arrivals)
    remote_us = _per_op_us(remote_arrivals, arrivals)
    remote_workers_us = _per_op_us(remote_workers_arrivals, arrivals)
    remote_overhead = {
        size: remote_us[size] / serial_us[size] for size in serial_us
    }
    remote_workers_speedup = {
        size: remote_us[size] / remote_workers_us[size] for size in remote_us
    }
    for size in sorted(serial_us):
        print(
            f"pending={size:5d}: remote accept "
            f"{remote_us[size]:8.1f} µs/arrival "
            f"({remote_overhead[size]:.2f}× vs in-memory serial "
            f"{serial_us[size]:8.1f}; workers overlap "
            f"{remote_workers_us[size]:8.1f} µs, "
            f"{remote_workers_speedup[size]:.2f}× vs remote serial)"
        )

    drains = {
        series.name: {
            str(int(p.x)): p.extra_map().get("drain_seconds", 0.0)
            for p in series.points
        }
        for series in (
            serial_arrivals,
            remote_arrivals,
            remote_workers_arrivals,
        )
    }
    payload = {
        "benchmark": "engine_service_remote",
        "smoke": args.smoke,
        "shards": args.workers,
        "workers": args.workers,
        "ops_per_point": {"burst_arrivals": arrivals},
        "repeats": repeats,
        "series": {
            series.name: {
                "x_label": series.x_label,
                "y_label": series.y_label,
                "points": [
                    {
                        "pending": int(p.x),
                        "seconds": p.seconds,
                        "seconds_stdev": p.seconds_stdev,
                        "us_per_op": us_map[int(p.x)],
                    }
                    for p in series.points
                ],
            }
            for series, us_map in (
                (serial_arrivals, serial_us),
                (remote_arrivals, remote_us),
                (remote_workers_arrivals, remote_workers_us),
            )
        },
        "remote_overhead": {
            str(size): remote_overhead[size] for size in remote_overhead
        },
        "remote_workers_speedup": {
            str(size): remote_workers_speedup[size]
            for size in remote_workers_speedup
        },
        "arrival_drain_seconds": drains,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_engine_service.py",
        description="Retraction and sharded-routing latency vs pending-set size.",
    )
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument(
        "--workers",
        type=int,
        default=SHARDS,
        help=f"worker threads for the workers-arrival series (default: {SHARDS})",
    )
    parser.add_argument(
        "--executor",
        choices=["thread", "remote"],
        default="thread",
        help=(
            "thread (default): the full in-process series sweep; "
            "remote: the TCP shard-fabric series only, written to a "
            "separate output file"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help=(
            "output JSON path (default: ./BENCH_engine_service.json, "
            "or ./BENCH_engine_service_remote.json with --executor remote)"
        ),
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = (
            "BENCH_engine_service_remote.json"
            if args.executor == "remote"
            else "BENCH_engine_service.json"
        )

    sizes = SMOKE_SIZES if args.smoke else SIZES
    arrival_sizes = SMOKE_ARRIVAL_SIZES if args.smoke else ARRIVAL_SIZES
    ops = SMOKE_OPS if args.smoke else OPS
    pairs = SMOKE_PAIRS if args.smoke else PAIRS
    arrivals = SMOKE_ARRIVALS if args.smoke else ARRIVALS
    # 5 repeats: the single-core container is noisy enough that 3-run
    # means occasionally invert the single-vs-sharded ordering.
    repeats = 1 if args.smoke else 5

    if args.executor == "remote":
        return _remote_main(args, arrival_sizes, arrivals, repeats)

    retract = measure_retract(sizes, ops, repeats)
    single = measure_submit(
        "single submit", CoordinationEngine, sizes, pairs, repeats
    )
    sharded = measure_submit(
        "sharded submit",
        lambda db: ShardedCoordinationService(db, ServiceConfig(shards=SHARDS)),
        sizes,
        pairs,
        repeats,
    )
    serial_arrivals = measure_arrivals(
        "serial arrivals", args.workers, False, arrival_sizes, arrivals, repeats
    )
    workers_arrivals = measure_arrivals(
        "workers arrivals", args.workers, True, arrival_sizes, arrivals, repeats
    )
    replicated_arrivals = measure_arrivals(
        "replicated arrivals",
        args.workers,
        True,
        arrival_sizes,
        arrivals,
        repeats,
        backend="replicated",
    )
    process_arrivals = measure_arrivals(
        "process arrivals",
        args.workers,
        True,
        arrival_sizes,
        arrivals,
        repeats,
        executor="process",
    )
    clean_scratch()
    try:
        durable_arrivals = measure_arrivals(
            "durable arrivals", args.workers, False, arrival_sizes,
            arrivals, repeats, fsync="never",
        )
        durable_fsync_arrivals = measure_arrivals(
            "durable fsync arrivals", args.workers, False, arrival_sizes,
            arrivals, repeats, fsync="always",
        )
    finally:
        clean_scratch()

    print(render_series(retract, "Retract+resubmit cycles"))
    print()
    print(render_series(single, "Single engine (baseline)"))
    print()
    print(render_series(sharded, f"Sharded service ({SHARDS} shards)"))
    print()
    print(render_series(serial_arrivals, "Serial sharded driver (accept=evaluate)"))
    print()
    print(
        render_series(
            workers_arrivals,
            f"Concurrent executor ({args.workers} workers, accept only)",
        )
    )
    print()
    print(
        render_series(
            replicated_arrivals,
            f"Concurrent executor ({args.workers} workers, replicated backend)",
        )
    )
    print()
    print(
        render_series(
            process_arrivals,
            f"Process executor ({args.workers} worker processes, wire-synced replicas)",
        )
    )
    print()
    print(render_series(durable_arrivals, "Durable serial driver (WAL, fsync=never)"))
    print()
    print(
        render_series(
            durable_fsync_arrivals, "Durable serial driver (WAL, fsync=always)"
        )
    )
    print()

    retract_us = _per_op_us(retract, 2 * ops)  # cycle = retract + resubmit
    single_us = _per_op_us(single, 2 * pairs)
    sharded_us = _per_op_us(sharded, 2 * pairs)
    serial_arrival_us = _per_op_us(serial_arrivals, arrivals)
    workers_arrival_us = _per_op_us(workers_arrivals, arrivals)
    replicated_arrival_us = _per_op_us(replicated_arrivals, arrivals)
    process_arrival_us = _per_op_us(process_arrivals, arrivals)
    durable_arrival_us = _per_op_us(durable_arrivals, arrivals)
    durable_fsync_us = _per_op_us(durable_fsync_arrivals, arrivals)
    overhead = {size: sharded_us[size] / single_us[size] for size in single_us}
    speedup = {
        size: serial_arrival_us[size] / workers_arrival_us[size]
        for size in serial_arrival_us
    }
    replicated_speedup = {
        size: serial_arrival_us[size] / replicated_arrival_us[size]
        for size in serial_arrival_us
    }
    process_speedup = {
        size: serial_arrival_us[size] / process_arrival_us[size]
        for size in serial_arrival_us
    }
    durable_overhead = {
        size: durable_arrival_us[size] / serial_arrival_us[size]
        for size in serial_arrival_us
    }
    durable_fsync_overhead = {
        size: durable_fsync_us[size] / serial_arrival_us[size]
        for size in serial_arrival_us
    }
    for size in sorted(retract_us):
        print(
            f"pending={size:5d}: retract {retract_us[size]:8.1f} µs/op, "
            f"single {single_us[size]:8.1f} µs/arrival, "
            f"sharded {sharded_us[size]:8.1f} µs/arrival "
            f"(routing overhead {overhead[size]:.2f}×)"
        )
    for size in sorted(serial_arrival_us):
        print(
            f"pending={size:5d}: workers accept "
            f"{workers_arrival_us[size]:8.1f} µs/arrival "
            f"(vs serial {serial_arrival_us[size]:8.1f}: "
            f"{speedup[size]:.2f}× arrival throughput at "
            f"{args.workers} workers)"
        )
    for size in sorted(replicated_arrival_us):
        print(
            f"pending={size:5d}: replicated-backend accept "
            f"{replicated_arrival_us[size]:8.1f} µs/arrival "
            f"({replicated_speedup[size]:.2f}× vs serial; shared-backend "
            f"workers {workers_arrival_us[size]:8.1f})"
        )
    for size in sorted(process_arrival_us):
        print(
            f"pending={size:5d}: process-executor accept "
            f"{process_arrival_us[size]:8.1f} µs/arrival "
            f"({process_speedup[size]:.2f}× vs serial; thread workers "
            f"{workers_arrival_us[size]:8.1f})"
        )
    for size in sorted(durable_arrival_us):
        print(
            f"pending={size:5d}: durable accept "
            f"{durable_arrival_us[size]:8.1f} µs/arrival "
            f"(fsync=never {durable_overhead[size]:.2f}× vs in-memory; "
            f"fsync=always {durable_fsync_us[size]:8.1f} µs, "
            f"{durable_fsync_overhead[size]:.2f}×)"
        )

    drains = {
        series.name: {
            str(int(p.x)): p.extra_map().get("drain_seconds", 0.0)
            for p in series.points
        }
        for series in (
            serial_arrivals,
            workers_arrivals,
            replicated_arrivals,
            process_arrivals,
            durable_arrivals,
            durable_fsync_arrivals,
        )
    }
    payload = {
        "benchmark": "engine_service",
        "smoke": args.smoke,
        "shards": SHARDS,
        "workers": args.workers,
        "ops_per_point": {
            "retract_cycles": ops,
            "pair_arrivals": 2 * pairs,
            "burst_arrivals": arrivals,
        },
        "repeats": repeats,
        "series": {
            series.name: {
                "x_label": series.x_label,
                "y_label": series.y_label,
                "points": [
                    {
                        "pending": int(p.x),
                        "seconds": p.seconds,
                        "seconds_stdev": p.seconds_stdev,
                        "us_per_op": us_map[int(p.x)],
                    }
                    for p in series.points
                ],
            }
            for series, us_map in (
                (retract, retract_us),
                (single, single_us),
                (sharded, sharded_us),
                (serial_arrivals, serial_arrival_us),
                (workers_arrivals, workers_arrival_us),
                (replicated_arrivals, replicated_arrival_us),
                (process_arrivals, process_arrival_us),
                (durable_arrivals, durable_arrival_us),
                (durable_fsync_arrivals, durable_fsync_us),
            )
        },
        "sharded_overhead": {str(size): overhead[size] for size in overhead},
        "workers_speedup": {str(size): speedup[size] for size in speedup},
        "replicated_speedup": {
            str(size): replicated_speedup[size] for size in replicated_speedup
        },
        "process_speedup": {
            str(size): process_speedup[size] for size in process_speedup
        },
        "durable_overhead": {
            str(size): durable_overhead[size] for size in durable_overhead
        },
        "durable_fsync_overhead": {
            str(size): durable_fsync_overhead[size]
            for size in durable_fsync_overhead
        },
        "arrival_drain_seconds": drains,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
