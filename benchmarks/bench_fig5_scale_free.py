"""Figure 5 — SCC Coordination Algorithm on scale-free structures.

Paper setup: 10–100 queries whose coordination partners are their
successors in a directed scale-free network; results averaged over ten
random graphs per size (here: fresh seeds across benchmark rounds).

Paper claims: linear growth, and *faster* than the list structure —
asserted against the Figure 4 numbers by ``tests/bench``'s trend tests
and visible in the saved benchmark stats.
"""

import pytest

from repro.core import scc_coordinate
from repro.workloads import scale_free_workload

SIZES = list(range(10, 101, 10))


@pytest.mark.parametrize("size", SIZES)
def test_fig5_scale_free_processing_time(benchmark, members_db, size):
    workloads = [
        scale_free_workload(size, out_degree=2, seed=seed) for seed in range(10)
    ]
    state = {"round": 0, "result": None}

    def run():
        queries = workloads[state["round"] % len(workloads)]
        state["round"] += 1
        state["result"] = scc_coordinate(members_db, queries)
        return state["result"]

    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)

    result = state["result"]
    assert result.found
    # Every body is satisfiable, so every reachability set R(q) is a
    # candidate; the chosen one is the largest (≤ size: a scale-free
    # DAG has no query that reaches all others).
    assert 1 <= result.chosen.size <= size
    assert result.stats.db_queries <= size
    benchmark.extra_info["db_queries"] = result.stats.db_queries
    benchmark.extra_info["sccs"] = result.stats.scc_count
