"""Figure 6 — graph construction and preprocessing time only.

Paper setup: scale-free workloads of 100–1000 queries; measure just the
coordination-graph build, the unsatisfiable-postcondition preprocessing,
and the SCC/condensation computation — no database work.

Paper claim: even for very large coordination graphs, graph processing
time is negligible and grows very slowly.
"""

import pytest

from repro.core import CoordinationGraph, preprocess
from repro.graphs import condensation
from repro.workloads import scale_free_workload

SIZES = list(range(100, 1001, 100))


@pytest.mark.parametrize("size", SIZES)
def test_fig6_graph_processing_time(benchmark, size):
    workloads = [
        scale_free_workload(size, out_degree=2, seed=seed) for seed in range(10)
    ]
    state = {"round": 0, "cond": None}

    def run():
        queries = workloads[state["round"] % len(workloads)]
        state["round"] += 1
        graph = CoordinationGraph.build(queries)
        pre = preprocess(graph)
        state["cond"] = condensation(pre.graph.graph)
        return state["cond"]

    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)

    cond = state["cond"]
    # Scale-free partner structures are acyclic: every query is its own
    # component, and nothing is removed by preprocessing.
    assert cond.component_count == size
    benchmark.extra_info["components"] = cond.component_count
