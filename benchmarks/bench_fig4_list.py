"""Figure 4 — SCC Coordination Algorithm on the list structure.

Paper setup: 10–100 queries, each asking to coordinate with the next
(the last with nobody); every body satisfiable over the Slashdot-sized
member table.  This is the algorithm's worst case — one coordinating
set per suffix, hence the maximum number of database queries.

Paper claim: processing time grows linearly with the number of queries.
"""

import pytest

from repro.core import scc_coordinate
from repro.workloads import list_workload

SIZES = list(range(10, 101, 10))


@pytest.mark.parametrize("size", SIZES)
def test_fig4_list_processing_time(benchmark, members_db, size):
    queries = list_workload(size)

    result = benchmark.pedantic(
        lambda: scc_coordinate(members_db, queries),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

    # Shape assertions (machine-independent): the full list coordinates,
    # and the algorithm issued exactly |Q| database queries.
    assert result.found
    assert result.chosen.size == size
    assert result.stats.db_queries == size
    benchmark.extra_info["db_queries"] = result.stats.db_queries
    benchmark.extra_info["sccs"] = result.stats.scc_count
