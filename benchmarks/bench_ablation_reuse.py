"""Ablation D — grounding reuse in the SCC algorithm.

Figure 4's worst case re-joins every suffix of the list at every
component.  With ``reuse_groundings=True`` each component seeds its
evaluation with the successors' existing groundings and only evaluates
its own atoms, falling back to the full combined query on conflicts —
trading at most one extra query per component for per-component work
that no longer grows with the suffix.  This is the closest analogue of
the cost profile the paper's MySQL stack exhibited (round-trip count,
not join size, dominating).
"""

import pytest

from repro.core import scc_coordinate, verify_result_set
from repro.workloads import list_workload

SIZES = [25, 50, 75, 100]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("reuse", [False, True], ids=["full", "reuse"])
def test_ablation_grounding_reuse(benchmark, members_db, size, reuse):
    queries = list_workload(size)

    result = benchmark.pedantic(
        lambda: scc_coordinate(members_db, queries, reuse_groundings=reuse),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.found
    assert result.chosen.size == size
    assert verify_result_set(members_db, queries, result.chosen).ok
    benchmark.extra_info["db_queries"] = result.stats.db_queries
    benchmark.extra_info["seeded"] = result.stats.extra.get("seeded_queries", 0)
