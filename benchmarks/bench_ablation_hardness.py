"""Ablation A — the exponential wall the practical algorithms avoid.

Theorem 1 instances (two-value database) solved two ways:

* the exponential brute-force coordinating-set search (the only option
  for arbitrary query sets, per Theorem 1's NP-completeness);
* the DPLL oracle on the original formula (for reference).

The brute-force times blow up with the variable count while DPLL stays
flat — quantifying the value of the safety/consistency restrictions the
paper's polynomial algorithms rely on.
"""

import pytest

from repro.core import find_coordinating_set
from repro.hardness import dpll, random_3sat, theorem1

# m=5 already exceeds minutes per run (measured: 0.05 s at m=3, ~50 s
# at m=4 with ratio 3) — the blow-up IS the result, so two points are
# plenty.
VARIABLE_COUNTS = [3, 4]


@pytest.mark.parametrize("variables", VARIABLE_COUNTS)
def test_ablation_bruteforce_search(benchmark, variables):
    formula = random_3sat(variables, variables * 2, seed=42)
    instance = theorem1.encode(formula)

    found = benchmark.pedantic(
        lambda: find_coordinating_set(instance.db, instance.queries),
        rounds=1,
        iterations=1,
    )
    expected = dpll.is_satisfiable(formula)
    assert (found is not None) == expected
    benchmark.extra_info["queries"] = len(instance.queries)
    benchmark.extra_info["satisfiable"] = expected


@pytest.mark.parametrize("variables", VARIABLE_COUNTS)
def test_ablation_dpll_reference(benchmark, variables):
    formula = random_3sat(variables, variables * 2, seed=42)
    benchmark.pedantic(
        lambda: dpll.solve(formula),
        rounds=5,
        iterations=2,
    )
