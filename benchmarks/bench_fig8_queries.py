"""Figure 8 — Consistent Coordination Algorithm vs. number of queries.

Paper setup: a fixed 100-row Flights table (one row per distinct
(destination, day) combination), 10–100 queries, complete friendship
graph, all values satisfying all queries — the worst case again.

Paper claim: processing time grows linearly with the number of queries.
"""

import pytest

from repro.core import consistent_coordinate
from repro.workloads import flight_setup, worst_case_database, worst_case_queries

USER_COUNTS = list(range(10, 101, 10))
NUM_FLIGHTS = 100


@pytest.mark.parametrize("users", USER_COUNTS)
def test_fig8_queries_processing_time(benchmark, users):
    db = worst_case_database(NUM_FLIGHTS, users)
    setup = flight_setup()
    queries = worst_case_queries(users)

    result = benchmark.pedantic(
        lambda: consistent_coordinate(db, setup, queries),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )

    assert result.found
    assert result.chosen is not None and len(result.chosen.selections) == users
    assert result.stats.candidate_values == NUM_FLIGHTS
    assert result.stats.db_queries <= 3 * users
    benchmark.extra_info["db_queries"] = result.stats.db_queries
