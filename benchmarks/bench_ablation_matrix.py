"""The ablation matrix: every feature toggle × every catalog scenario.

Nine PRs of optimizations — plan cache, composite indexes, component
cache, replicated backend, worker executors, control lane, cost-based
placement — each earned its complexity on the workload it was built
for.  This harness makes each keep proving it: one
:class:`~repro.core.ServiceConfig` variant per toggled feature, run
against every scenario in the catalog (:mod:`repro.scenarios`), with
the per-feature **importance ratio** (variant seconds / baseline
seconds, per workload) emitted alongside the raw series.  A feature
whose ratio collapses toward 1.0 on the workload designed to need it
has silently stopped mattering — exactly the regression a plain
"tests stay green" gate cannot see.

The matrix is *self-auditing*: every variant must reproduce the
baseline's observables byte for byte (resolutions, retired sets,
rejections, final pending count — migrations excepted, placement is
allowed to differ).  A variant that changes outcomes is a correctness
bug, and the harness fails loudly rather than timing a divergent run.

Emitted as ``BENCH_ablation_matrix.json``: one series per
``workload/variant`` pair (points keyed by ``pending`` = workload
scale, ``us_per_op`` = stream-event latency — the keys
``check_regression.py`` matches on), plus the ``importance`` map.
``--check`` additionally asserts the matrix can detect feature value:
disabling composite indexes or the plan cache must show a >2× ratio on
at least one workload.

Usage::

    PYTHONPATH=src python benchmarks/bench_ablation_matrix.py           # full
    PYTHONPATH=src python benchmarks/bench_ablation_matrix.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_ablation_matrix.py --smoke --check
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core import ServiceConfig, ShardedCoordinationService
from repro.scenarios import SCENARIOS, ScenarioRun, drive

#: Workload scales.  Smoke runs one point per workload, sized so the
#: whole matrix stays under a couple of CI minutes; the full run sweeps
#: two scales.  The keyword scale is chosen where the hub-entity corpus
#: makes the composite-index ablation unambiguous (>2×, see --check).
FULL_SCALES = {
    "partner": (96, 192),
    "keyword": (96, 144),
    "marketplace": (200, 400),
    "adversarial": (32, 64),
}
SMOKE_SCALES = {
    "partner": (96,),
    "keyword": (96,),
    "marketplace": (200,),
    "adversarial": (32,),
}
SEED = 2012
SHARDS = 4
WORKERS = 2

#: The feature toggles: (variant name, ServiceConfig.evolve changes).
#: ``baseline`` is everything on — the denominator of every ratio.
VARIANTS: Tuple[Tuple[str, Dict], ...] = (
    ("baseline", {}),
    ("no-plan-cache", {"plan_cache": False}),
    ("no-composite-indexes", {"composite_indexes": False}),
    ("no-component-cache", {"reuse_component_states": False}),
    ("replicated-backend", {"backend": "replicated"}),
    ("pending-placement", {"placement": "pending"}),
    ("thread-workers", {"workers": WORKERS}),
    ("no-control-lane", {"workers": WORKERS, "control_lane": False}),
    ("process-executor", {"workers": WORKERS, "executor": "process"}),
)


def observables(run: ScenarioRun) -> Tuple[int, int, int, int]:
    """The placement-independent outcome a variant must reproduce."""
    return (run.resolved, run.retired_sets, run.rejected, run.pending)


def run_variant(
    scenario, scale: int, changes: Dict, repeats: int
) -> Tuple[float, float, int, Tuple[int, int, int, int]]:
    """Mean/stdev seconds, event count, and outcome for one cell."""
    times: List[float] = []
    outcome = None
    events_len = 0
    for _ in range(repeats):
        db, events = scenario.build(scale, SEED)
        events_len = len(events)
        config = ServiceConfig(shards=SHARDS).evolve(**changes)
        service = ShardedCoordinationService(db, config)
        try:
            start = time.perf_counter()
            run = drive(service, events)
            elapsed = time.perf_counter() - start
        finally:
            service.close()
        times.append(elapsed)
        outcome = observables(run)
    return (
        statistics.mean(times),
        statistics.stdev(times) if len(times) > 1 else 0.0,
        events_len,
        outcome,
    )


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_ablation_matrix.py",
        description="Feature-toggle ablation matrix over the scenario catalog.",
    )
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless disabling composite indexes or the plan cache "
        "shows a >2x importance ratio on at least one workload",
    )
    parser.add_argument(
        "--out",
        default="BENCH_ablation_matrix.json",
        help="output JSON path (default: ./BENCH_ablation_matrix.json)",
    )
    args = parser.parse_args(argv)

    scales = SMOKE_SCALES if args.smoke else FULL_SCALES
    repeats = 1 if args.smoke else 3

    series: Dict[str, Dict] = {}
    importance: Dict[str, Dict[str, float]] = {}
    audit_failures: List[str] = []
    for scenario in SCENARIOS:
        baseline_seconds: Dict[int, float] = {}
        baseline_outcome: Dict[int, Tuple] = {}
        importance[scenario.name] = {}
        for variant, changes in VARIANTS:
            points = []
            ratios: List[float] = []
            for scale in scales[scenario.name]:
                mean, stdev, ops, outcome = run_variant(
                    scenario, scale, changes, repeats
                )
                if variant == "baseline":
                    baseline_seconds[scale] = mean
                    baseline_outcome[scale] = outcome
                else:
                    # The self-audit: toggles change cost, never
                    # outcomes.  A divergent variant is a bug, not a
                    # data point.
                    if outcome != baseline_outcome[scale]:
                        audit_failures.append(
                            f"{scenario.name}/{variant} @ scale {scale}: "
                            f"outcome {outcome} != baseline "
                            f"{baseline_outcome[scale]}"
                        )
                    ratios.append(mean / baseline_seconds[scale])
                points.append(
                    {
                        "pending": scale,
                        "seconds": mean,
                        "seconds_stdev": stdev,
                        "us_per_op": mean / ops * 1e6,
                    }
                )
            series[f"{scenario.name}/{variant}"] = {
                "x_label": "workload scale",
                "y_label": "seconds per stream",
                "points": points,
            }
            if variant != "baseline":
                ratio = statistics.mean(ratios)
                importance[scenario.name][variant] = ratio
                print(
                    f"{scenario.name:12s} {variant:22s} {ratio:5.2f}x "
                    f"vs baseline"
                )
            else:
                print(
                    f"{scenario.name:12s} {'baseline':22s} "
                    + " ".join(
                        f"{scale}:{baseline_seconds[scale]:.3f}s"
                        for scale in scales[scenario.name]
                    )
                )

    if audit_failures:
        print(
            f"\n{len(audit_failures)} self-audit failure(s):", file=sys.stderr
        )
        for failure in audit_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1

    payload = {
        "benchmark": "ablation_matrix",
        "smoke": args.smoke,
        "shards": SHARDS,
        "workers": WORKERS,
        "seed": SEED,
        "repeats": repeats,
        "workloads": [s.name for s in SCENARIOS],
        "toggles": [name for name, _ in VARIANTS if name != "baseline"],
        "series": series,
        "importance": importance,
    }
    Path(args.out).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(f"\nwrote {args.out}")

    if args.check:
        detectable = max(
            max(
                importance[w].get("no-composite-indexes", 0.0),
                importance[w].get("no-plan-cache", 0.0),
            )
            for w in importance
        )
        if detectable <= 2.0:
            print(
                "check failed: no workload shows >2x for "
                f"no-composite-indexes/no-plan-cache (best {detectable:.2f}x)"
                " — the matrix can no longer detect feature value",
                file=sys.stderr,
            )
            return 1
        print(f"check passed: best detection ratio {detectable:.2f}x (> 2x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
