"""Ablation B/C — design-choice validation for the SCC algorithm.

* **Structure sweep**: the same 60 queries arranged as a list, a ring
  (one big SCC — the safe+unique regime), a star, and a scale-free
  graph.  The ring needs ONE database query (everything stands
  together); the list needs 60.  This isolates how coordination
  *structure*, not query count, drives the cost — the core insight of
  contracting SCCs.
* **Preprocessing**: a list whose middle query can never be satisfied;
  preprocessing discards the doomed prefix before any unification.
* **Online vs. batch**: the Youtopia-style engine processing arrivals
  one at a time vs. one batch evaluation.
"""

import pytest

from repro.core import CoordinationEngine, scc_coordinate
from repro.networks import list_digraph, ring_digraph, scale_free_digraph, star_digraph
from repro.workloads import list_workload, partner_query, queries_from_structure

SIZE = 60

STRUCTURES = {
    "list": lambda: list_digraph(SIZE),
    "ring": lambda: ring_digraph(SIZE),
    "star": lambda: star_digraph(SIZE),
    "scale-free": lambda: scale_free_digraph(SIZE, out_degree=2, seed=1),
}


@pytest.mark.parametrize("structure", sorted(STRUCTURES))
def test_ablation_structure_sweep(benchmark, members_db, structure):
    queries = queries_from_structure(STRUCTURES[structure]())

    result = benchmark.pedantic(
        lambda: scc_coordinate(members_db, queries),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.found
    # The chosen set is the largest reachability set R(q): the whole
    # workload for list/ring/star, but not for a scale-free DAG (no
    # single query reaches every other).
    if structure != "scale-free":
        assert result.chosen.size == SIZE
    if structure == "ring":
        assert result.stats.scc_count == 1
        assert result.stats.db_queries == 1
    if structure == "list":
        assert result.stats.db_queries == SIZE
    benchmark.extra_info["db_queries"] = result.stats.db_queries
    benchmark.extra_info["sccs"] = result.stats.scc_count


@pytest.mark.parametrize("preprocessing", [True, False])
def test_ablation_preprocessing_toggle(benchmark, members_db, preprocessing):
    queries = list_workload(SIZE)
    queries[SIZE // 2] = partner_query(queries[SIZE // 2].name, ["nobody-home"])

    result = benchmark.pedantic(
        lambda: scc_coordinate(
            members_db, queries, run_preprocessing=preprocessing
        ),
        rounds=3,
        iterations=1,
    )
    assert result.found
    # The suffix after the broken query still coordinates.
    assert result.chosen.size == SIZE - SIZE // 2 - 1
    benchmark.extra_info["db_queries"] = result.stats.db_queries
    benchmark.extra_info["removed"] = result.stats.preprocessing_removed


@pytest.mark.parametrize("mode", ["online", "batch"])
def test_ablation_online_vs_batch(benchmark, members_db, mode):
    queries = list_workload(30)

    def online():
        engine = CoordinationEngine(members_db)
        outcomes = [engine.submit(q) for q in queries]
        return outcomes

    def batch():
        return scc_coordinate(members_db, queries)

    benchmark.pedantic(online if mode == "online" else batch, rounds=2, iterations=1)
