"""Serving-front latency: admission and resolution tails under load.

The control-lane claim (DESIGN.md §12): with every shard grinding
long stalled-join evaluations, a *new* arrival's admission — routing
probes plus the admission delta — must not queue behind an in-flight
``evaluate`` frame.  The process executor's blocking path serializes
every command on one pipe per shard, so under background load an
admission's tail latency is one evaluation frame; the control lane
(a second duplex pipe serviced between component evaluations and
between frames) bounds it to a fraction of one component.

This benchmark measures that as tail latency under **sustained mixed
traffic** against a 4-worker process-executor service:

* a pre-filled pending pool (the x axis) of forever-waiting partner
  queries sets the coordination-state size;
* the traffic loop submits stalled-join arrivals (each is real,
  multi-millisecond evaluation work — the background load *is* the
  foreground traffic, every worker stays busy), retracts an old
  pending query every ``RETRACT_EVERY`` ops, completes a coordinating
  pair every ``PAIR_EVERY`` ops, and inserts a row every
  ``INSERT_EVERY`` ops (an insert barriers behind all outstanding
  evaluations by contract — the honest cost of a write, reported but
  not part of the admission series);
* **arrival-to-admission** latency is the wall-clock of each
  ``submit_nowait`` call (routing + safety + admission delta, never
  evaluation); **arrival-to-resolution** is submit-to-``on_resolved``
  for the pair-completing arrivals, whose evaluations queue behind
  the mailbox backlog like any other.

Two configurations differ in exactly one bit —
``ShardedCoordinationService(..., control_lane=...)`` — and emit
paired series (``admission blocking`` vs ``admission control-lane``,
``resolution blocking`` vs ``resolution control-lane``) with p50/p99
microsecond percentiles per point.  ``--check`` enforces the PR's
acceptance gate: mean p99 admission speedup (blocking / control-lane)
of at least ``--min-speedup`` (default 5×).

Results are emitted as ``BENCH_service_latency.json`` (series keys
asserted by the CI smoke step; ``p99_us`` is the regression-gated
per-op metric — see ``benchmarks/check_regression.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_service_latency.py          # full
    PYTHONPATH=src python benchmarks/bench_service_latency.py --smoke  # CI
    PYTHONPATH=src python benchmarks/bench_service_latency.py \
        --smoke --check     # also enforce the >=5x p99 admission gate
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.bench import Point, Series
from repro.bench.reporting import render_series
from repro.core import EntangledQuery, ShardedCoordinationService
from repro.logic import Atom, Variable
from repro.networks import member_name
from repro.workloads import members_database, partner_query

SIZES = (100, 300)
SMOKE_SIZES = (60,)
OPS = 96           # measured foreground admissions per measurement
SMOKE_OPS = 48
PAIRS = 8          # coordinating pairs completed during the traffic
SMOKE_PAIRS = 4
WORKERS = 4
#: Background stalled-join arrivals per burst.  Bursts are admitted
#: with ``submit_many_nowait`` — the gateway's batching primitive — so
#: each shard receives ONE evaluate frame covering ~BURST/WORKERS
#: components.  That multi-component frame is the serving-front's
#: load shape, and exactly what the two configurations disagree on:
#: the blocking path parks every probe until the frame completes,
#: the control lane services it at the next component boundary.
BURST = 64
SMOKE_BURST = 48
#: Measured foreground operations interleaved per burst.
PER_BURST = 8
RETRACT_EVERY = 16
INSERT_EVERY = 40
ABSENT_BASE = 10 ** 6  # partners that never arrive keep the pool pending

#: The acceptance gate: blocking-path p99 admission latency must be at
#: least this many times the control-lane path's (mean across points).
MIN_ADMISSION_SPEEDUP = 5.0


def _stalled_arrival(user: str) -> EntangledQuery:
    """A self-coordinating arrival whose evaluation is real join work.

    Identical in shape to ``bench_engine_service``'s stalled join: the
    postcondition names the user's own head (singleton component, no
    freeze-rule interaction with other arrivals), and the body's last
    atom joins a string column against an integer karma, so evaluation
    walks the region join before failing and the query stays pending.
    One evaluation is the multi-millisecond frame the blocking path
    queues admissions behind.
    """
    karma = Variable("x")
    region, interest = Variable("r"), Variable("i1")
    body = [
        Atom("Members", [user, region, Variable("i0"), karma]),
        Atom("Members", [Variable("v1"), region, interest, Variable("k1")]),
        Atom("Members", [Variable("v2"), region, interest, Variable("k2")]),
        Atom("Members", [Variable("w"), karma, interest, Variable("k3")]),
    ]
    posts = [Atom("R", [Variable("y0"), user])]
    head = [Atom("R", [karma, user])]
    return EntangledQuery(user, posts, head, body)


def _percentile_us(samples: List[float], q: float) -> float:
    """The q-quantile of ``samples`` (seconds), in microseconds."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index] * 1e6


class _TrafficSample:
    """Latency samples of one measurement run, grouped by op kind."""

    def __init__(self) -> None:
        self.admission: List[float] = []
        self.pair_admission: List[float] = []
        self.resolution: List[float] = []
        self.retract: List[float] = []
        self.insert: List[float] = []
        self.elapsed = 0.0


def _run_traffic(
    control_lane: bool, pending: int, ops: int, pairs: int, burst: int
) -> _TrafficSample:
    """One sustained mixed-traffic run; returns its latency samples.

    Traffic alternates background **bursts** (``burst`` stalled-join
    arrivals batched through ``submit_many_nowait`` — one long
    multi-component evaluate frame per shard) with ``PER_BURST``
    measured foreground operations admitted while those frames grind.
    A foreground admission's routing probes land mid-frame: the
    blocking path parks them until the frame completes, the control
    lane answers at the next component boundary — the tail this
    benchmark exists to measure.
    """
    sample = _TrafficSample()
    pair_base = pending
    bursts = max(1, math.ceil(ops / PER_BURST))
    burst_base = pending + 2 * pairs
    traffic_base = burst_base + bursts * burst
    db = members_database(size=traffic_base + ops + 8, seed=2012)
    pair_every = max(1, ops // max(1, pairs))
    service = ShardedCoordinationService(
        db,
        workers=WORKERS,
        executor="process",
        mailbox_capacity=pending + ops + bursts * burst + 16,
        control_lane=control_lane,
    )
    try:
        # Pre-fill: the pending pool (retract targets; idle components)
        # and one half of each coordinating pair, all evaluated before
        # the clock starts.
        for i in range(pending):
            service.submit(
                partner_query(member_name(i), [member_name(ABSENT_BASE + i)])
            )
        for j in range(pairs):
            a = member_name(pair_base + 2 * j)
            b = member_name(pair_base + 2 * j + 1)
            service.submit(partner_query(a, [b]))
        service.drain()

        completed_pairs = 0
        k = 0
        started = time.perf_counter()
        for i in range(bursts):
            # Background burst, off the clock: its admission is the
            # already-benchmarked batch path; its evaluation frames are
            # the load the measured operations run against.
            service.submit_many_nowait(
                [
                    _stalled_arrival(member_name(burst_base + i * burst + n))
                    for n in range(burst)
                ]
            )
            for _ in range(PER_BURST):
                if k >= ops:
                    break
                k += 1
                if k % RETRACT_EVERY == 0:
                    # Retract an idle pending query, then restore the
                    # pool off the clock.  The retract op itself
                    # travels the main lane (it mutates) — only its
                    # routing probes ride the control lane — so this
                    # series stays main-lane honest in both configs.
                    target = member_name(k % pending)
                    t0 = time.perf_counter()
                    service.retract(target)
                    sample.retract.append(time.perf_counter() - t0)
                    service.submit_nowait(
                        partner_query(target, [member_name(ABSENT_BASE + k)])
                    )
                elif k % INSERT_EVERY == 0:
                    # An insert barriers behind every outstanding
                    # evaluation by contract — the honest cost of a
                    # write under load, identical in both configs.
                    t0 = time.perf_counter()
                    service.insert(
                        "Members",
                        (member_name(ABSENT_BASE + k), "nowhere", "none", k),
                    )
                    sample.insert.append(time.perf_counter() - t0)
                elif (
                    k % pair_every == pair_every - 1
                    and completed_pairs < pairs
                ):
                    # Complete one coordinating pair: arrival-to-
                    # resolution is submit to on_resolved, the
                    # evaluation queueing behind the burst included.
                    j = completed_pairs
                    completed_pairs += 1
                    a = member_name(pair_base + 2 * j)
                    b = member_name(pair_base + 2 * j + 1)
                    # Accounted apart from plain admissions: joining an
                    # existing component can trigger a cross-shard
                    # migration, whose release/adopt commands are
                    # main-lane (mutating) in both configurations.
                    t0 = time.perf_counter()
                    handle = service.submit_nowait(partner_query(b, [a]))
                    sample.pair_admission.append(time.perf_counter() - t0)
                    handle.on_resolved(
                        lambda _h, t0=t0: sample.resolution.append(
                            time.perf_counter() - t0
                        )
                    )
                else:
                    # A plain cheap arrival: admission cost is routing
                    # probes + the admission delta, never evaluation.
                    query = partner_query(
                        member_name(traffic_base + k),
                        [member_name(ABSENT_BASE + ops + k)],
                    )
                    t0 = time.perf_counter()
                    service.submit_nowait(query)
                    sample.admission.append(time.perf_counter() - t0)
        sample.elapsed = time.perf_counter() - started
        service.drain()
    finally:
        service.close()
    return sample


def measure(
    control_lane: bool, sizes, ops: int, pairs: int, burst: int, repeats: int
) -> Dict[str, Series]:
    """The paired admission/resolution series for one configuration."""
    label = "control-lane" if control_lane else "blocking"
    admission = Series(
        f"admission {label}",
        x_label="pending queries",
        y_label="seconds of sustained mixed traffic",
    )
    resolution = Series(
        f"resolution {label}",
        x_label="pending queries",
        y_label="seconds of sustained mixed traffic",
    )
    for size in sizes:
        runs = [
            _run_traffic(control_lane, size, ops, pairs, burst)
            for _ in range(repeats)
        ]
        elapsed = [run.elapsed for run in runs]
        # Percentiles over the pooled samples of all repeats: p99 of a
        # single run's ~100 samples is one sample; pooling makes the
        # committed baselines stable enough to gate on.
        admission_samples = [s for run in runs for s in run.admission]
        pair_samples = [s for run in runs for s in run.pair_admission]
        resolution_samples = [s for run in runs for s in run.resolution]
        retract_samples = [s for run in runs for s in run.retract]
        insert_samples = [s for run in runs for s in run.insert]
        common = dict(
            x=size,
            seconds=statistics.mean(elapsed),
            repeats=repeats,
            seconds_stdev=(
                statistics.stdev(elapsed) if len(elapsed) > 1 else 0.0
            ),
        )
        admission.points.append(
            Point(
                **common,
                extra=(
                    ("p50_us", _percentile_us(admission_samples, 0.50)),
                    ("p99_us", _percentile_us(admission_samples, 0.99)),
                    (
                        "us_per_op",
                        statistics.mean(admission_samples) * 1e6,
                    ),
                    ("retract_p99_us", _percentile_us(retract_samples, 0.99)),
                    ("insert_p99_us", _percentile_us(insert_samples, 0.99)),
                    ("pair_p99_us", _percentile_us(pair_samples, 0.99)),
                    ("samples", float(len(admission_samples))),
                ),
            )
        )
        resolution.points.append(
            Point(
                **common,
                extra=(
                    ("p50_us", _percentile_us(resolution_samples, 0.50)),
                    ("p99_us", _percentile_us(resolution_samples, 0.99)),
                    (
                        "us_per_op",
                        statistics.mean(resolution_samples) * 1e6
                        if resolution_samples
                        else 0.0,
                    ),
                    ("samples", float(len(resolution_samples))),
                ),
            )
        )
    return {"admission": admission, "resolution": resolution}


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_service_latency.py",
        description="Admission/resolution tail latency: control lane vs "
        "blocking path under sustained mixed traffic.",
    )
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless the mean p99 admission speedup (blocking / "
        "control-lane) reaches --min-speedup",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=MIN_ADMISSION_SPEEDUP,
        help="required p99 admission speedup with --check "
        f"(default: {MIN_ADMISSION_SPEEDUP})",
    )
    parser.add_argument(
        "--out",
        default="BENCH_service_latency.json",
        help="output JSON path (default: ./BENCH_service_latency.json)",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else SIZES
    ops = SMOKE_OPS if args.smoke else OPS
    pairs = SMOKE_PAIRS if args.smoke else PAIRS
    burst = SMOKE_BURST if args.smoke else BURST
    repeats = 1 if args.smoke else 3

    # Shorter GIL slices for the router/dispatcher thread mix, exactly
    # as bench_engine_service.py does: the default 5 ms switch interval
    # convoys the router behind worker-side reply handling and inflates
    # both configurations' tails identically; applied uniformly.
    previous_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        blocking = measure(False, sizes, ops, pairs, burst, repeats)
        lane = measure(True, sizes, ops, pairs, burst, repeats)
    finally:
        sys.setswitchinterval(previous_interval)

    print(render_series(blocking["admission"], "Blocking path (admission)"))
    print()
    print(render_series(lane["admission"], "Control lane (admission)"))
    print()
    print(render_series(blocking["resolution"], "Blocking path (resolution)"))
    print()
    print(render_series(lane["resolution"], "Control lane (resolution)"))
    print()

    speedup: Dict[int, float] = {}
    for b, c in zip(blocking["admission"].points, lane["admission"].points):
        blocking_p99 = b.extra_map()["p99_us"]
        lane_p99 = max(c.extra_map()["p99_us"], 1e-9)
        speedup[int(b.x)] = blocking_p99 / lane_p99
        print(
            f"pending={int(b.x):5d}: admission p99 blocking "
            f"{blocking_p99:9.1f} µs vs control-lane "
            f"{c.extra_map()['p99_us']:9.1f} µs "
            f"({speedup[int(b.x)]:.1f}× tail-latency improvement; p50 "
            f"{b.extra_map()['p50_us']:.1f} → {c.extra_map()['p50_us']:.1f} µs)"
        )

    payload = {
        "benchmark": "service_latency",
        "smoke": args.smoke,
        "workers": WORKERS,
        "ops_per_point": {"traffic_ops": ops, "pairs": pairs},
        "repeats": repeats,
        "series": {
            series.name: {
                "x_label": series.x_label,
                "y_label": series.y_label,
                "points": [
                    {
                        "pending": int(p.x),
                        "seconds": p.seconds,
                        "seconds_stdev": p.seconds_stdev,
                        **{k: v for k, v in p.extra},
                    }
                    for p in series.points
                ],
            }
            for series in (
                blocking["admission"],
                lane["admission"],
                blocking["resolution"],
                lane["resolution"],
            )
        },
        "admission_p99_speedup": {str(x): s for x, s in speedup.items()},
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")

    if args.check:
        mean_speedup = statistics.mean(speedup.values())
        if mean_speedup < args.min_speedup:
            print(
                f"FAIL: mean p99 admission speedup {mean_speedup:.1f}× is "
                f"below the required {args.min_speedup:.1f}×",
                file=sys.stderr,
            )
            return 1
        print(
            f"check OK: mean p99 admission speedup {mean_speedup:.1f}× "
            f">= {args.min_speedup:.1f}×"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
