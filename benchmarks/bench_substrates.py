"""Substrate micro-benchmarks: the engine pieces the algorithms stand on.

Not a paper figure; these keep the cost model honest (index lookups
must stay O(1)-ish, SCC linear) so regressions in the substrates don't
masquerade as algorithmic effects in Figures 4–8.
"""

import pytest

from repro.core import CoordinationGraph
from repro.db import ConjunctiveQuery
from repro.graphs import condensation, strongly_connected_components
from repro.logic import Atom, unify_atoms, var
from repro.networks import gnp_digraph, member_name
from repro.workloads import scale_free_workload


def test_bench_point_lookup(benchmark, members_db):
    """Indexed single-row lookup on the 82k-row member table."""
    atom = Atom(
        "Members",
        [member_name(41_000 % len(members_db.rows("Members"))), var("r"), var("i"), var("k")],
    )
    query = ConjunctiveQuery([atom])
    solution = benchmark(lambda: members_db.first_solution(query))
    assert solution is not None


def test_bench_two_way_join(benchmark, members_db):
    """Join of two member lookups through a shared karma variable."""
    shared = var("k")
    query = ConjunctiveQuery(
        [
            Atom("Members", [member_name(7), var("r1"), var("i1"), shared]),
            Atom("Members", [var("u"), var("r2"), "linux", shared]),
        ]
    )
    benchmark(lambda: members_db.first_solution(query))


def test_bench_unification(benchmark):
    """A single atom unification (the inner loop of graph building)."""
    left = Atom("R", [var("x"), "user00042", var("z")])
    right = Atom("R", [17, var("y"), var("w")])
    result = benchmark(lambda: unify_atoms(left, right))
    assert result is not None


def test_bench_scc_1000(benchmark):
    """Tarjan on a 1000-node random digraph."""
    graph = gnp_digraph(1000, 0.004, seed=3)
    components = benchmark(lambda: strongly_connected_components(graph))
    assert sum(len(c) for c in components) == 1000


def test_bench_condensation_1000(benchmark):
    graph = gnp_digraph(1000, 0.004, seed=4)
    cond = benchmark(lambda: condensation(graph))
    assert cond.component_count >= 1


def test_bench_graph_build_500(benchmark):
    """Coordination-graph construction for 500 queries (head-indexed)."""
    queries = scale_free_workload(500, out_degree=2, seed=5)
    graph = benchmark(lambda: CoordinationGraph.build(queries))
    assert graph.graph.node_count() == 500
