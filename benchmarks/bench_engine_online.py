"""Online arrival latency: incremental engine vs the seed submit path.

The Youtopia embedding (Section 6.1) processes entangled queries one
arrival at a time.  The seed implementation paid O(total pending
queries + total edges) per arrival — deep copies of the head index,
edge list and adjacency in ``with_query``, a whole-graph safety report,
a BFS for the weak component, and a full-edge-scan ``restricted_to`` —
so a stream of n arrivals cost O(n²) before any database work.  The
incremental engine pays amortized O(component) per arrival.

This benchmark measures mean per-arrival latency at pending-set sizes
100/300/1000: the pending pool is pre-filled with waiting queries
(their partners never arrive), then a stream of coordinating pairs is
timed through both engines.  Results are emitted as
``BENCH_engine_online.json`` (via the :mod:`repro.bench` harness) so
the perf trajectory is tracked from this PR onward.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_online.py            # full
    PYTHONPATH=src python benchmarks/bench_engine_online.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_engine_online.py --check    # gate ≥5×
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.bench import Series, run_series
from repro.bench.reporting import render_series
from repro.core import (
    CoordinationEngine,
    EntangledQuery,
    safety_report,
    scc_coordinate_on_graph,
)
from repro.core.coordination_graph import ExtendedEdge
from repro.errors import PreconditionError
from repro.graphs import DiGraph
from repro.logic import Constant, unifiable
from repro.networks import member_name
from repro.workloads import members_database, partner_query

PAIRS = 60  # timed coordinating pairs per measurement (2·PAIRS arrivals)
SIZES = (100, 300, 1000)
SMOKE_SIZES = (60, 120)
SMOKE_PAIRS = 15


# ---------------------------------------------------------------------------
# The seed path, preserved verbatim as the baseline under measurement.
# ---------------------------------------------------------------------------
class _SeedHeadIndex:
    """The pre-PR head index, including its copy-on-extend behaviour."""

    __slots__ = ("_buckets",)

    def __init__(self) -> None:
        self._buckets: Dict[tuple, dict] = {}

    def add(self, query: str, head_index: int, atom) -> None:
        key = (atom.relation, atom.arity)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = {
                "all": [],
                "by_pos": [dict() for _ in range(atom.arity)],
                "var_at": [[] for _ in range(atom.arity)],
            }
            self._buckets[key] = bucket
        entry = (query, head_index, atom)
        bucket["all"].append(entry)
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                bucket["by_pos"][position].setdefault(term.value, []).append(entry)
            else:
                bucket["var_at"][position].append(entry)

    def copy(self) -> "_SeedHeadIndex":
        dup = _SeedHeadIndex()
        for key, bucket in self._buckets.items():
            dup._buckets[key] = {
                "all": list(bucket["all"]),
                "by_pos": [
                    dict((v, list(es)) for v, es in m.items())
                    for m in bucket["by_pos"]
                ],
                "var_at": [list(es) for es in bucket["var_at"]],
            }
        return dup

    def candidates(self, post) -> List[tuple]:
        bucket = self._buckets.get((post.relation, post.arity))
        if bucket is None:
            return []
        best: Optional[List[tuple]] = None
        for position, term in enumerate(post.terms):
            if not isinstance(term, Constant):
                continue
            matching = bucket["by_pos"][position].get(term.value, [])
            candidate = matching + bucket["var_at"][position]
            if best is None or len(candidate) < len(best):
                best = candidate
        return bucket["all"] if best is None else best


class SeedGraph:
    """The pre-PR coordination graph: every extension deep-copies."""

    def __init__(self, queries, standardized, extended_edges, graph, head_index=None):
        self.queries = queries
        self.standardized = standardized
        self.extended_edges = extended_edges
        self.graph = graph
        self._head_index = head_index
        self._out_by_post: Dict[Tuple[str, int], List[ExtendedEdge]] = {}
        for edge in extended_edges:
            self._out_by_post.setdefault(
                (edge.source, edge.post_index), []
            ).append(edge)

    @classmethod
    def build(cls, queries) -> "SeedGraph":
        by_name = {q.name: q for q in queries}
        standardized = {q.name: q.standardized() for q in queries}
        index = _SeedHeadIndex()
        for name, std in standardized.items():
            for hi, head in enumerate(std.head):
                index.add(name, hi, head)
        edges: List[ExtendedEdge] = []
        graph = DiGraph()
        graph.add_nodes(by_name.keys())
        for name, std in standardized.items():
            for pi, post in enumerate(std.postconditions):
                for target_name, hi, head in index.candidates(post):
                    if unifiable(post, head):
                        edges.append(ExtendedEdge(name, pi, target_name, hi))
                        graph.add_edge(name, target_name)
        return cls(by_name, standardized, edges, graph, index)

    def with_query(self, query) -> "SeedGraph":
        std = query.standardized()
        queries = dict(self.queries)
        queries[query.name] = query
        standardized = dict(self.standardized)
        standardized[query.name] = std
        edges = list(self.extended_edges)
        graph = self.graph.copy()
        graph.add_node(query.name)
        if self._head_index is not None:
            index = self._head_index.copy()
        else:
            index = _SeedHeadIndex()
            for name, existing in self.standardized.items():
                for hi, head in enumerate(existing.head):
                    index.add(name, hi, head)
        new_edges: List[ExtendedEdge] = []
        for hi, head in enumerate(std.head):
            index.add(query.name, hi, head)
        for pi, post in enumerate(std.postconditions):
            for target_name, hi, head in index.candidates(post):
                if unifiable(post, head):
                    new_edges.append(ExtendedEdge(query.name, pi, target_name, hi))
        for name, existing in self.standardized.items():
            for pi, post in enumerate(existing.postconditions):
                for hi, head in enumerate(std.head):
                    if unifiable(post, head):
                        new_edges.append(ExtendedEdge(name, pi, query.name, hi))
        for edge in new_edges:
            edges.append(edge)
            graph.add_edge(edge.source, edge.target)
        return SeedGraph(queries, standardized, edges, graph, index)

    def edges_from_postcondition(self, query, post_index):
        return list(self._out_by_post.get((query, post_index), ()))

    def post_atom(self, edge):
        return self.standardized[edge.source].postconditions[edge.post_index]

    def head_atom(self, edge):
        return self.standardized[edge.target].head[edge.head_index]

    def names(self):
        return tuple(self.queries)

    def restricted_to(self, names) -> "SeedGraph":
        keep = set(names)
        queries = {n: q for n, q in self.queries.items() if n in keep}
        standardized = {n: q for n, q in self.standardized.items() if n in keep}
        edges = [
            e
            for e in self.extended_edges
            if e.source in keep and e.target in keep
        ]
        graph = DiGraph()
        graph.add_nodes(queries.keys())
        for edge in edges:
            graph.add_edge(edge.source, edge.target)
        return SeedGraph(queries, standardized, edges, graph)

    def __len__(self):
        return len(self.queries)


class SeedEngine:
    """The pre-PR ``CoordinationEngine.submit`` control loop, verbatim."""

    def __init__(self, db) -> None:
        self.db = db
        self._pending: Dict[str, EntangledQuery] = {}
        self._graph = SeedGraph.build([])

    def pending(self):
        return tuple(self._pending)

    def submit(self, query: EntangledQuery):
        if query.name in self._pending:
            raise PreconditionError(f"query {query.name!r} already pending")
        graph = self._graph.with_query(query)
        report = safety_report(graph)
        if not report.is_safe:
            raise PreconditionError("unsafe arrival")
        self._pending[query.name] = query
        self._graph = graph
        component = self._weak_component(graph, query.name)
        restricted = graph.restricted_to(component)
        result = scc_coordinate_on_graph(self.db, restricted)
        satisfied: Tuple[str, ...] = ()
        if result.chosen is not None:
            satisfied = result.chosen.members
            for name in satisfied:
                self._pending.pop(name, None)
            self._graph = self._graph.restricted_to(self._pending.keys())
        return component, result, satisfied

    @staticmethod
    def _weak_component(graph, start: str) -> List[str]:
        seen: Set[str] = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            neighbours = graph.graph.successors(node) | graph.graph.predecessors(
                node
            )
            for neighbour in neighbours:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return sorted(seen)


# ---------------------------------------------------------------------------
# Workload: a pre-filled waiting pool plus a stream of coordinating pairs.
# ---------------------------------------------------------------------------
def _prefilled_engine(make_engine, pending_size: int, db):
    """An engine holding ``pending_size`` waiting queries.

    Each waiting query posts to a partner that never arrives, so it
    stays pending forever — the realistic backlog the online system
    carries while serving fresh traffic.
    """
    engine = make_engine(db)
    absent_base = 10 ** 6
    for i in range(pending_size):
        engine.submit(
            partner_query(member_name(i), [member_name(absent_base + i)])
        )
    assert len(engine.pending()) == pending_size
    return engine


def _timed_arrivals(engine, pending_size: int, pairs: int):
    """Submit ``pairs`` mutually-coordinating pairs; each completes and
    leaves, so the pending size stays ~constant during measurement."""
    base = pending_size
    for k in range(pairs):
        a = member_name(base + 2 * k)
        b = member_name(base + 2 * k + 1)
        engine.submit(partner_query(a, [b]))
        outcome = engine.submit(partner_query(b, [a]))
    return outcome


def measure(
    name: str,
    make_engine,
    sizes,
    pairs: int,
    repeats: int,
) -> Series:
    dbs = {
        size: members_database(size=size + 2 * pairs + 8, seed=2012)
        for size in sizes
    }

    def make_point(x, repeat):
        engine = _prefilled_engine(make_engine, int(x), dbs[int(x)])
        return lambda: _timed_arrivals(engine, int(x), pairs)

    series = run_series(
        name,
        list(sizes),
        make_point,
        repeats=repeats,
        x_label="pending queries",
        y_label=f"seconds per {2 * pairs} arrivals",
    )
    return series


def per_arrival_us(series: Series, pairs: int) -> Dict[int, float]:
    return {
        int(p.x): p.seconds / (2 * pairs) * 1e6 for p in series.points
    }


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_engine_online.py",
        description="Per-arrival latency vs pending-set size, incremental vs seed.",
    )
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the largest size shows a ≥5× speedup",
    )
    parser.add_argument(
        "--out",
        default="BENCH_engine_online.json",
        help="output JSON path (default: ./BENCH_engine_online.json)",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else SIZES
    pairs = SMOKE_PAIRS if args.smoke else PAIRS
    repeats = 1 if args.smoke else 3

    incremental = measure(
        "incremental submit", lambda db: CoordinationEngine(db), sizes, pairs, repeats
    )
    seed = measure("seed submit", SeedEngine, sizes, pairs, repeats)

    print(render_series(incremental, "Incremental engine (this PR)"))
    print()
    print(render_series(seed, "Seed submit path (pre-PR baseline)"))
    print()

    inc_us = per_arrival_us(incremental, pairs)
    seed_us = per_arrival_us(seed, pairs)
    speedup = {size: seed_us[size] / inc_us[size] for size in inc_us}
    for size in sorted(speedup):
        print(
            f"pending={size:5d}: incremental {inc_us[size]:9.1f} µs/arrival, "
            f"seed {seed_us[size]:9.1f} µs/arrival  →  {speedup[size]:6.2f}×"
        )

    payload = {
        "benchmark": "engine_online",
        "smoke": args.smoke,
        "arrivals_per_point": 2 * pairs,
        "repeats": repeats,
        "series": {
            series.name: {
                "x_label": series.x_label,
                "y_label": series.y_label,
                "points": [
                    {
                        "pending": int(p.x),
                        "seconds": p.seconds,
                        "seconds_stdev": p.seconds_stdev,
                        "us_per_arrival": p.seconds / (2 * pairs) * 1e6,
                    }
                    for p in series.points
                ],
            }
            for series in (incremental, seed)
        },
        "speedup": {str(size): speedup[size] for size in speedup},
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")

    if args.check:
        largest = max(speedup)
        if speedup[largest] < 5.0:
            print(
                f"FAIL: speedup at pending={largest} is {speedup[largest]:.2f}× (< 5×)",
                file=sys.stderr,
            )
            return 1
        print(f"OK: speedup at pending={largest} is {speedup[largest]:.2f}× (≥ 5×)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
