"""Figure 7 — Consistent Coordination Algorithm vs. number of values.

Paper setup: 50 unconstrained queries, complete friendship graph, and
Flights tables of 100–1000 rows in which every flight has a unique
(destination, day) pair — so the number of candidate coordination
values equals the table size and no pruning ever fires.  The paper
calls this "the absolutely worst possible scenario".

Paper claim: processing time grows linearly with the number of options
for the coordination attributes.
"""

import pytest

from repro.core import consistent_coordinate
from repro.workloads import flight_setup, worst_case_database, worst_case_queries

FLIGHT_COUNTS = list(range(100, 1001, 100))
NUM_USERS = 50


@pytest.mark.parametrize("flights", FLIGHT_COUNTS)
def test_fig7_values_processing_time(benchmark, flights):
    db = worst_case_database(flights, NUM_USERS)
    setup = flight_setup()
    queries = worst_case_queries(NUM_USERS)

    result = benchmark.pedantic(
        lambda: consistent_coordinate(db, setup, queries),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )

    assert result.found
    # Worst case: every distinct value is a candidate...
    assert result.stats.candidate_values == flights
    # ...and nothing is ever pruned: everyone coordinates everywhere.
    assert all(c.size == NUM_USERS for c in result.candidates)
    # O(n) database queries regardless of the table size.
    assert result.stats.db_queries <= 3 * NUM_USERS
    benchmark.extra_info["values"] = result.stats.candidate_values
    benchmark.extra_info["db_queries"] = result.stats.db_queries
