"""Shared fixtures for the benchmark suite.

The member table is the expensive shared resource (the paper's
Slashdot-sized 82 168-row table); it is built once per session.  Set
``REPRO_BENCH_MEMBERS`` to override the size (e.g. for a quick CI run).
"""

from __future__ import annotations

import os

import pytest

from repro.networks import SLASHDOT_SIZE
from repro.workloads import members_database


def member_table_size() -> int:
    """Paper-faithful by default; overridable for quick runs."""
    return int(os.environ.get("REPRO_BENCH_MEMBERS", SLASHDOT_SIZE))


@pytest.fixture(scope="session")
def members_db():
    """The Slashdot-sized member table (Section 6.1 experiments)."""
    return members_database(size=member_table_size(), seed=2012)
