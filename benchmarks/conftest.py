"""Shared fixtures for the benchmark suite.

The member table is the expensive shared resource (the paper's
Slashdot-sized 82 168-row table); it is built once per session.  Set
``REPRO_BENCH_MEMBERS`` to override the size (e.g. for a quick CI run).
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

import pytest

from repro.networks import SLASHDOT_SIZE
from repro.workloads import members_database

#: Where the durable-arrival series keeps its WAL/snapshot directories
#: (see ``bench_engine_service.SCRATCH``).  Wiped around every session:
#: a stale WAL left by an interrupted run would make the next durable
#: measurement *recover* (replay someone else's journal) instead of
#: benchmarking a clean accept path.
SCRATCH_DIRS = (Path(__file__).resolve().parent / "_scratch",)


@pytest.fixture(scope="session", autouse=True)
def clean_scratch_dirs():
    for scratch in SCRATCH_DIRS:
        shutil.rmtree(scratch, ignore_errors=True)
    yield
    for scratch in SCRATCH_DIRS:
        shutil.rmtree(scratch, ignore_errors=True)


def member_table_size() -> int:
    """Paper-faithful by default; overridable for quick runs."""
    return int(os.environ.get("REPRO_BENCH_MEMBERS", SLASHDOT_SIZE))


@pytest.fixture(scope="session")
def members_db():
    """The Slashdot-sized member table (Section 6.1 experiments)."""
    return members_database(size=member_table_size(), seed=2012)
