"""Facts-scale evaluator latency: compiled plans + composite indexes vs
the pre-PR evaluator.

Every coordination decision bottoms out in conjunctive-query evaluation,
and at millions of facts the evaluator's inner loop is the ceiling on
everything above it.  This benchmark sweeps relation sizes 10^4 → 10^6
rows across the two query shapes that bracket the workload:

* **chain** — ``Edge(a, y) ∧ Edge(y, a)`` over an m×m complete grid
  (n = m² rows).  The second atom probes with *two* bound positions;
  the pre-PR evaluator serves that from the smallest single-column
  bucket (m rows) plus a residual filter, O(m) per candidate and O(n)
  per query, while the composite hash index answers each probe with
  one exact-match bucket lookup — O(m) per query.

* **star** — ``R0(x, c0) ∧ R1(x, c1) ∧ R2(x, c2)`` where the three
  attribute columns have cardinalities 8/64/4096.  All atoms look
  identical to the pre-PR constant-count ordering (one constant each),
  so it enumerates the fat n/8 bucket first; the plan compiler's
  distinct-value statistics start from the n/4096 bucket instead.

Per-query latency is measured over a batch of queries with distinct
constants (steady state: indexes and plans warmed by one untimed
query, as a long-running service would be).  Results are emitted as
``BENCH_evaluator_scale.json``; CI runs ``--smoke`` and gates the
series against committed baselines, and ``--check`` enforces the ≥5×
acceptance bound on the chain (multi-bound-probe) shape at the largest
size.

Usage::

    PYTHONPATH=src python benchmarks/bench_evaluator_scale.py           # full
    PYTHONPATH=src python benchmarks/bench_evaluator_scale.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_evaluator_scale.py --check   # gate ≥5×
"""

from __future__ import annotations

import argparse
import json
import sys
from heapq import heappop, heappush
from math import isqrt
from pathlib import Path
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.bench import Series, run_series
from repro.bench.reporting import render_series
from repro.db import ConjunctiveQuery, Database, EngineStats
from repro.logic import Atom, Constant, Variable

SIZES = (10_000, 100_000, 1_000_000)
SMOKE_SIZES = (2_500, 10_000)
QUERIES = 8  # timed queries per point, distinct constants
SMOKE_QUERIES = 5
STAR_CARDINALITIES = (8, 64, 4096)


# ---------------------------------------------------------------------------
# The pre-PR evaluator, preserved verbatim as the baseline under measurement:
# greedy constant-count atom ordering re-sorted per call, per-row isinstance
# term classification, and multi-position probes answered from the smallest
# single-column bucket plus a residual filter.
# ---------------------------------------------------------------------------
_UNBOUND = object()


def _seed_match(relation, bindings: Dict[int, Hashable]) -> Iterator[Tuple]:
    """The pre-composite-index ``Relation.match``: best single-column
    bucket plus residual filter."""
    rows = relation._rows
    if not bindings:
        return iter(rows)
    if len(bindings) == 1:
        ((position, value),) = bindings.items()
        hits = relation._index_for(position).get(value)
        if not hits:
            return iter(())
        return map(rows.__getitem__, hits)

    def filtered() -> Iterator[Tuple]:
        best_position = None
        best_rows: Optional[List[int]] = None
        for position, value in bindings.items():
            bucket = relation._index_for(position).get(value, [])
            if best_rows is None or len(bucket) < len(best_rows):
                best_position, best_rows = position, bucket
                if not bucket:
                    return
        rest = [(p, v) for p, v in bindings.items() if p != best_position]
        for i in best_rows:
            row = rows[i]
            if all(row[p] == v for p, v in rest):
                yield row

    return filtered()


class SeedEvaluator:
    """The pre-PR backtracking evaluator over the same relations."""

    def __init__(self, relations, stats: EngineStats) -> None:
        self._relations = relations
        self._stats = stats

    def solutions(self, query: ConjunctiveQuery) -> Iterator[Dict]:
        self._stats.queries_issued += 1
        yield from self._search(self._order_atoms(list(query.atoms)), {})

    def _order_atoms(self, atoms: List[Atom]) -> List[Atom]:
        k = len(atoms)
        if k <= 1:
            return list(atoms)

        def global_rank(atom: Atom) -> Tuple[int, int]:
            constants = sum(1 for t in atom.terms if isinstance(t, Constant))
            relation = self._relations.get(atom.relation)
            size = len(relation) if relation is not None else 0
            return (-constants, size)

        ranked = sorted(range(k), key=lambda i: global_rank(atoms[i]))
        rank_of = {index: position for position, index in enumerate(ranked)}
        by_variable: Dict[Variable, List[int]] = {}
        for index, atom in enumerate(atoms):
            for variable in atom.variables():
                by_variable.setdefault(variable, []).append(index)
        ordered: List[Atom] = []
        placed = [False] * k
        bound_vars: set = set()
        heap: List[Tuple[int, int]] = []

        def place(index: int) -> None:
            placed[index] = True
            ordered.append(atoms[index])
            for variable in atoms[index].variables():
                if variable not in bound_vars:
                    bound_vars.add(variable)
                    for neighbour in by_variable.get(variable, ()):
                        if not placed[neighbour]:
                            heappush(heap, (rank_of[neighbour], neighbour))

        cursor = 0
        while len(ordered) < k:
            while heap and placed[heap[0][1]]:
                heappop(heap)
            if heap:
                _, index = heappop(heap)
                place(index)
                continue
            while placed[ranked[cursor]]:
                cursor += 1
            place(ranked[cursor])
        return ordered

    def _candidate_rows(self, atom: Atom, bound: Dict) -> Iterator[Tuple]:
        relation = self._relations.get(atom.relation)
        if relation is None or not len(relation):
            return iter(())
        fixed: Dict[int, Hashable] = {}
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                fixed[position] = term.value
            elif term in bound:
                fixed[position] = bound[term]
        return _seed_match(relation, fixed)

    def _search(self, atoms: List[Atom], bound: Dict) -> Iterator[Dict]:
        total = len(atoms)
        if total == 0:
            self._stats.solutions_found += 1
            yield dict(bound)
            return
        stack: List[List[object]] = [[self._candidate_rows(atoms[0], bound), []]]
        while stack:
            depth = len(stack) - 1
            frame = stack[-1]
            rows, added = frame
            for variable in added:
                del bound[variable]
            frame[1] = []
            advanced = False
            for row in rows:
                self._stats.tuples_examined += 1
                extension = self._try_bind(atoms[depth], row, bound)
                if extension is None:
                    continue
                _, new_added = extension
                frame[1] = new_added
                if depth + 1 == total:
                    self._stats.solutions_found += 1
                    yield dict(bound)
                    advanced = True
                    break
                stack.append([self._candidate_rows(atoms[depth + 1], bound), []])
                advanced = True
                break
            if not advanced:
                stack.pop()

    def _try_bind(self, atom: Atom, row: Tuple, bound: Dict):
        added: List[Variable] = []
        for position, term in enumerate(atom.terms):
            value = row[position]
            if isinstance(term, Constant):
                if term.value != value:
                    self._undo(bound, added)
                    return None
            else:
                existing = bound.get(term, _UNBOUND)
                if existing is _UNBOUND:
                    bound[term] = value
                    added.append(term)
                elif existing != value:
                    self._undo(bound, added)
                    return None
        return bound, added

    @staticmethod
    def _undo(bound: Dict, added: List[Variable]) -> None:
        for variable in added:
            del bound[variable]


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------
def chain_database(rows: int) -> Database:
    """``Edge`` as the m×m complete grid, m = isqrt(rows)."""
    m = isqrt(rows)
    db = Database()
    db.create_relation("Edge", ["src", "dst"])
    db.insert_many("Edge", ((i, j) for i in range(m) for j in range(m)))
    return db


def chain_query(constant: int) -> ConjunctiveQuery:
    y = Variable("y")
    return ConjunctiveQuery(
        [Atom("Edge", [constant, y]), Atom("Edge", [y, constant])]
    )


def star_database(rows: int) -> Database:
    """Three satellite relations over a shared key, attribute
    cardinalities 8/64/4096."""
    db = Database()
    for index, cardinality in enumerate(STAR_CARDINALITIES):
        name = f"R{index}"
        db.create_relation(name, ["x", "attr"])
        db.insert_many(name, ((i, i % cardinality) for i in range(rows)))
    return db


def star_query(constant: int) -> ConjunctiveQuery:
    x = Variable("x")
    return ConjunctiveQuery(
        [
            Atom(f"R{index}", [x, constant % cardinality])
            for index, cardinality in enumerate(STAR_CARDINALITIES)
        ]
    )


_SHAPES = {
    "chain": (chain_database, chain_query, lambda db: isqrt(len(db.relation("Edge")))),
    "star": (star_database, star_query, lambda db: len(db.relation("R0"))),
}


def _drain(evaluator, query: ConjunctiveQuery) -> int:
    return sum(1 for _ in evaluator.solutions(query))


def _run_batch(evaluator, make_query, constants: List[int]) -> int:
    found = 0
    for constant in constants:
        found += _drain(evaluator, make_query(constant))
    return found


def measure_shape(
    shape: str, sizes, queries: int, repeats: int
) -> Tuple[Series, Series, Dict[int, float]]:
    """Time (compiled, seed) series for one shape; returns the per-size
    compiled/seed speedup as well."""
    make_db, make_query, constant_space = _SHAPES[shape]
    dbs = {size: make_db(size) for size in sizes}

    def constants_for(db) -> List[int]:
        space = constant_space(db)
        step = max(1, space // (queries + 1))
        return [(1 + k * step) % space for k in range(queries)]

    def make_compiled(x, repeat):
        db = dbs[int(x)]
        constants = constants_for(db)
        evaluator = db._evaluator
        _drain(evaluator, make_query(constants[0]))  # warm indexes + plan
        return lambda: _run_batch(evaluator, make_query, constants)

    def make_seed(x, repeat):
        db = dbs[int(x)]
        constants = constants_for(db)
        evaluator = SeedEvaluator(db._relations, EngineStats())
        _drain(evaluator, make_query(constants[0]))  # warm single-column indexes
        return lambda: _run_batch(evaluator, make_query, constants)

    # Equivalence spot check: both evaluators must produce the same
    # solution sets on every size (the benchmark is only meaningful if
    # the fast path answers the same question).
    for size, db in dbs.items():
        constant = constants_for(db)[0]
        query = make_query(constant)
        compiled = {tuple(sorted(s.items(), key=lambda kv: str(kv[0])))
                    for s in db._evaluator.solutions(query)}
        seed = {tuple(sorted(s.items(), key=lambda kv: str(kv[0])))
                for s in SeedEvaluator(db._relations, EngineStats()).solutions(query)}
        assert compiled == seed, f"{shape}@{size}: evaluator mismatch"

    compiled_series = run_series(
        f"{shape} compiled",
        list(sizes),
        make_compiled,
        repeats=repeats,
        x_label="rows",
        y_label=f"seconds per {queries} queries",
    )
    seed_series = run_series(
        f"{shape} seed",
        list(sizes),
        make_seed,
        repeats=repeats,
        x_label="rows",
        y_label=f"seconds per {queries} queries",
    )
    speedup = {
        int(c.x): (s.seconds / c.seconds if c.seconds else float("inf"))
        for c, s in zip(compiled_series.points, seed_series.points)
    }
    return compiled_series, seed_series, speedup


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_evaluator_scale.py",
        description="Per-query latency vs relation size, compiled plans vs "
        "the pre-PR evaluator.",
    )
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the chain shape shows a ≥5× speedup at "
        "the largest size",
    )
    parser.add_argument(
        "--out",
        default="BENCH_evaluator_scale.json",
        help="output JSON path (default: ./BENCH_evaluator_scale.json)",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else SIZES
    queries = SMOKE_QUERIES if args.smoke else QUERIES
    repeats = 1 if args.smoke else 2

    payload = {
        "benchmark": "evaluator_scale",
        "smoke": args.smoke,
        "queries_per_point": queries,
        "repeats": repeats,
        "series": {},
        "speedup": {},
    }
    speedups: Dict[str, Dict[int, float]] = {}
    for shape in ("chain", "star"):
        compiled_series, seed_series, speedup = measure_shape(
            shape, sizes, queries, repeats
        )
        speedups[shape] = speedup
        print(render_series(compiled_series, f"{shape}: compiled plans (this PR)"))
        print()
        print(render_series(seed_series, f"{shape}: seed evaluator (pre-PR)"))
        print()
        for size in sorted(speedup):
            compiled_us = next(
                p.seconds for p in compiled_series.points if int(p.x) == size
            ) / queries * 1e6
            seed_us = next(
                p.seconds for p in seed_series.points if int(p.x) == size
            ) / queries * 1e6
            print(
                f"{shape} rows={size:8d}: compiled {compiled_us:10.1f} µs/query, "
                f"seed {seed_us:10.1f} µs/query  →  {speedup[size]:7.2f}×"
            )
        print()
        for series in (compiled_series, seed_series):
            payload["series"][series.name] = {
                "x_label": series.x_label,
                "y_label": series.y_label,
                "points": [
                    {
                        "rows": int(p.x),
                        "seconds": p.seconds,
                        "seconds_stdev": p.seconds_stdev,
                        "us_per_query": p.seconds / queries * 1e6,
                    }
                    for p in series.points
                ],
            }
        payload["speedup"][shape] = {
            str(size): value for size, value in speedup.items()
        }

    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    if args.check:
        largest = max(speedups["chain"])
        value = speedups["chain"][largest]
        if value < 5.0:
            print(
                f"FAIL: chain speedup at rows={largest} is {value:.2f}× (< 5×)",
                file=sys.stderr,
            )
            return 1
        print(f"OK: chain speedup at rows={largest} is {value:.2f}× (≥ 5×)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
