"""Execution tracing: explain *why* a coordination run did what it did.

The paper's walkthroughs (Sections 4 and 5) narrate their algorithms
step by step — "the first node we analyse is {qC, qG}...", "we conclude
that there is no coordinating set that can go to Cinemark".  This
module captures the same narration mechanically: both algorithms accept
an optional :class:`Trace` and emit structured events, which
:func:`render_trace` turns into the human-readable story.

Tracing is opt-in and zero-cost when off (a ``None`` check per event).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Tuple, Union


@dataclass(frozen=True)
class ComponentProcessed:
    """One component of the SCC algorithm's reverse-topological pass."""

    component: int
    members: Tuple[str, ...]
    involved: Tuple[str, ...]
    # 'ok' | 'successor-failed' | 'unification-failed' | 'db-failed',
    # or 'cached:<one of those>' when a memoized state was reused.
    status: str
    db_queries: int = 0

    def describe(self) -> str:
        members = ", ".join(self.members)
        if self.status.startswith("cached:"):
            verdict = self.status[len("cached:"):]
            if verdict == "ok":
                return (
                    f"component {{{members}}}: reused memoized grounding over "
                    f"{len(self.involved)} queries — candidate recorded"
                )
            return (
                f"component {{{members}}}: reused memoized verdict "
                f"({verdict}) — no new database work"
            )
        if self.status == "ok":
            return (
                f"component {{{members}}}: combined query over "
                f"{len(self.involved)} queries grounded — candidate recorded"
            )
        if self.status == "successor-failed":
            return f"component {{{members}}}: skipped (a successor already failed)"
        if self.status == "unification-failed":
            return f"component {{{members}}}: postcondition/head unification failed"
        return f"component {{{members}}}: combined query unsatisfiable in the database"


@dataclass(frozen=True)
class PreprocessingRemoved:
    """Queries discarded before evaluation."""

    removed: Tuple[str, ...]

    def describe(self) -> str:
        if not self.removed:
            return "preprocessing: nothing to remove"
        names = ", ".join(sorted(self.removed))
        return (
            f"preprocessing: removed {{{names}}} "
            f"(unsatisfiable postconditions, cascading)"
        )


@dataclass(frozen=True)
class ValueExamined:
    """One candidate value of the Consistent algorithm's main loop."""

    value: Tuple[Hashable, ...]
    initial_users: Tuple[str, ...]
    surviving_users: Tuple[str, ...]
    removals: Tuple[Tuple[str, str], ...]  # (user, reason)

    def describe(self) -> str:
        value = ", ".join(str(v) for v in self.value)
        lines = [f"value ({value}): start {{{', '.join(self.initial_users) or '∅'}}}"]
        for user, reason in self.removals:
            lines.append(f"    - remove {user}: {reason}")
        if self.surviving_users:
            lines.append(
                f"    => coordinating set {{{', '.join(self.surviving_users)}}}"
            )
        else:
            lines.append("    => cleaned to ∅, no coordinating set here")
        return "\n".join(lines)


@dataclass(frozen=True)
class SelectionMade:
    """The final choice among recorded candidates."""

    description: str

    def describe(self) -> str:
        return f"selection: {self.description}"


TraceEvent = Union[
    ComponentProcessed, PreprocessingRemoved, ValueExamined, SelectionMade
]


@dataclass
class Trace:
    """An append-only event log attached to one algorithm run."""

    events: List[TraceEvent] = field(default_factory=list)

    def add(self, event: TraceEvent) -> None:
        """Record one event."""
        self.events.append(event)

    def of_type(self, event_type: type) -> List[TraceEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if isinstance(e, event_type)]

    def __len__(self) -> int:
        return len(self.events)


def render_trace(trace: Trace, title: str = "coordination trace") -> str:
    """Render the event log as the paper-style narration."""
    lines = [title, "-" * len(title)]
    for event in trace.events:
        lines.append(event.describe())
    return "\n".join(lines)
