"""A component-sharded coordination service over N engine shards.

The paper's Youtopia embedding (Section 6.1) is a single-node loop:
one coordination graph, one arrival at a time.  Its structure, though,
is embarrassingly partitionable — *weakly connected components never
interact*: evaluation, safety, and deletion are all per-component, so
any placement of whole components onto independent engines produces
exactly the single-engine outcomes.  :class:`ShardedCoordinationService`
exploits that invariant: it routes every arrival to one of N private
:class:`~repro.core.engine.CoordinationEngine` shards and maintains the
invariant that **each weak component lives entirely inside one shard**.

Routing (per arrival):

1. look up which shards hold pending queries the newcomer would share
   an edge with (a read-only
   :meth:`~repro.core.engine.CoordinationEngine.incident_pending` probe
   per shard — the same candidate-index work a single engine does,
   just partitioned);
2. no incident shard → place on the least-loaded shard (fewest pending
   queries, ties broken by lowest shard index — deterministic for a
   given stream, and reproducible across processes, unlike salted
   string hashing);
3. one incident shard → place there;
4. several incident shards → the arrival's edges *span* shards, which
   would break the invariant.  The touched components **migrate**: the
   shard holding the largest touched mass wins, every other touched
   component is released from its donor shard
   (:meth:`~repro.core.engine.CoordinationEngine.release_component`,
   handles stay ``PENDING``) and adopted by the winner
   (:meth:`~repro.core.engine.CoordinationEngine.adopt`, no
   evaluation), and the newcomer lands there too.  Cost is
   O(moved components), and a component only ever moves when an
   arrival actually links it to another shard's component.

Concurrent executor (``workers=N``)
-----------------------------------
With ``workers=N`` the same router runs as a *control plane* over N
worker threads, one per shard, each consuming a bounded FIFO mailbox of
jobs (see :mod:`repro.core.executor`).  The split follows the engine's
own phase split: **admission** (probe, safety, graph delta — cheap) is
performed synchronously by the routing thread under the target
engine's lock, so every later routing probe observes all earlier
admissions; **evaluation** (database joins — expensive) is enqueued to
the shard's mailbox and runs on the worker with the engine lock
released around the database work
(:meth:`~repro.core.engine.CoordinationEngine.evaluate_admitted_phased`).

Equivalence with the serial service — and therefore with a single
engine — rests on a *component-freeze* rule: while a component has an
outstanding (queued or running) evaluation, the router will not admit
into it, migrate it, retract from it, or rebalance it; it waits for
the evaluation and re-probes.  Under that rule a deferred evaluation
is indistinguishable from one run inline at admission time: every
subsequent operation that could observe the component first waits it
out, operations on other components commute with it, and database
writes (:meth:`insert`) barrier behind *all* outstanding evaluations.
Blocking :meth:`submit` additionally waits for its own evaluation, so
its handles resolve with byte-identical outcomes to the serial path;
:meth:`submit_nowait` returns right after admission and lets the
evaluation overlap.

User resolution callbacks fire on a dedicated dispatcher thread, never
on a shard worker, so a callback may re-enter the service without
deadlocking the shard that resolved it.  Handles stay thread-safe
(:meth:`~repro.core.lifecycle.QueryHandle.wait`), and the shared
database synchronizes reads/writes through its own reader–writer lock.

Storage backends (``backend="shared"``/``"replicated"``)
--------------------------------------------------------
Where shard evaluations *read from* is pluggable
(:mod:`repro.db.backend`).  The default shared backend has every shard
evaluate against the one authoritative database under its
reader–writer lock.  The **replicated** backend gives each shard a
private lock-free replica, lazily re-synced from the authoritative
store at evaluation *plan* time by diffing the per-relation
:meth:`~repro.db.Database.data_versions` stamps — so the expensive
evaluation phase does no cross-shard locking at all.  Invalidation
rides the write path: :meth:`insert` (after its evaluation barrier)
lands in the authoritative store, whose write listener bumps the
backend's write token; the next plan-phase acquisition on any shard
sees the moved token and copies exactly the changed relations' new
rows.  Replicas sync to the monotone authoritative state, so migration
re-homing a component onto another shard never lets it observe older
data than its donor shard did.  Outcomes are byte-identical across
backends — asserted by the same equivalence and journal-replay fuzz
suites that pin the worker mode to the serial service.

Process executor (``executor="process"``)
-----------------------------------------
The same router can drive shards hosted in worker *processes*
(:mod:`repro.core.procexec`): each shard's engine lives in a child
process with a private lock-free database replica, commanded over a
framed request/reply pipe (:mod:`repro.db.wire`), with replica sync
payloads — serialized per-relation row tails keyed by ``data_versions``
stamps — riding the evaluation commands.  Handles stay router-side
proxies resolved from wire records, so ``wait``/callbacks/``status``
and handle identity across migrations are unchanged, and the freeze
rule and journal linearization apply verbatim.  A worker process that
dies mid-stream rejects its handles with a reason naming the crash and
surfaces :class:`~repro.errors.ConcurrencyError` from the affected
calls — ``drain`` and blocking submits fail fast instead of hanging.

Remote executor (``executor="remote"``) and failover
-----------------------------------------------------
``ServiceConfig(executor="remote", remote_shards=[...])`` drives the
same router over shards hosted on *other machines*: each address names
a :class:`~repro.core.remote.ShardHost` (``python -m repro shard-host``)
and gets a :class:`~repro.core.remote.RemoteShardTransport` — the TCP
implementation of the shard seam (:mod:`repro.core.transport`), with
connect-time snapshot warm-up and tombstone-bearing replica sync.
Uniquely to this executor, worker death is *survivable*: the proxy's
``on_death`` hook re-homes the dead shard's components onto the
least-loaded surviving shard (the same release/adopt machinery as
migration — ``adopt`` rebuilds the component graph from the queries
themselves, so no dead-worker state is needed), failed evaluations
re-run on the new home, and in-flight flushes restart over the
survivors.  Re-run evaluations never committed on the dead shard
(its reply never arrived), so the recovered outcomes stay
byte-identical to a never-crashed service — the network kill-fuzz
suite's contract.  With no survivor left, death degrades to the
process executor's behaviour: orphans reject with a reason naming the
crash.  See DESIGN.md §13.

Because the invariant holds at every step, the service returns
**identical coordinating sets** (same members, same assignments) as a
single engine fed the same submit/retract stream — the equivalence the
test suite asserts on the partner and flights workloads, serially and
with workers.  Two deliberate deviations from single-engine behaviour
are documented in DESIGN.md §6: ``flush`` retires one set *per shard*
rather than one globally, and an unsafe arrival may leave behind the
migrations its routing performed (components are merely re-homed;
outcomes are unaffected).
"""

from __future__ import annotations

import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..concurrency import SHUTDOWN_GRACE, Deadline
from ..db import BackendSpec, Database, resolve_backend, wire
from ..db.database import MutationEvent
from ..db.durability import (
    DurabilitySpec,
    DurableStore,
    RecoveredState,
    build_snapshot_payload,
    resolve_durability,
)
from ..db.stats import evaluation_cost
from ..errors import ConcurrencyError, PreconditionError
from .engine import CoordinationEngine
from .executor import (
    CallbackDispatcher,
    ShardWorker,
    raise_collected,
    resolve_executor,
)
from .procexec import ProcessShardExecutor
from .remote import Address, RemoteShardTransport
from .lifecycle import (
    QueryHandle,
    QueryState,
    ResolutionCallback,
    record_final_state,
)
from .query import EntangledQuery
from .result import CoordinationResult
from .scc_coordination import SelectionCriterion, largest_candidate

#: One linearized operation of the service's optional journal.
JournalEntry = Tuple[Any, ...]


@dataclass(frozen=True)
class ServiceConfig:
    """Typed construction options for :class:`ShardedCoordinationService`.

    One value object instead of a twelve-keyword pile: build it once,
    pass it as the service's second argument, :meth:`evolve` variants
    of it.  Field semantics are documented on the service class (each
    field matches its former keyword argument 1:1, as do the CLI's
    ``online`` flags); the legacy keyword form still works but emits a
    :class:`DeprecationWarning`.

    ``remote_shards`` is the one field with no keyword ancestry: under
    ``executor="remote"`` it lists the ``HOST:PORT`` address (or
    ``(host, port)`` tuple) of one :class:`~repro.core.remote.ShardHost`
    per shard — the shard count *is* ``len(remote_shards)``.
    """

    shards: int = 2
    workers: Optional[int] = None
    choose: SelectionCriterion = largest_candidate
    check_safety: bool = True
    reuse_groundings: bool = False
    reuse_component_states: bool = True
    mailbox_capacity: int = 1024
    backend: BackendSpec = "shared"
    executor: str = "thread"
    durability: DurabilitySpec = None
    control_lane: bool = True
    remote_shards: Tuple[Address, ...] = ()
    #: Ablation toggles (``None`` inherits the database's current
    #: setting, which defaults to on).  ``plan_cache=False`` recompiles
    #: every evaluation's plan; ``composite_indexes=False`` degrades
    #: multi-column probes to single-column probe + residual filter.
    #: Both are result-identical — they exist so the ablation harness
    #: can price each feature (DESIGN.md §14).
    plan_cache: Optional[bool] = None
    composite_indexes: Optional[bool] = None
    #: Placement policy for routing and rebalancing: ``"cost"``
    #: (default) balances evaluation-cost scores
    #: (:meth:`ShardedCoordinationService.shard_cost_scores`);
    #: ``"pending"`` restores the pre-cost policy of balancing raw
    #: pending counts.  Placement never changes outcomes, only which
    #: shard does the work.
    placement: str = "cost"

    def __post_init__(self) -> None:
        # Normalize: accept any iterable of addresses, store a tuple so
        # the config stays hashable/frozen.
        object.__setattr__(self, "remote_shards", tuple(self.remote_shards))
        if self.placement not in ("cost", "pending"):
            raise PreconditionError(
                f"unknown placement policy {self.placement!r} "
                "(expected 'cost' or 'pending')"
            )

    def evolve(self, **changes: Any) -> "ServiceConfig":
        """A copy of this config with ``changes`` applied."""
        return replace(self, **changes)


_CONFIG_FIELDS = frozenset(f.name for f in dataclass_fields(ServiceConfig))


class ShardedCoordinationService:
    """Routes a query-lifecycle stream across component-sharded engines.

    The public surface mirrors the engine's lifecycle API —
    :meth:`submit`, :meth:`submit_many`, :meth:`retract`,
    :meth:`status`, :meth:`on_resolved`, :meth:`flush`,
    :meth:`pending` — plus shard introspection, and (for the worker
    mode) :meth:`submit_nowait`, :meth:`insert`, :meth:`flush_drain`,
    :meth:`drain`, :meth:`rebalance` and :meth:`close`.  Handles
    returned here are ordinary
    :class:`~repro.core.lifecycle.QueryHandle` objects and keep their
    identity across shard migrations (callbacks survive the move).

    Parameters
    ----------
    db:
        The shared database instance (all shards evaluate against it;
        its reader–writer lock is the only synchronization evaluation
        needs).
    config:
        A :class:`ServiceConfig` carrying every other option.  The
        field-per-field meanings follow (named after the former
        keyword arguments, which are still accepted — with a
        :class:`DeprecationWarning` — for one transition cycle; a bare
        integer second argument is read as the legacy positional
        ``shards``).
    shards:
        Number of engine shards (≥ 1; 1 degenerates to a single engine
        behind the routing facade).  Ignored when ``workers`` is given.
    workers:
        ``None`` (default) drives all shards serially from the calling
        thread — the paper-faithful loop.  An integer N runs N shards,
        each on its own worker thread behind a FIFO mailbox; see the
        module docstring for the concurrency model.  Call
        :meth:`close` (or use the service as a context manager) when
        done.
    mailbox_capacity:
        Bound on each shard's job mailbox (worker mode).  A full
        mailbox blocks the enqueueing thread — the service's
        backpressure against unbounded arrival bursts.
    choose, check_safety, reuse_groundings, reuse_component_states:
        Forwarded to every shard's
        :class:`~repro.core.engine.CoordinationEngine`.
    backend:
        Storage backend the shards evaluate against: ``"shared"``
        (default), ``"replicated"``, or a pre-built
        :class:`~repro.db.Backend` instance bound to ``db``.  See the
        module docstring; semantics are identical either way.  Thread
        executor only — the process executor always evaluates on
        per-process replicas synced over the wire.
    executor:
        What a shard's data plane runs on: ``"thread"`` (default)
        keeps the engines in-process; ``"process"`` hosts each shard's
        engine in a worker *process* owning a private lock-free
        database replica, commanded over a framed pipe protocol
        (:mod:`repro.core.procexec`); ``"remote"`` hosts it on another
        machine behind a :class:`~repro.core.remote.ShardHost`,
        commanded over TCP with the same framing — see
        ``remote_shards`` and the module docstring's failover section.
        Outcomes are byte-identical across executors; with
        ``workers=N`` the same mailbox threads drive the shards,
        acting as I/O waiters while the evaluations run in the worker
        processes (true parallelism on GIL builds).
    remote_shards:
        Remote executor only: one :class:`~repro.core.remote.ShardHost`
        address (``"host:port"`` or ``(host, port)``) per shard; the
        shard count is the list's length (``workers``, when given,
        must match it).  Several shards may name the same host — each
        gets its own session (private replica + engine) there.
    durability:
        ``None`` (default) keeps the service purely in-memory.  A
        :class:`~repro.db.DurabilityConfig` (or a bare directory path)
        makes the service durable: construction first **recovers**
        whatever the directory holds — newest valid snapshot, then the
        WAL suffix, discarding a torn final record — and from then on
        every database mutation and journal entry is written ahead to
        the WAL, with periodic snapshot + compaction checkpoints
        (see :mod:`repro.db.durability` and DESIGN.md §11).  Composes
        with every ``backend``/``executor``/``workers`` combination;
        the recovered outcome is byte-identical to a service that
        never crashed (the crash-recovery fuzz suite's contract).
    control_lane:
        Process executor only: whether each shard worker process gets
        the second (priority) pipe for control commands, so routing
        probes and admissions never queue behind an in-flight
        ``evaluate`` frame.  Default ``True``; ``False`` restores the
        pre-control-lane blocking path (the latency benchmark's
        baseline).  Thread workers always have their in-process
        control lane.
    """

    #: Router ops between opportunistic rebalance checks.
    REBALANCE_INTERVAL = 64
    #: Minimum hottest-vs-coldest cost-score gap that triggers a move.
    REBALANCE_THRESHOLD = 4
    #: Cost-score weight of one queued mailbox job (worker mode): a
    #: queued evaluation is counted like a medium component, so a shard
    #: with a deep backlog stops attracting default placements even
    #: when its admitted cost looks low.
    MAILBOX_DEPTH_WEIGHT = 4

    def __init__(
        self,
        db: Database,
        config: Optional[ServiceConfig] = None,
        **kwargs: Any,
    ) -> None:
        if isinstance(config, int):
            # Legacy positional ``shards``.
            kwargs.setdefault("shards", config)
            config = None
        if config is not None:
            if kwargs:
                raise PreconditionError(
                    "pass a ServiceConfig or legacy keyword arguments, "
                    "not both"
                )
            if not isinstance(config, ServiceConfig):
                raise PreconditionError(
                    f"expected a ServiceConfig, got {type(config).__name__}"
                )
        else:
            unknown = set(kwargs) - _CONFIG_FIELDS
            if unknown:
                raise PreconditionError(
                    f"unknown service option(s) {sorted(unknown)!r} "
                    f"(ServiceConfig fields: {sorted(_CONFIG_FIELDS)})"
                )
            if kwargs:
                warnings.warn(
                    "ShardedCoordinationService keyword arguments are "
                    "deprecated; pass ServiceConfig(...) as the second "
                    "argument instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
            config = ServiceConfig(**kwargs)
        #: The resolved construction-time configuration (immutable).
        self.config = config
        shards = config.shards
        workers = config.workers
        choose = config.choose
        check_safety = config.check_safety
        reuse_groundings = config.reuse_groundings
        reuse_component_states = config.reuse_component_states
        mailbox_capacity = config.mailbox_capacity
        backend = config.backend
        executor = config.executor
        durability = config.durability
        control_lane = config.control_lane
        remote_shards = config.remote_shards

        # Apply the ablation toggles before any backend/executor is
        # built, so lazily created replicas and worker-process sessions
        # inherit the effective settings.
        if config.plan_cache is not None or config.composite_indexes is not None:
            db.configure(
                plan_cache=config.plan_cache,
                composite_indexes=config.composite_indexes,
            )
        self._placement = config.placement

        self.executor = resolve_executor(executor)
        if remote_shards and self.executor != "remote":
            raise PreconditionError(
                "remote_shards requires executor='remote'"
            )
        if self.executor == "remote":
            if not remote_shards:
                raise PreconditionError(
                    "executor='remote' needs remote_shards (one "
                    "ShardHost address per shard)"
                )
            shards = len(remote_shards)
            if workers is not None and workers != shards:
                raise PreconditionError(
                    "the remote executor runs one worker per remote "
                    f"shard: workers={workers} but "
                    f"{shards} remote_shards were given"
                )
        elif workers is not None:
            if workers < 1:
                raise PreconditionError("a service needs at least one worker")
            shards = workers
        if shards < 1:
            raise PreconditionError("a service needs at least one shard")
        self.db = db
        if self.executor in ("process", "remote"):
            # Each hosted shard owns a private replica synced over the
            # wire — these executors *are* a replicated backend across
            # an IPC/network boundary, so the thread-mode backend seam
            # does not apply.
            if not isinstance(backend, str):
                raise PreconditionError(
                    f"the {self.executor} executor owns its per-worker "
                    "replicas; pass a backend name, not a backend instance"
                )
            if choose is not largest_candidate:
                raise PreconditionError(
                    f"the {self.executor} executor cannot ship a custom "
                    "selection criterion across the worker boundary"
                )
            self._owns_backend = False
            self.backend = None
            self._engines: List = []
            try:
                for index in range(shards):
                    if self.executor == "process":
                        self._engines.append(
                            ProcessShardExecutor(
                                db,
                                index,
                                check_safety=check_safety,
                                reuse_groundings=reuse_groundings,
                                reuse_component_states=reuse_component_states,
                                control_lane=control_lane,
                                plan_cache=db.plan_cache_enabled,
                                composite_indexes=db.composite_indexes_enabled,
                            )
                        )
                    else:
                        self._engines.append(
                            RemoteShardTransport(
                                db,
                                index,
                                remote_shards[index],
                                check_safety=check_safety,
                                reuse_groundings=reuse_groundings,
                                reuse_component_states=reuse_component_states,
                                control_lane=control_lane,
                                plan_cache=db.plan_cache_enabled,
                                composite_indexes=db.composite_indexes_enabled,
                            )
                        )
            except BaseException:
                # A shard that never connected must not leak the ones
                # that did (worker processes, TCP sessions).
                for engine in self._engines:
                    engine.stop(timeout=1.0)
                raise
        else:
            #: The storage backend shard evaluations read through; writes
            #: always go to the authoritative ``db``.  A backend built
            #: here from a name spec is owned (and closed) by this
            #: service; a caller-provided instance stays the caller's to
            #: close.
            self._owns_backend = isinstance(backend, str)
            self.backend = resolve_backend(backend, db)
            self._engines = [
                CoordinationEngine(
                    db,
                    choose=choose,
                    check_safety=check_safety,
                    reuse_groundings=reuse_groundings,
                    reuse_component_states=reuse_component_states,
                    reader=self.backend.reader(index),
                )
                for index in range(shards)
            ]
        # Probe fan-out pool: under the process executor each per-shard
        # incident probe is a control-lane IPC round trip whose latency
        # is one worker component boundary; probing N shards
        # sequentially pays N boundary waits per arrival.  The pipes
        # are per-shard, so the probes genuinely overlap — fanning them
        # out caps routing at ~one boundary wait regardless of shard
        # count.  Thread shards answer probes in-process in
        # microseconds, where a pool would only add overhead.
        self._probe_pool: Optional[ThreadPoolExecutor] = None
        if self.executor in ("process", "remote") and shards > 1:
            self._probe_pool = ThreadPoolExecutor(
                max_workers=shards, thread_name_prefix="repro-probe"
            )
        # Router lock: linearizes placement decisions, migrations,
        # retractions, flushes, and writes.  Held while waiting on
        # engine locks and on the component-freeze condition, never
        # needed by shard workers — so holders always make progress.
        self._router = threading.RLock()
        # Tables condition: guards the routing table, per-shard loads,
        # final states, busy-component sets and the outstanding-job
        # count; workers notify it on every completion/resolution.
        self._tables = threading.Condition(threading.Lock())
        self._shard_of: Dict[str, int] = {}
        self._loads: List[int] = [0] * shards
        # Cost-based routing state: per-query evaluation-cost score
        # (component size × body-relation cardinality classes, summed
        # per shard) — what _default_shard and the rebalancer measure
        # load by, instead of raw pending counts.
        self._costs: List[int] = [0] * shards
        self._query_cost: Dict[str, int] = {}
        #: Whether process shards carry the second (control) pipe; the
        #: thread executor's worker control lane is always present.
        self.control_lane = control_lane
        self._final_states: Dict[str, QueryState] = {}
        self._resolution_callbacks: List[ResolutionCallback] = []
        self._busy: List[Set[str]] = [set() for _ in range(shards)]
        self._eval_outstanding = 0
        self._errors: List[BaseException] = []
        self._ops_since_rebalance = 0
        self._closed = False
        #: Queries moved between shards by spanning arrivals (monotone).
        self.migrations = 0
        #: Queries relocated by the idle-component rebalancer (monotone).
        self.rebalances = 0
        #: Queries re-homed off dead shards by failover (monotone).
        self.failovers = 0
        # Failover is a remote-executor behaviour: a dead worker
        # *process* keeps its established contract (orphans reject, the
        # error surfaces) — local children are respawnable, whereas a
        # dead remote host is a partition the fabric must survive.
        self._failover = self.executor == "remote"
        # Bumped once per observed shard death (under the tables lock);
        # the routing loop re-probes when it moves mid-probe, because a
        # death re-homes components between shards exactly like a
        # migration the probes did not see.
        self._deaths = 0
        #: Optional linearized operation journal: assign a list and the
        #: router appends one entry per operation in the order it
        #: committed them — the replayable serialization the
        #: concurrency tests feed to a single-engine oracle.
        self.journal: Optional[List[JournalEntry]] = None
        self._workers: Optional[List[ShardWorker]] = None
        self._dispatcher: Optional[CallbackDispatcher] = None
        if workers is not None:
            self._workers = [
                ShardWorker(index, mailbox_capacity) for index in range(shards)
            ]
            self._dispatcher = CallbackDispatcher()
        for engine in self._engines:
            engine.on_resolved(self._on_shard_resolved)
            if self._failover:
                engine.on_death = self._handle_shard_death
        #: The durable store when the service persists itself
        #: (``None`` in-memory).  See the ``durability`` parameter.
        self.durable: Optional[DurableStore] = None
        #: What construction recovered from the durability directory
        #: (``None`` when not durable; ``.empty`` on a fresh directory).
        self.recovered: Optional[RecoveredState] = None
        self._replaying = False
        config = resolve_durability(durability)
        if config is not None:
            self.durable = DurableStore(config)
            try:
                self._recover_durable()
            except BaseException:
                # A failed recovery must not leak the WAL/snapshot-store
                # handles (or worker threads/processes) of a service
                # that never finished constructing.
                self.durable.close()
                self.durable = None
                self.close(raise_deferred=False)
                raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of engine shards."""
        return len(self._engines)

    @property
    def worker_count(self) -> int:
        """Number of worker threads (0 in serial mode)."""
        return 0 if self._workers is None else len(self._workers)

    @property
    def backend_name(self) -> str:
        """The storage backend identifier.

        ``shared``/``replicated`` under the thread executor;
        ``ipc-replicated`` (process) or ``tcp-replicated`` (remote)
        under the hosted executors, whose per-worker replicas are not
        a pluggable thread-mode backend.
        """
        if self.backend is None:
            return (
                "tcp-replicated"
                if self.executor == "remote"
                else "ipc-replicated"
            )
        return self.backend.name

    @property
    def live_shards(self) -> Tuple[int, ...]:
        """Indices of shards whose workers are up (all, for threads)."""
        return tuple(
            index
            for index, engine in enumerate(self._engines)
            if getattr(engine, "alive", True)
        )

    def shard_of(self, name: str) -> Optional[int]:
        """The shard index currently holding a pending query."""
        with self._tables:
            return self._shard_of.get(name)

    def shard_pending_counts(self) -> Tuple[int, ...]:
        """Pending-query count per shard (load inspection)."""
        with self._tables:
            return tuple(self._loads)

    def shard_cost_scores(self) -> Tuple[int, ...]:
        """Evaluation-cost score per shard (what routing balances).

        Each pending query contributes
        :func:`~repro.db.stats.evaluation_cost` (its body relations'
        cardinality classes, recorded at admission); in worker mode a
        shard's queued mailbox jobs add
        :data:`MAILBOX_DEPTH_WEIGHT` each.
        """
        with self._tables:
            scores = list(self._costs)
        if self._workers is not None:
            for index, worker in enumerate(self._workers):
                scores[index] += self.MAILBOX_DEPTH_WEIGHT * worker.depth
        return tuple(scores)

    def _placement_scores(self) -> Tuple[int, ...]:
        """Per-shard load scores under the configured placement policy.

        ``"cost"`` (default) is :meth:`shard_cost_scores`; ``"pending"``
        is raw pending counts plus mailbox depth — the pre-cost policy,
        kept as an ablation baseline so the matrix can price cost-based
        placement against it.
        """
        if self._placement == "pending":
            with self._tables:
                scores = list(self._loads)
            if self._workers is not None:
                for index, worker in enumerate(self._workers):
                    scores[index] += worker.depth
            return tuple(scores)
        return self.shard_cost_scores()

    def probe(self, shard: int) -> Tuple[str, ...]:
        """Round-trip a control-lane probe to one shard's worker.

        Returns the shard's pending names, read on the worker itself —
        the latency yardstick the control lane exists for: under the
        process executor the probe rides the second pipe (serviced
        between component evaluations instead of queueing behind an
        in-flight ``evaluate`` frame); in thread-worker mode it rides
        the worker's priority lane.  Serial services answer inline.
        """
        engine = self._engines[shard]
        if self.executor in ("process", "remote"):
            return engine.probe_pending()
        if self._workers is not None:

            def read() -> Tuple[str, ...]:
                with engine.lock:
                    return engine.pending()

            return self._workers[shard].post_control(read).result()
        with engine.lock:
            return engine.pending()

    def pending(self) -> Tuple[str, ...]:
        """Names of all pending queries across shards, sorted.

        Sorted (not arrival-ordered): arrival order is a per-shard
        notion once components migrate.
        """
        with self._tables:
            return tuple(sorted(self._shard_of))

    def handle(self, name: str) -> Optional[QueryHandle]:
        """The live handle of a pending query (``None`` otherwise).

        Migration updates the routing table *after* the release/adopt
        handoff, so a lookup landing inside that window can catch the
        recorded shard empty-handed while the query is alive in
        transit; the loop retries until the table and the engine agree
        (resolution removes the engine entry and the table entry in one
        engine-locked step, so agreement is always reached).
        """
        while True:
            with self._tables:
                shard = self._shard_of.get(name)
            if shard is None:
                return None
            engine = self._engines[shard]
            with engine.lock:
                found = engine.handle(name)
            if found is not None:
                return found
            # The recorded shard no longer holds the query.  Resolution
            # removes the engine entry and the routing entry in one
            # engine-locked step, so if the routing entry is also gone
            # the query resolved; otherwise it is mid-migration
            # (released, table not yet re-pointed) — retry.
            with self._tables:
                if name not in self._shard_of:
                    return None

    def status(self, name: str) -> Optional[QueryState]:
        """Last known lifecycle state of ``name`` (service-wide)."""
        with self._tables:
            if name in self._shard_of:
                return QueryState.PENDING
            return self._final_states.get(name)

    def on_resolved(self, callback: ResolutionCallback) -> ResolutionCallback:
        """Register a service-wide resolution callback (any shard).

        In worker mode the callback fires on the dispatcher thread and
        may freely re-enter the service.
        """
        self._resolution_callbacks.append(callback)
        return callback

    # ------------------------------------------------------------------
    # Lifecycle API
    # ------------------------------------------------------------------
    def submit(self, query: EntangledQuery) -> QueryHandle:
        """Route one arrival to its shard and evaluate its component.

        Same contract as
        :meth:`~repro.core.engine.CoordinationEngine.submit` — raises
        :class:`~repro.errors.PreconditionError` for a duplicate
        pending name (service-wide) or an unsafe arrival — and returns
        the same coordinating sets a single engine would.  In worker
        mode the evaluation runs on the shard's worker but this call
        waits for it, so outcomes are byte-identical to serial.
        """
        handle, future = self._submit_routed(query)
        if future is not None:
            self._await_eval(future)
        return handle

    def submit_nowait(self, query: EntangledQuery) -> QueryHandle:
        """Admit one arrival; let its evaluation overlap (worker mode).

        Admission — routing, migration, the safety check — happens
        synchronously, so this still raises
        :class:`~repro.errors.PreconditionError` exactly like
        :meth:`submit`; only the component evaluation is deferred to
        the shard's worker.  The returned handle is ``PENDING`` with no
        ``outcome`` yet; it resolves from the worker when a later
        evaluation completes its coordinating set
        (:meth:`~repro.core.lifecycle.QueryHandle.wait` blocks for
        that), and :meth:`drain` waits for evaluation quiescence.  In
        serial mode this is simply :meth:`submit`.
        """
        handle, _ = self._submit_routed(query)
        return handle

    def submit_many(
        self, queries: Iterable[EntangledQuery]
    ) -> List[QueryHandle]:
        """Batch admission with one evaluation per affected component.

        The sharded analogue of
        :meth:`~repro.core.engine.CoordinationEngine.submit_many`:
        arrivals are routed and admitted in order under one safety
        pass (failed admissions resolve to ``REJECTED`` instead of
        raising), then each shard evaluates its affected components
        exactly once — concurrently across shards in worker mode,
        with backpressure from the mailbox bounds.  Blocks until every
        evaluation finished.
        """
        handles, futures = self._submit_many_routed(list(queries))
        for future in futures:
            if future is not None:
                self._await_eval(future)
        return handles

    def submit_many_nowait(
        self, queries: Iterable[EntangledQuery]
    ) -> List[QueryHandle]:
        """Batch admission; let the evaluations overlap (worker mode).

        :meth:`submit_many`'s admission pass — routing, migration,
        safety, one evaluation job per affected component — without
        waiting for those evaluations: the batched analogue of
        :meth:`submit_nowait`, and the gateway's translation target for
        client request bursts.  Returned handles are ``PENDING`` (or
        already ``REJECTED`` for failed admissions) and resolve from
        the workers.  In serial mode evaluations ran inline, so this
        equals :meth:`submit_many`.
        """
        handles, _ = self._submit_many_routed(list(queries))
        return handles

    def _submit_many_routed(self, batch: List[EntangledQuery]):
        handles: List[QueryHandle] = []
        admitted: List[QueryHandle] = []
        futures = []
        with self._router:
            self._check_open()
            self._maybe_rebalance()
            self._maybe_checkpoint()
            for query in batch:
                try:
                    _, handle, _ = self._route_and_admit(query)
                except PreconditionError as error:
                    handle = QueryHandle(query)
                    if self._dispatcher is not None:
                        handle._use_dispatcher(self._dispatcher.post)
                    self._reject(handle, str(error))
                else:
                    admitted.append(handle)
                handles.append(handle)
            # Group by the shard holding each query NOW, not at
            # admission: a later batch member's routing may have
            # migrated an earlier member's component to another shard.
            by_shard: Dict[int, List[QueryHandle]] = {}
            with self._tables:
                for handle in admitted:
                    by_shard.setdefault(
                        self._shard_of[handle.query], []
                    ).append(handle)
            for target, group in by_shard.items():
                engine = self._engines[target]
                with engine.lock:
                    frozen: Set[str] = set()
                    for handle in group:
                        frozen.update(engine.component_of(handle.query))
                futures.append(self._post_eval(target, tuple(group), frozen))
            self._journal_append(("submit_many", tuple(batch)))
        return handles, futures

    def retract(self, name: str) -> QueryHandle:
        """Withdraw a pending query; O(its component), on its shard.

        In worker mode this first waits out any outstanding evaluation
        of the query's component (the component-freeze rule), so the
        retraction lands exactly where the linearized stream says.
        """
        with self._router:
            self._check_open()
            self._maybe_checkpoint()
            raised = True
            try:
                while True:
                    with self._tables:
                        shard = self._shard_of.get(name)
                    if shard is None:
                        raise PreconditionError(
                            f"query {name!r} is not pending"
                        )
                    self._wait_component_idle(shard, name)
                    # The wait may have let the component's evaluation
                    # satisfy (and thereby remove) the query; re-check so
                    # the error matches what the serial stream would say.
                    with self._tables:
                        shard = self._shard_of.get(name)
                    if shard is None:
                        raise PreconditionError(
                            f"query {name!r} is not pending"
                        )
                    engine = self._engines[shard]
                    try:
                        with engine.lock:
                            handle = engine.retract(name)
                    except (ConcurrencyError, PreconditionError) as error:
                        # Failover may have re-homed the query between
                        # the table lookup and the engine call (dead
                        # shard, or a survivor that no longer holds the
                        # name); chase the routing table.  Each retry
                        # implies an observed shard death, so the loop
                        # terminates.
                        if self._failover and (
                            not getattr(engine, "alive", True)
                            or self._shard_of.get(name) not in (None, shard)
                        ):
                            continue
                        raise error
                    raised = False
                    break
            finally:
                self._journal_append(("retract", name, raised))
        return handle

    def insert(self, relation: str, row: Sequence) -> bool:
        """Insert one database tuple, ordered against evaluations.

        The authoritative database is visible to every evaluation, so a
        write must not overtake evaluations admitted before it: this
        call barriers behind *all* outstanding evaluations (worker
        mode), then performs the insert, linearized under the router
        lock.  The insert lands in the authoritative store, whose write
        listener invalidates the replicated backend's per-shard
        replicas (they re-sync at their next plan-phase acquisition).
        Direct ``db.insert`` calls still invalidate replicas but bypass
        the barrier, so they are only stream-equivalent in serial mode.
        """
        with self._router:
            self._check_open()
            self._maybe_checkpoint()
            if self._workers is not None:
                with self._tables:
                    self._tables.wait_for(
                        lambda: self._eval_outstanding == 0
                    )
            inserted = self.db.insert(relation, row)
            self._journal_append(("insert", relation, tuple(row)))
        return inserted

    def delete(self, relation: str, row: Sequence) -> bool:
        """Delete one database tuple, ordered against evaluations.

        :meth:`insert`'s mirror image, with the same linearization:
        barriers behind all outstanding evaluations (worker mode), then
        removes the row from the authoritative store under the router
        lock.  Replicas pick the deletion up as a tombstone entry in
        their next sync tail (:mod:`repro.db.wire` v3), and durable
        services write it ahead as a ``del`` WAL record.  Returns
        whether the row existed (deleting an absent row is a no-op, so
        replaying a delete is idempotent).
        """
        with self._router:
            self._check_open()
            self._maybe_checkpoint()
            if self._workers is not None:
                with self._tables:
                    self._tables.wait_for(
                        lambda: self._eval_outstanding == 0
                    )
            deleted = self.db.delete(relation, row)
            self._journal_append(("delete", relation, tuple(row)))
        return deleted

    def flush(self) -> List[CoordinationResult]:
        """Evaluate everything pending, one global run **per shard**.

        Returns the per-shard results in shard order.  Deviation from
        the single-engine ``flush`` (DESIGN.md §6): each shard's
        selection criterion picks one coordinating set among *its*
        components, so one call may retire up to ``shard_count`` sets,
        and which set a shard picks is relative to its own candidates.
        Draining by looping until every result's ``chosen`` is ``None``
        — or calling :meth:`flush_drain` — reaches the same final
        pending set as a drained single engine.  In worker mode the
        per-shard runs execute concurrently (FIFO-ordered after each
        shard's queued evaluations) and this call waits for all of
        them.
        """
        with self._router:
            self._check_open()
            self._maybe_checkpoint()
            results = self._flush_once()
            self._journal_append(("flush",))
        return results

    def flush_drain(self) -> List[CoordinationResult]:
        """Flush repeatedly until no shard retires a set; atomic.

        The whole drain runs under the router lock, so no other
        operation interleaves between rounds — which makes the drained
        outcome deterministic and placement-independent (each weak
        component retires its own greedy sequence of chosen sets
        regardless of how components are spread over shards).  Returns
        the concatenated per-round results.
        """
        collected: List[CoordinationResult] = []
        with self._router:
            self._check_open()
            self._maybe_checkpoint()
            while True:
                results = self._flush_once()
                collected.extend(results)
                if all(result.chosen is None for result in results):
                    break
            self._journal_append(("flush_drain",))
        return collected

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for quiescence: no queued/running evaluations, no
        pending callbacks.  Returns ``False`` on timeout.  Re-raises
        *every* error a worker job or user callback raised since the
        last drain — one as itself, several as an ``ExceptionGroup`` —
        so fire-and-forget failures surface here deterministically
        instead of leaking onto later unrelated calls.

        Resolution callbacks may re-enter the lifecycle API
        (``submit``/``retract``/``flush``/...), but not this method or
        :meth:`close`: a callback waiting for callback quiescence would
        wait on itself, so the re-entry raises
        :class:`~repro.errors.ConcurrencyError` instead of hanging."""
        self._check_not_dispatcher("drain")
        deadline = Deadline(timeout)
        if self._workers is not None:
            # One shared deadline across every wait phase and loop
            # round (callback-driven resubmission restarts the loop):
            # the call returns False once the budget is spent, never
            # multiples of it.
            while True:
                with self._tables:
                    if not self._tables.wait_for(
                        lambda: self._eval_outstanding == 0,
                        timeout=deadline.remaining(),
                    ):
                        return False
                assert self._dispatcher is not None
                if not self._dispatcher.drain(timeout=deadline.remaining()):
                    return False
                # Joint re-check, sandwiched: an evaluation posts its
                # callbacks *before* decrementing the outstanding count
                # (so evals-then-idle cannot miss an evaluation that
                # finished mid-drain), and a callback enqueues any new
                # evaluation *before* it finishes (so idle-then-evals
                # cannot miss callback-resubmitted work).  Only when
                # evals == 0 on both sides of an idle dispatcher is the
                # system quiescent.
                with self._tables:
                    settled = self._eval_outstanding == 0
                if settled and self._dispatcher.idle:
                    with self._tables:
                        if self._eval_outstanding == 0:
                            break
                if deadline.expired:
                    return False
        self._raise_deferred_errors()
        return True

    def close(
        self,
        timeout: Optional[float] = None,
        raise_deferred: bool = True,
    ) -> None:
        """Stop accepting operations and shut the workers down.

        Graceful: already-queued jobs finish first (mailboxes are FIFO
        and the shutdown sentinel is enqueued last).  Idempotent.
        Serial services only flip the closed flag.  Like :meth:`drain`,
        not callable from a resolution callback.  With a ``timeout``
        the shutdown is best-effort within the budget: a worker stuck
        in a long job may outlive the call (threads are daemons, so
        process exit is never held hostage), and resolution callbacks
        its late completion would have fired are dropped rather than
        left to wedge the dispatcher's accounting.

        After the threads stop, every error a fire-and-forget
        evaluation or user callback raised since the last drain is
        re-raised — one as itself, several as an ``ExceptionGroup`` —
        (deferred failures must not vanish just because the
        service was closed without a final :meth:`drain`); pass
        ``raise_deferred=False`` to suppress that — the context manager
        does so automatically when the ``with`` body is already
        unwinding an exception.
        """
        self._check_not_dispatcher("close")
        with self._router:
            already_closed = self._closed
            self._closed = True
        if not already_closed:
            # One shared deadline across every join, like drain():
            # close(timeout=t) blocks at most ~t, not (workers+2)·t.
            deadline = Deadline(timeout)
            if self._workers is not None:
                for worker in self._workers:
                    worker.stop(deadline.remaining())
                assert self._dispatcher is not None
                self._dispatcher.drain(deadline.remaining())
                self._dispatcher.stop(deadline.remaining())
            if self.executor in ("process", "remote"):
                # Queued jobs finished above (mailboxes are FIFO), so
                # the transports are idle; stop each hosted shard.
                # Safe after a worker crash: a dead child's (or
                # vanished host's) stop() reaps/disconnects without
                # hanging.
                for engine in self._engines:
                    engine.stop(deadline.remaining())
            if self._probe_pool is not None:
                self._probe_pool.shutdown(wait=False)
            if self._owns_backend:
                # Detach the backend's database hooks so a long-lived
                # database does not keep paying for (or pinning) the
                # replicas of a service that is gone.  Caller-provided
                # backend instances are the caller's to close.
                self.backend.close()
            if self.durable is not None:
                # Everything since the last checkpoint is already in
                # the WAL, so closing needs no final snapshot — just
                # release the file handles and stop taxing the
                # database's write path.
                self.db.remove_mutation_listener(self._on_db_mutation)
                self.durable.close()
        if raise_deferred:
            self._raise_deferred_errors()

    def __enter__(self) -> "ShardedCoordinationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(raise_deferred=exc_type is None)

    # ------------------------------------------------------------------
    # Rebalancing (idle components, hottest → coldest shard)
    # ------------------------------------------------------------------
    def rebalance(self, max_moves: int = 8) -> int:
        """Relocate idle components from the hottest to the coldest shard.

        Default placement only ever *merges* components onto shards, so
        a long stream can skew loads; this walks whole **idle**
        components (no outstanding evaluation) from the shard with the
        most pending queries to the one with the fewest, using the same
        release/adopt machinery as spanning-arrival migration — so
        handles, callbacks, and outcomes are untouched.  A component
        moves only when it is at most half the hot–cold gap (each move
        strictly narrows the gap, so the loop terminates); ties are
        broken deterministically (largest component first, then name).
        Returns the number of queries moved.  The router also invokes
        this opportunistically every :data:`REBALANCE_INTERVAL`
        operations once the gap reaches :data:`REBALANCE_THRESHOLD`.
        """
        with self._router:
            self._check_open()
            return self._rebalance_locked(max_moves)

    def _maybe_rebalance(self) -> None:
        """Opportunistic rebalance check between router commands."""
        self._ops_since_rebalance += 1
        if self._ops_since_rebalance < self.REBALANCE_INTERVAL:
            return
        self._ops_since_rebalance = 0
        scores = self._placement_scores()
        if max(scores) - min(scores) >= self.REBALANCE_THRESHOLD:
            self._rebalance_locked(max_moves=4)

    def _rebalance_locked(self, max_moves: int) -> int:
        moved = 0
        for _ in range(max_moves):
            scores = self._placement_scores()
            candidates = (
                self.live_shards if self._failover else range(len(scores))
            )
            if len(candidates) < 2:
                break
            hot = max(candidates, key=lambda i: (scores[i], -i))
            cold = min(candidates, key=lambda i: (scores[i], i))
            gap = scores[hot] - scores[cold]
            if gap < 2:
                break
            limit = gap // 2
            engine = self._engines[hot]
            with engine.lock:
                components = engine.components()
            with self._tables:
                busy = set(self._busy[hot])
                if self._placement == "pending":
                    # Pending placement weighs a component by member
                    # count — the unit its scores are denominated in.
                    weights = {
                        component: len(component) for component in components
                    }
                else:
                    weights = {
                        component: sum(
                            self._query_cost.get(name, 1) for name in component
                        )
                        for component in components
                    }
            # A component moves only when its evaluation-cost weight is
            # at most half the hot–cold score gap, so each move strictly
            # narrows the gap and the loop terminates.
            movable = [
                component
                for component in components
                if weights[component] <= limit
                and not busy.intersection(component)
            ]
            if not movable:
                break
            pick = sorted(movable, key=lambda c: (-weights[c], c))[0]
            moved += self._migrate(hot, cold, (pick[0],), rebalance=True)
        return moved

    # ------------------------------------------------------------------
    # Routing and migration
    # ------------------------------------------------------------------
    def _submit_routed(self, query: EntangledQuery):
        """Route + admit one arrival; enqueue its evaluation."""
        with self._router:
            self._check_open()
            self._maybe_rebalance()
            self._maybe_checkpoint()
            raised = True
            try:
                target, handle, component = self._route_and_admit(query)
                raised = False
            finally:
                self._journal_append(("submit", query, raised))
            future = self._post_eval(target, (handle,), set(component))
        return handle, future

    def _route_and_admit(self, query: EntangledQuery):
        """Probe/migrate/place, then admit on the target (no evaluation)."""
        target = self._route(query)
        engine = self._engines[target]
        with engine.lock:
            handle = engine.admit(query)
            component = engine.component_of(query.name)
        if self._dispatcher is not None:
            handle._use_dispatcher(self._dispatcher.post)
        cost = evaluation_cost(self.db, query)
        with self._tables:
            self._shard_of[query.name] = target
            self._loads[target] += 1
            self._query_cost[query.name] = cost
            self._costs[target] += cost
        return target, handle, component

    def _probe_incident(
        self, query: EntangledQuery
    ) -> List[Tuple[str, ...]]:
        """Incident probe on every shard, fanned out for process shards.

        Read-only, so running the per-shard probes concurrently cannot
        change what any one probe observes; ordering of arrivals is
        still fixed by the router lock every caller holds.
        """

        def probe(engine) -> Tuple[str, ...]:
            if self._failover and not getattr(engine, "alive", True):
                # A dead shard holds nothing: its components were
                # re-homed (and will answer from their new shard) or
                # rejected.  The caller's death-counter re-probe covers
                # the in-flight window.
                return ()
            try:
                with engine.lock:
                    return engine.incident_pending(query)
            except ConcurrencyError:
                if self._failover and not getattr(engine, "alive", True):
                    return ()
                raise

        if self._probe_pool is None:
            return [probe(engine) for engine in self._engines]
        return list(self._probe_pool.map(probe, self._engines))

    def _route(self, query: EntangledQuery) -> int:
        """Pick (and, for spanning arrivals, prepare) the target shard."""
        with self._tables:
            shard = self._shard_of.get(query.name)
        if shard is not None:
            # Component-freeze rule, duplicate edition: the pending
            # namesake may have an outstanding evaluation that the
            # linearized stream orders *before* this submit — if that
            # evaluation satisfies it, this submit is not a duplicate.
            # Wait the component out and re-check, exactly as retract
            # does.  (Migration cannot re-home the name meanwhile: it
            # needs the router lock, which this thread holds.)
            self._wait_component_idle(shard, query.name)
            with self._tables:
                if query.name in self._shard_of:
                    raise PreconditionError(
                        f"query {query.name!r} already pending"
                    )
        while True:
            deaths = self._deaths
            touched: Dict[int, Tuple[str, ...]] = {}
            for index, incident in enumerate(self._probe_incident(query)):
                if incident:
                    touched[index] = incident
            # Component freeze: an arrival incident to a component with
            # an outstanding evaluation waits for it, then re-probes —
            # the evaluation may have retired the very queries that
            # made the shard incident.
            if self._wait_touched_idle(touched):
                continue
            # An evaluation may also have committed (retiring probed
            # names) *between* a per-shard probe and the busy check —
            # its busy flag already cleared, so the wait above saw
            # nothing.  Once nothing is busy no further retirement can
            # happen under the router lock, so a liveness re-check here
            # is race-free; any dead name means the probes are stale.
            if self._touched_stale(touched):
                continue
            # A shard death re-homes components between shards exactly
            # like a migration the probes did not see; if one landed
            # anywhere inside this probe round, the round is suspect —
            # wait for re-homing to settle and probe again.
            if deaths != self._deaths:
                self._failover_settled()
                continue
            break
        if not touched:
            return self._default_shard()
        if len(touched) == 1:
            return next(iter(touched))

        # The arrival's edges span shards: merge the smaller touched
        # components into the shard holding the largest touched mass.
        weights: Dict[int, int] = {}
        for index, incident in touched.items():
            engine = self._engines[index]
            with engine.lock:
                mass: Set[str] = set()
                for name in incident:
                    mass.update(engine.component_of(name))
            weights[index] = len(mass)
        target = min(touched, key=lambda index: (-weights[index], index))
        for index, incident in touched.items():
            if index != target:
                self._migrate(index, target, incident)
        return target

    def _migrate(
        self,
        source: int,
        target: int,
        incident: Tuple[str, ...],
        rebalance: bool = False,
    ) -> int:
        """Two-phase handoff of whole components between shards.

        Phase 1 releases the components of ``incident`` from the donor
        (their handles stay ``PENDING`` and are owned by the router for
        the duration); phase 2 adopts them into the target.  Safe under
        workers because the router only migrates idle components (the
        freeze rule), so no mailbox job can reference them mid-flight.
        """
        donor = self._engines[source]
        moved: List[QueryHandle] = []
        with donor.lock:
            for name in incident:
                if donor.handle(name) is None:
                    continue  # already released with an earlier component
                moved.extend(donor.release_component(name))
        receiver = self._engines[target]
        with receiver.lock:
            receiver.adopt(moved)
        with self._tables:
            moved_cost = 0
            for handle in moved:
                self._shard_of[handle.query] = target
                moved_cost += self._query_cost.get(handle.query, 0)
            self._loads[source] -= len(moved)
            self._loads[target] += len(moved)
            self._costs[source] -= moved_cost
            self._costs[target] += moved_cost
        if rebalance:
            self.rebalances += len(moved)
        else:
            self.migrations += len(moved)
        return len(moved)

    def _default_shard(self) -> int:
        """Least-loaded placement for edge-free arrivals.

        Lowest evaluation-cost score wins (admitted query costs plus,
        in worker mode, mailbox depth — see :meth:`shard_cost_scores`),
        ties to the lowest shard index.  In serial/blocking use the
        scores are a pure function of the stream (mailboxes are empty
        at routing time), so placement stays deterministic there and
        reproducible across processes.  Placement is unobservable in
        outcomes either way; this only evens the *work*.  Under
        ``placement="pending"`` the scores are raw pending counts
        instead (see :meth:`_placement_scores`).
        """
        scores = self._placement_scores()
        candidates = (
            self.live_shards if self._failover else range(len(scores))
        )
        if not candidates:
            raise ConcurrencyError("no live shard left to place on")
        return min(candidates, key=lambda i: (scores[i], i))

    # ------------------------------------------------------------------
    # Worker plumbing
    # ------------------------------------------------------------------
    def _post_eval(
        self,
        target: int,
        handles: Tuple[QueryHandle, ...],
        frozen: Set[str],
    ):
        """Run (serial) or enqueue (workers) one evaluation job.

        ``frozen`` is the union of the affected components' member
        names; they are marked busy until the job finishes, which is
        what the freeze rule waits on.
        """
        if self._workers is None:
            home = target
            while True:
                engine = self._engines[home]
                try:
                    with engine.lock:
                        engine.evaluate_admitted(handles)
                except ConcurrencyError:
                    moved = self._failover_rehome(home, handles)
                    if moved is None:
                        raise
                    home = moved
                    continue
                return None
        engine = self._engines[target]
        with self._tables:
            self._busy[target].update(frozen)
            self._eval_outstanding += 1
        worker = self._workers[target]

        def job() -> None:
            home = target
            try:
                while True:
                    try:
                        # The worker services its control lane between
                        # component evaluations (probes/status never
                        # touch the frozen components), so control
                        # latency stays bounded by one component
                        # evaluation even under a long batch.
                        self._engines[home].evaluate_admitted_phased(
                            handles, between=worker.service_control
                        )
                        return
                    except ConcurrencyError:
                        # Failover: the shard died before this
                        # evaluation committed (no reply, no
                        # resolutions), so re-running it on the
                        # components' new home replays the identical
                        # admitted-but-unevaluated state — outcomes
                        # match a service whose shard never died.
                        moved = self._failover_rehome(home, handles)
                        if moved is None:
                            raise
                        with self._tables:
                            # Keep the freeze rule airtight across the
                            # move: the components count as busy on the
                            # new home before they stop counting on the
                            # old one.
                            self._busy[moved].update(frozen)
                            self._busy[home].difference_update(frozen)
                            self._tables.notify_all()
                        home = moved
            except BaseException as error:  # noqa: BLE001 - surfaced at drain
                with self._tables:
                    self._errors.append(error)
                raise
            finally:
                with self._tables:
                    self._busy[home].difference_update(frozen)
                    self._eval_outstanding -= 1
                    self._tables.notify_all()

        return worker.post(job)

    def _await_eval(self, future) -> None:
        """Block on one evaluation job; de-duplicate its error record."""
        try:
            future.result()
        except BaseException as error:
            with self._tables:
                try:
                    self._errors.remove(error)
                except ValueError:
                    pass
            raise

    # ------------------------------------------------------------------
    # Failover (remote executor)
    # ------------------------------------------------------------------
    def _handle_shard_death(
        self, proxy, orphans: List[QueryHandle]
    ) -> bool:
        """Death hook: re-home a dead shard's components to a survivor.

        Runs exactly once per shard death, on whichever thread first
        observed the broken transport (see
        :attr:`~repro.core.transport.ShardProxy.on_death`) — possibly a
        shard worker mid-job, so it must never take the router lock
        (the router may be waiting out that very job).  It touches only
        the tables lock and the survivor's control lane.  Returning
        ``True`` re-homed the orphans (the proxy skips its default
        rejection); anything else falls back to rejecting them with
        the death reason — the process executor's established
        semantics, and the terminal state when no shard survives.
        """
        target: Optional[int] = None
        with self._tables:
            survivors = [
                index
                for index, engine in enumerate(self._engines)
                if engine is not proxy and getattr(engine, "alive", False)
            ]
            if survivors and orphans:
                target = min(
                    survivors, key=lambda index: (self._costs[index], index)
                )
        adopted = False
        if target is not None:
            receiver = self._engines[target]
            try:
                # Adoption rebuilds the component graph on the survivor
                # from the queries themselves (the same release/adopt
                # wire op migration uses), so nothing from the dead
                # worker is needed.  The survivor's replica syncs
                # lazily at its next evaluation's plan phase.
                with receiver.lock:
                    receiver.adopt(orphans)
                adopted = True
            except ReproError:
                # The survivor died too (or refused); fall back to
                # rejection — a later death hook for *it* would find
                # no orphans to save here anyway.
                adopted = False
        with self._tables:
            if adopted:
                source = proxy.index
                for handle in orphans:
                    if self._shard_of.get(handle.query) != source:
                        continue
                    self._shard_of[handle.query] = target
                    cost = self._query_cost.get(handle.query, 0)
                    self._loads[source] -= 1
                    self._loads[target] += 1
                    self._costs[source] -= cost
                    self._costs[target] += cost
                self.failovers += len(orphans)
            self._deaths += 1
            self._tables.notify_all()
        return adopted

    def _failover_rehome(
        self, shard: int, handles: Tuple[QueryHandle, ...]
    ) -> Optional[int]:
        """Where a failed evaluation's queries landed after failover.

        Returns the surviving shard now holding them (the death hook
        adopts a dead shard's orphans as one batch, so re-homed
        batchmates share a destination), or ``None`` when the failure
        is not a survivable shard death — the shard is still alive (a
        genuine command failure), failover is off, the hook fell back
        to rejection (the names are gone from the routing table), or
        the hook never settled within the grace budget.
        """
        if not self._failover or getattr(self._engines[shard], "alive", True):
            return None
        names = [handle.query for handle in handles]

        def settled() -> bool:
            for name in names:
                home = self._shard_of.get(name)
                if home is not None and not getattr(
                    self._engines[home], "alive", True
                ):
                    return False
            return True

        with self._tables:
            if not self._tables.wait_for(settled, timeout=SHUTDOWN_GRACE):
                return None
            homes = {
                home
                for name in names
                if (home := self._shard_of.get(name)) is not None
            }
        if not homes:
            return None
        return min(homes)

    def _failover_settled(self) -> None:
        """Wait until no pending query is routed to a dead shard.

        The flush retry's barrier: re-homing must have landed before
        the next round, or the survivors' flushes would miss the
        adopted components and a drain could terminate early.
        """

        def settled() -> bool:
            return all(
                getattr(self._engines[home], "alive", True)
                for home in self._shard_of.values()
            )

        with self._tables:
            self._tables.wait_for(settled, timeout=SHUTDOWN_GRACE)

    def _flush_once(self) -> List[CoordinationResult]:
        while True:
            try:
                return self._flush_round()
            except ConcurrencyError:
                # Failover: a shard died mid-flush.  Its components are
                # re-homed (or rejected) by the death hook; restart the
                # round over the survivors.  Safe because re-flushing is
                # idempotent against an unchanged database — components
                # whose sets already retired are gone, the rest land in
                # the same pending state — though the service-level
                # round may now retire more than one set on a survivor
                # (DESIGN.md §13 documents the deviation; a drained
                # outcome is unaffected).  Terminates: every retry
                # requires another dead shard, and with none left alive
                # the round itself raises.
                if not self._failover:
                    raise
                alive = self.live_shards
                if not alive or len(alive) == len(self._engines):
                    # Nobody left to flush, or nobody died — the error
                    # is a real worker failure either way.
                    raise
                self._failover_settled()

    def _flush_round(self) -> List[CoordinationResult]:
        targets = [
            index
            for index in range(len(self._engines))
            if not self._failover
            or getattr(self._engines[index], "alive", True)
        ]
        if not targets:
            raise ConcurrencyError("no live shard left to flush")
        if self._workers is None:
            results = []
            for index in targets:
                engine = self._engines[index]
                with engine.lock:
                    results.append(engine.flush())
            return results

        def flush_job(engine: CoordinationEngine):
            def run() -> CoordinationResult:
                with engine.lock:
                    return engine.flush()

            return run

        futures = [
            self._workers[index].post(flush_job(self._engines[index]))
            for index in targets
        ]
        return [future.result() for future in futures]

    def _wait_touched_idle(self, touched: Dict[int, Tuple[str, ...]]) -> bool:
        """Wait until no probed-incident component is busy.

        Returns ``True`` if it had to wait (the caller must re-probe:
        the completed evaluations may have retired queries).
        """
        if self._workers is None or not touched:
            return False

        def hit() -> bool:
            return any(
                name in self._busy[index]
                for index, names in touched.items()
                for name in names
            )

        with self._tables:
            if not hit():
                return False
            self._tables.wait_for(lambda: not hit())
            return True

    def _touched_stale(self, touched: Dict[int, Tuple[str, ...]]) -> bool:
        """Whether any probed-incident name has since left its shard."""
        if self._workers is None:
            return False
        for index, names in touched.items():
            engine = self._engines[index]
            with engine.lock:
                if any(engine.handle(name) is None for name in names):
                    return True
        return False

    def _wait_component_idle(self, shard: int, name: str) -> None:
        """Wait until ``name``'s component has no outstanding evaluation."""
        if self._workers is None:
            return
        with self._tables:
            self._tables.wait_for(lambda: name not in self._busy[shard])

    def _check_open(self) -> None:
        if self._closed:
            raise ConcurrencyError("service is closed")

    def _check_not_dispatcher(self, operation: str) -> None:
        if self._dispatcher is not None and self._dispatcher.is_dispatch_thread:
            raise ConcurrencyError(
                f"{operation}() called from a resolution callback; a "
                "callback waiting for callback quiescence would wait on "
                "itself — re-enter only the lifecycle API from callbacks"
            )

    def _journal_append(self, entry: JournalEntry) -> None:
        if self.journal is not None:
            self.journal.append(entry)
        if self.durable is not None and not self._replaying:
            self.durable.append_journal(entry)

    def _raise_deferred_errors(self) -> None:
        """Re-raise every deferred worker/callback error, deterministically.

        All errors accumulated since the last drain surface on *this*
        call — a single error as itself, several as one
        :class:`ExceptionGroup` — instead of trickling out one per
        later service call (the loss mode where a callback error only
        appeared on some unrelated future drain, or never).
        """
        with self._tables:
            deferred = list(self._errors)
            self._errors.clear()
        if self._dispatcher is not None:
            deferred.extend(self._dispatcher.take_errors())
        raise_collected("deferred evaluation/callback errors", deferred)

    # ------------------------------------------------------------------
    # Durability (recovery, WAL taps, checkpoints)
    # ------------------------------------------------------------------
    def checkpoint(self) -> Optional[int]:
        """Snapshot the full durable state and compact the WAL now.

        Waits out outstanding evaluations (worker mode), captures the
        database, the pending pool in arrival order, and the recorded
        final states into the next snapshot generation, and truncates
        the log at that barrier.  Returns the new generation number, or
        ``None`` for an in-memory service.  The router also checkpoints
        opportunistically once the WAL passes the configured
        ``snapshot_every`` record count.
        """
        with self._router:
            self._check_open()
            if self.durable is None:
                return None
            return self._checkpoint_locked()

    def _maybe_checkpoint(self) -> None:
        """Opportunistic WAL compaction between router commands."""
        if (
            self.durable is not None
            and not self._replaying
            and self.durable.checkpoint_due
        ):
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> int:
        """Write the next snapshot generation (router lock held).

        The snapshot must subsume every WAL record, so outstanding
        evaluations are barriered out first — the same quiescence wait
        :meth:`insert` uses — making the captured pending pool and
        final states a consistent cut of the linearized stream.
        """
        if self._workers is not None:
            with self._tables:
                self._tables.wait_for(lambda: self._eval_outstanding == 0)
        pending: List[EntangledQuery] = []
        with self._tables:
            # Dict insertion order is admission order (migration only
            # updates values), so this is the arrival-ordered pool.
            names = list(self._shard_of)
            finals = [
                (name, state.value)
                for name, state in self._final_states.items()
            ]
        for name in names:
            live = self.handle(name)
            if live is not None:
                pending.append(live.entangled)
        payload = build_snapshot_payload(
            self.db, pending, finals, self.durable.journal_len
        )
        return self.durable.checkpoint(payload)

    def _recover_durable(self) -> None:
        """Rebuild state from the durability directory (construction).

        Three layers, in order: the snapshot's database image lands
        first (lenient set-semantics apply — the authoritative ``db``
        may legitimately be pre-seeded with the same base facts the
        snapshot holds, e.g. a CLI demo database); the snapshot's
        pending pool is **re-admitted without evaluation** (the pool is
        not an evaluation fixpoint — a component may hold a satisfiable
        set that stays pending until the next event, exactly as
        migration's release/adopt preserves — so re-evaluating here
        would diverge from the never-crashed oracle); then the WAL
        suffix replays in commit order — database mutations directly,
        journal entries through the very lifecycle API that produced
        them (those *did* evaluate originally, so replaying them with
        evaluation recreates the original execution byte for byte).
        Durability taps are suppressed throughout; a fresh checkpoint
        afterwards collapses the replayed WAL into one generation.
        """
        assert self.durable is not None
        state = self.durable.recover()
        self.recovered = state
        self._replaying = True
        try:
            if state.db_sync is not None:
                self._apply_snapshot_db(state.db_sync)
            with self._router:
                for query in state.pending:
                    self._route_and_admit(query)
            with self._tables:
                for name, value in state.final_states:
                    record_final_state(
                        self._final_states, name, QueryState(value)
                    )
            for record in state.records:
                self._replay_wal_record(record)
        finally:
            self._replaying = False
        with self._router:
            self._checkpoint_locked()
        self.db.add_mutation_listener(self._on_db_mutation)

    def _apply_snapshot_db(self, payload: Dict[str, Any]) -> None:
        """Apply a snapshot's database image through the facade.

        Unlike the strict replica path (:func:`repro.db.wire.apply_sync`)
        this tolerates a pre-populated authoritative database: relation
        inserts are set-semantics, so re-applying rows the caller
        already seeded is a no-op, and going through the facade keeps
        backend invalidation (write listeners) working.  Integrity is
        the frame CRC's job, not a stamp cross-check against a database
        the snapshot never promised to match.
        """
        from ..db.storage import Tombstone

        for record in payload["relations"]:
            schema = wire.decode_schema(record["schema"])
            if schema.name not in self.db:
                self.db.attach_relation(schema)
            if record.get("reset"):
                entries = wire.decode_rows(record["rows"])
            else:
                # Wire v3: a snapshot image's tail can carry tombstones
                # (deletions not yet compacted away when the checkpoint
                # ran) — replay them as deletes, same set semantics.
                entries = wire.decode_tail(record["rows"])
            for entry in entries:
                if isinstance(entry, Tombstone):
                    self.db.delete(schema.name, entry.row)
                else:
                    self.db.insert(schema.name, entry)

    def _replay_wal_record(self, record: Tuple) -> None:
        kind = record[0]
        if kind == "rows":
            _, relation, rows = record
            if rows:
                self.db.insert_many(relation, rows)
        elif kind == "del":
            _, relation, rows = record
            for row in rows:
                self.db.delete(relation, row)
        elif kind == "ddl":
            schema = record[1]
            if schema.name not in self.db:
                self.db.attach_relation(schema)
        else:
            self._replay_journal_entry(record[1])

    def _replay_journal_entry(self, entry: JournalEntry) -> None:
        """Re-execute one journaled operation during recovery.

        Entries that raised originally (``raised=True``) are replayed
        expecting the same :class:`~repro.errors.PreconditionError`;
        either way the op lands in the linearization exactly once, so
        the durable journal count keeps mapping one-to-one onto the
        original stream.
        """
        kind = entry[0]
        if kind == "submit":
            _, query, raised = entry
            try:
                self.submit(query)
            except PreconditionError:
                if not raised:
                    raise
        elif kind == "submit_many":
            self.submit_many(list(entry[1]))
        elif kind == "retract":
            _, name, raised = entry
            try:
                self.retract(name)
            except PreconditionError:
                if not raised:
                    raise
        elif kind == "insert":
            self.insert(entry[1], entry[2])
        elif kind == "delete":
            self.delete(entry[1], entry[2])
        elif kind == "flush":
            self.flush()
        elif kind == "flush_drain":
            self.flush_drain()
        else:  # pragma: no cover - decode_journal rejects unknown ops
            raise PreconditionError(f"unknown journal entry {entry!r}")

    def _on_db_mutation(self, event: MutationEvent) -> None:
        """Database mutation-listener hook: write-ahead the content."""
        if self.durable is not None and not self._replaying:
            self.durable.append_mutation(event)

    # ------------------------------------------------------------------
    # Resolution plumbing
    # ------------------------------------------------------------------
    def _on_shard_resolved(self, handle: QueryHandle) -> None:
        """Shard-engine hook: keep the routing table and states in sync.

        Runs synchronously on the resolving thread (inside the engine
        lock), so routing state never lags resolution; user callbacks
        are handed to the dispatcher in worker mode.
        """
        with self._tables:
            if handle.state is QueryState.REJECTED:
                # Two sources: an engine-level batch rejection (a
                # duplicate within one shard — never shadow the pending
                # namesake's routing entry), or a crashed worker
                # process rejecting the queries it held (the routed
                # handle itself — its shard no longer knows the name,
                # so the routing entry must go or ``pending()`` and the
                # loads would report ghosts forever).
                shard = self._shard_of.get(handle.query)
                if shard is None:
                    record_final_state(
                        self._final_states, handle.query, handle.state
                    )
                elif self._engines[shard].handle(handle.query) is None:
                    self._shard_of.pop(handle.query)
                    self._loads[shard] -= 1
                    self._costs[shard] -= self._query_cost.pop(handle.query, 0)
                    record_final_state(
                        self._final_states, handle.query, handle.state
                    )
            else:
                shard = self._shard_of.pop(handle.query, None)
                if shard is not None:
                    self._loads[shard] -= 1
                    self._costs[shard] -= self._query_cost.pop(handle.query, 0)
                record_final_state(
                    self._final_states, handle.query, handle.state
                )
            self._tables.notify_all()
        self._fire_service_callbacks(handle)

    def _reject(self, handle: QueryHandle, reason: str) -> None:
        """Service-level rejection (routing-time failures)."""
        handle._resolve(QueryState.REJECTED, reason=reason)
        with self._tables:
            if handle.query not in self._shard_of:
                record_final_state(
                    self._final_states, handle.query, QueryState.REJECTED
                )
        self._fire_service_callbacks(handle)

    def _fire_service_callbacks(self, handle: QueryHandle) -> None:
        callbacks = list(self._resolution_callbacks)
        if not callbacks:
            return
        if self._dispatcher is not None:

            def fire() -> None:
                for callback in callbacks:
                    callback(handle)

            self._dispatcher.post(fire)
        else:
            for callback in callbacks:
                callback(handle)

    def __repr__(self) -> str:
        loads = ", ".join(str(n) for n in self.shard_pending_counts())
        mode = (
            "serial"
            if self._workers is None
            else f"{len(self._workers)} workers"
        )
        return (
            f"ShardedCoordinationService({self.shard_count} shards, {mode}, "
            f"{self.executor} executor, {self.backend_name} backend, "
            f"pending per shard: [{loads}], "
            f"{self.migrations} migrations, {self.rebalances} rebalanced)"
        )
