"""A component-sharded coordination service over N engine shards.

The paper's Youtopia embedding (Section 6.1) is a single-node loop:
one coordination graph, one arrival at a time.  Its structure, though,
is embarrassingly partitionable — *weakly connected components never
interact*: evaluation, safety, and deletion are all per-component, so
any placement of whole components onto independent engines produces
exactly the single-engine outcomes.  :class:`ShardedCoordinationService`
exploits that invariant: it routes every arrival to one of N private
:class:`~repro.core.engine.CoordinationEngine` shards and maintains the
invariant that **each weak component lives entirely inside one shard**.

Routing (per arrival):

1. look up which shards hold pending queries the newcomer would share
   an edge with (a read-only
   :meth:`~repro.core.engine.CoordinationEngine.incident_pending` probe
   per shard — the same candidate-index work a single engine does,
   just partitioned);
2. no incident shard → place on a deterministic default shard
   (CRC of the name; stable across runs and processes);
3. one incident shard → place there;
4. several incident shards → the arrival's edges *span* shards, which
   would break the invariant.  The touched components **migrate**: the
   shard holding the largest touched mass wins, every other touched
   component is released from its donor shard
   (:meth:`~repro.core.engine.CoordinationEngine.release_component`,
   handles stay ``PENDING``) and adopted by the winner
   (:meth:`~repro.core.engine.CoordinationEngine.adopt`, no
   evaluation), and the newcomer lands there too.  Cost is
   O(moved components), and a component only ever moves when an
   arrival actually links it to another shard's component.

Because the invariant holds at every step, the service returns
**identical coordinating sets** (same members, same assignments) as a
single engine fed the same submit/retract stream — the equivalence the
test suite asserts on the partner and flights workloads.  The shards
share one :class:`~repro.db.Database`; what sharding buys is
coordination-state partitioning (graph, union–find, caches), the
prerequisite for running shards on separate workers.  Two deliberate
deviations from single-engine behaviour are documented in DESIGN.md
§6: ``flush`` retires one set *per shard* rather than one globally,
and an unsafe arrival may leave behind the migrations its routing
performed (components are merely re-homed; outcomes are unaffected).
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from ..db import Database
from ..errors import PreconditionError
from .engine import CoordinationEngine
from .lifecycle import (
    QueryHandle,
    QueryState,
    ResolutionCallback,
    record_final_state,
)
from .query import EntangledQuery
from .result import CoordinationResult
from .scc_coordination import SelectionCriterion, largest_candidate


class ShardedCoordinationService:
    """Routes a query-lifecycle stream across component-sharded engines.

    The public surface mirrors the engine's lifecycle API —
    :meth:`submit`, :meth:`submit_many`, :meth:`retract`,
    :meth:`status`, :meth:`on_resolved`, :meth:`flush`,
    :meth:`pending` — plus shard introspection.  Handles returned here
    are ordinary :class:`~repro.core.lifecycle.QueryHandle` objects and
    keep their identity across shard migrations (callbacks survive the
    move).

    Parameters
    ----------
    db:
        The shared database instance (all shards evaluate against it).
    shards:
        Number of engine shards (≥ 1; 1 degenerates to a single engine
        behind the routing facade).
    choose, check_safety, reuse_groundings, reuse_component_states:
        Forwarded to every shard's
        :class:`~repro.core.engine.CoordinationEngine`.
    """

    def __init__(
        self,
        db: Database,
        shards: int = 2,
        choose: SelectionCriterion = largest_candidate,
        check_safety: bool = True,
        reuse_groundings: bool = False,
        reuse_component_states: bool = True,
    ) -> None:
        if shards < 1:
            raise PreconditionError("a service needs at least one shard")
        self.db = db
        self._engines = [
            CoordinationEngine(
                db,
                choose=choose,
                check_safety=check_safety,
                reuse_groundings=reuse_groundings,
                reuse_component_states=reuse_component_states,
            )
            for _ in range(shards)
        ]
        self._shard_of: Dict[str, int] = {}
        self._final_states: Dict[str, QueryState] = {}
        self._resolution_callbacks: List[ResolutionCallback] = []
        #: Queries moved between shards by spanning arrivals (monotone).
        self.migrations = 0
        for engine in self._engines:
            engine.on_resolved(self._on_shard_resolved)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of engine shards."""
        return len(self._engines)

    def shard_of(self, name: str) -> Optional[int]:
        """The shard index currently holding a pending query."""
        return self._shard_of.get(name)

    def shard_pending_counts(self) -> Tuple[int, ...]:
        """Pending-query count per shard (load inspection)."""
        return tuple(len(engine.pending()) for engine in self._engines)

    def pending(self) -> Tuple[str, ...]:
        """Names of all pending queries across shards, sorted.

        Sorted (not arrival-ordered): arrival order is a per-shard
        notion once components migrate.
        """
        return tuple(sorted(self._shard_of))

    def handle(self, name: str) -> Optional[QueryHandle]:
        """The live handle of a pending query (``None`` otherwise)."""
        shard = self._shard_of.get(name)
        return None if shard is None else self._engines[shard].handle(name)

    def status(self, name: str) -> Optional[QueryState]:
        """Last known lifecycle state of ``name`` (service-wide)."""
        if name in self._shard_of:
            return QueryState.PENDING
        return self._final_states.get(name)

    def on_resolved(self, callback: ResolutionCallback) -> ResolutionCallback:
        """Register a service-wide resolution callback (any shard)."""
        self._resolution_callbacks.append(callback)
        return callback

    # ------------------------------------------------------------------
    # Lifecycle API
    # ------------------------------------------------------------------
    def submit(self, query: EntangledQuery) -> QueryHandle:
        """Route one arrival to its shard and evaluate its component.

        Same contract as
        :meth:`~repro.core.engine.CoordinationEngine.submit` — raises
        :class:`~repro.errors.PreconditionError` for a duplicate
        pending name (service-wide) or an unsafe arrival — and returns
        the same coordinating sets a single engine would.
        """
        target = self._route(query)
        self._shard_of[query.name] = target
        try:
            return self._engines[target].submit(query)
        except PreconditionError:
            self._shard_of.pop(query.name, None)
            raise

    def submit_many(
        self, queries: Iterable[EntangledQuery]
    ) -> List[QueryHandle]:
        """Batch admission with one evaluation per affected component.

        The sharded analogue of
        :meth:`~repro.core.engine.CoordinationEngine.submit_many`:
        arrivals are routed and admitted in order under one safety
        pass (failed admissions resolve to ``REJECTED`` instead of
        raising), then each shard evaluates its affected components
        exactly once.
        """
        handles: List[QueryHandle] = []
        admitted: List[QueryHandle] = []
        for query in queries:
            handle = QueryHandle(query)
            try:
                target = self._route(query)
                # adopt() never evaluates, so the handle cannot resolve
                # here — recording the route after it is race-free.
                self._engines[target].adopt((handle,))
            except PreconditionError as error:
                self._reject(handle, str(error))
            else:
                self._shard_of[query.name] = target
                admitted.append(handle)
            handles.append(handle)
        # Group by the shard holding each query NOW, not at admission:
        # a later batch member's routing may have migrated an earlier
        # member's component to another shard.
        by_shard: Dict[int, List[QueryHandle]] = {}
        for handle in admitted:
            by_shard.setdefault(self._shard_of[handle.query], []).append(handle)
        for target, group in by_shard.items():
            self._engines[target].evaluate_admitted(group)
        return handles

    def retract(self, name: str) -> QueryHandle:
        """Withdraw a pending query; O(its component), on its shard."""
        shard = self._shard_of.get(name)
        if shard is None:
            raise PreconditionError(f"query {name!r} is not pending")
        return self._engines[shard].retract(name)

    def flush(self) -> List[CoordinationResult]:
        """Evaluate everything pending, one global run **per shard**.

        Returns the per-shard results in shard order.  Deviation from
        the single-engine ``flush`` (DESIGN.md §6): each shard's
        selection criterion picks one coordinating set among *its*
        components, so one call may retire up to ``shard_count`` sets,
        and which set a shard picks is relative to its own candidates.
        Draining by looping until every result's ``chosen`` is ``None``
        reaches the same final pending set as a drained single engine.
        """
        return [engine.flush() for engine in self._engines]

    # ------------------------------------------------------------------
    # Routing and migration
    # ------------------------------------------------------------------
    def _route(self, query: EntangledQuery) -> int:
        """Pick (and, for spanning arrivals, prepare) the target shard."""
        if query.name in self._shard_of:
            raise PreconditionError(f"query {query.name!r} already pending")
        touched: Dict[int, Tuple[str, ...]] = {}
        for index, engine in enumerate(self._engines):
            incident = engine.incident_pending(query)
            if incident:
                touched[index] = incident
        if not touched:
            return self._default_shard(query.name)
        if len(touched) == 1:
            return next(iter(touched))

        # The arrival's edges span shards: merge the smaller touched
        # components into the shard holding the largest touched mass.
        weights: Dict[int, int] = {}
        for index, incident in touched.items():
            engine = self._engines[index]
            mass: set = set()
            for name in incident:
                mass.update(engine.component_of(name))
            weights[index] = len(mass)
        target = min(touched, key=lambda index: (-weights[index], index))
        for index, incident in touched.items():
            if index != target:
                self._migrate(index, target, incident)
        return target

    def _migrate(
        self, source: int, target: int, incident: Tuple[str, ...]
    ) -> None:
        """Move the components of ``incident`` from one shard to another."""
        donor = self._engines[source]
        moved: List[QueryHandle] = []
        for name in incident:
            if donor.handle(name) is None:
                continue  # already released with an earlier component
            moved.extend(donor.release_component(name))
        self._engines[target].adopt(moved)
        for handle in moved:
            self._shard_of[handle.query] = target
        self.migrations += len(moved)

    def _default_shard(self, name: str) -> int:
        """Deterministic placement for edge-free arrivals (CRC, not
        ``hash``: Python string hashing is salted per process)."""
        return zlib.crc32(name.encode("utf-8")) % len(self._engines)

    # ------------------------------------------------------------------
    # Resolution plumbing
    # ------------------------------------------------------------------
    def _on_shard_resolved(self, handle: QueryHandle) -> None:
        """Shard-engine hook: keep the routing table and states in sync."""
        if handle.state is QueryState.REJECTED:
            # An engine-level batch rejection (duplicate within one
            # shard); never shadow a pending namesake's routing entry.
            if handle.query not in self._shard_of:
                record_final_state(self._final_states, handle.query, handle.state)
        else:
            self._shard_of.pop(handle.query, None)
            record_final_state(self._final_states, handle.query, handle.state)
        for callback in self._resolution_callbacks:
            callback(handle)

    def _reject(self, handle: QueryHandle, reason: str) -> None:
        """Service-level rejection (routing-time failures)."""
        handle._resolve(QueryState.REJECTED, reason=reason)
        if handle.query not in self._shard_of:
            record_final_state(
                self._final_states, handle.query, QueryState.REJECTED
            )
        for callback in self._resolution_callbacks:
            callback(handle)

    def __repr__(self) -> str:
        loads = ", ".join(str(n) for n in self.shard_pending_counts())
        return (
            f"ShardedCoordinationService({self.shard_count} shards, "
            f"pending per shard: [{loads}], {self.migrations} migrations)"
        )
