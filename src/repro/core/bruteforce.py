"""Exact (exponential-time) solvers for entangled query evaluation.

These implement the two decision/search problems of Section 3 directly:

* :func:`find_coordinating_set` — decide ``Entangled(Q)`` and produce a
  witness (any coordinating set);
* :func:`find_maximum_coordinating_set` — solve ``EntangledMax(Q)``.

Both work on *arbitrary* query sets — no safety, uniqueness or
consistency assumptions — by enumerating subsets and
postcondition-to-head matchings with unification pruning.  They are the
test oracle for every polynomial-time algorithm in the library and the
baseline for the hardness ablation benchmark; they are exponential by
necessity (Theorems 1 and 2).

Completeness argument.  Any coordinating set ``(S, h)`` induces, for
each postcondition atom of ``S``, at least one head atom of ``S`` with
the same grounding; choosing one gives a matching whose pairs are
simultaneously unifiable (``h`` is a unifier, hence an MGU exists).
Conversely a matching whose MGU admits a database grounding for the
combined body — with leftover free variables filled from the active
domain — satisfies Definition 1.  Searching over subsets and matchings
is therefore exactly equivalent to searching over coordinating sets.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from ..db import ConjunctiveQuery, Database
from ..logic import Atom, Substitution, Variable, apply_substitution_all
from .query import EntangledQuery, check_distinct_names
from .result import CoordinatingSet
from .semantics import complete_assignment


def _matchings(
    posts: List[Tuple[str, Atom]],
    heads: List[Tuple[str, Atom]],
    substitution: Substitution,
) -> Iterator[Substitution]:
    """Enumerate substitutions matching every postcondition to some head.

    Backtracks over postconditions in order; each must unify with one of
    the candidate heads under the growing substitution.  Yields one
    substitution per complete matching (duplicates possible when
    different matchings induce the same constraints; harmless for the
    oracle's purposes).
    """
    if not posts:
        yield substitution
        return
    (_, post), *rest = posts
    for _, head in heads:
        if post.relation != head.relation or post.arity != head.arity:
            continue
        attempt = substitution.copy()
        ok = True
        for pt, ht in zip(post.terms, head.terms):
            if not attempt.unify_terms(pt, ht):
                ok = False
                break
        if ok:
            yield from _matchings(rest, heads, attempt)


def _ground_subset(
    db: Database,
    by_name: Dict[str, EntangledQuery],
    subset: Tuple[str, ...],
) -> Optional[Dict[Variable, Hashable]]:
    """Try to witness ``subset`` as a coordinating set.

    Returns a total assignment over the subset's (standardised)
    variables, or ``None``.
    """
    standardized = {name: by_name[name].standardized() for name in subset}
    posts: List[Tuple[str, Atom]] = []
    heads: List[Tuple[str, Atom]] = []
    bodies: List[Atom] = []
    for name in subset:
        query = standardized[name]
        posts.extend((name, a) for a in query.postconditions)
        heads.extend((name, a) for a in query.head)
        bodies.extend(query.body)

    for substitution in _matchings(posts, heads, Substitution()):
        rewritten = apply_substitution_all(bodies, substitution)
        solution = db.first_solution(ConjunctiveQuery(tuple(rewritten)))
        if solution is None:
            continue
        # Recover values for the original (pre-rewrite) variables.
        partial: Dict[Variable, Hashable] = {}
        for name in subset:
            for variable in standardized[name].variables():
                representative = substitution.resolve(variable)
                if isinstance(representative, Variable):
                    if representative in solution:
                        partial[variable] = solution[representative]
                else:
                    partial[variable] = representative.value
        total = complete_assignment(db, by_name, subset, partial)
        if total is not None:
            return total
    return None


def enumerate_coordinating_sets(
    db: Database,
    queries: Iterable[EntangledQuery],
    max_size: Optional[int] = None,
) -> Iterator[CoordinatingSet]:
    """Enumerate coordinating sets by increasing subset size.

    Every yielded set passes Definition 1; not every coordinating set is
    yielded exactly once (supersets with independent witnesses appear
    separately), but every coordinating *subset* of queries that admits
    a witness is yielded.
    """
    query_list = check_distinct_names(queries)
    by_name = {q.name: q for q in query_list}
    names = tuple(by_name)
    top = len(names) if max_size is None else min(max_size, len(names))
    for size in range(1, top + 1):
        for subset in combinations(names, size):
            assignment = _ground_subset(db, by_name, subset)
            if assignment is not None:
                yield CoordinatingSet(subset, assignment)


def find_coordinating_set(
    db: Database, queries: Iterable[EntangledQuery]
) -> Optional[CoordinatingSet]:
    """Decide ``Entangled(Q)``: any coordinating set, or ``None``.

    Searches smallest subsets first, so the witness returned is one of
    minimum cardinality.
    """
    for found in enumerate_coordinating_sets(db, queries):
        return found
    return None


def find_maximum_coordinating_set(
    db: Database, queries: Iterable[EntangledQuery]
) -> Optional[CoordinatingSet]:
    """Solve ``EntangledMax(Q)``: a maximum-size coordinating set.

    NP-hard in general (Theorem 2); exponential enumeration from the
    largest subset downward.
    """
    query_list = check_distinct_names(queries)
    by_name = {q.name: q for q in query_list}
    names = tuple(by_name)
    for size in range(len(names), 0, -1):
        for subset in combinations(names, size):
            assignment = _ground_subset(db, by_name, subset)
            if assignment is not None:
                return CoordinatingSet(subset, assignment)
    return None


def coordinating_set_exists(db: Database, queries: Iterable[EntangledQuery]) -> bool:
    """Boolean form of :func:`find_coordinating_set`."""
    return find_coordinating_set(db, queries) is not None
