"""Entangled queries (Section 2.1 of the paper).

An entangled query is a triple ``{P} H :- B`` where ``P`` is a list of
postcondition atoms, ``H`` a list of head atoms, and ``B`` the body — a
conjunction of atoms over database relations.  The syntax requires:

(i)  every relation symbol in the body is in the database schema, and
(ii) relation symbols in ``P`` and ``H`` are *answer relations*, disjoint
     from the database schema.

Queries own their variables: the variable ``x`` in one query is
unrelated to ``x`` in another.  :meth:`EntangledQuery.standardized`
moves every variable into the query's own namespace, which the
coordination layers do before unifying atoms across queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from ..db import Schema
from ..errors import MalformedQueryError
from ..logic import Atom, Variable, atoms_variables


@dataclass(frozen=True)
class EntangledQuery:
    """An entangled query ``{postconditions} head :- body``.

    ``name`` identifies the query within a set (e.g. the submitting
    user); all coordination structures are keyed by it.
    """

    name: str
    postconditions: Tuple[Atom, ...]
    head: Tuple[Atom, ...]
    body: Tuple[Atom, ...]

    def __init__(
        self,
        name: str,
        postconditions: Iterable[Atom] = (),
        head: Iterable[Atom] = (),
        body: Iterable[Atom] = (),
    ) -> None:
        if not name:
            raise MalformedQueryError("entangled query must have a name")
        head = tuple(head)
        postconditions = tuple(postconditions)
        body = tuple(body)
        if not head and not postconditions and not body:
            raise MalformedQueryError(
                f"query {name!r} must have at least one atom"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "postconditions", postconditions)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def answer_relations(self) -> FrozenSet[str]:
        """Relation symbols used in postconditions and head."""
        return frozenset(
            a.relation for a in self.postconditions
        ) | frozenset(a.relation for a in self.head)

    def body_relations(self) -> FrozenSet[str]:
        """Relation symbols used in the body."""
        return frozenset(a.relation for a in self.body)

    def variables(self) -> FrozenSet[Variable]:
        """All distinct variables across all three parts."""
        return (
            atoms_variables(self.postconditions)
            | atoms_variables(self.head)
            | atoms_variables(self.body)
        )

    def free_variables(self) -> FrozenSet[Variable]:
        """Variables of the head/postconditions that never hit the body.

        Such variables are unconstrained by the database; Definition 1
        still requires them to receive *some* domain value.
        """
        return (
            atoms_variables(self.postconditions) | atoms_variables(self.head)
        ) - atoms_variables(self.body)

    def validate(self, schema: Schema) -> None:
        """Enforce syntactic requirements (i) and (ii) against a schema."""
        for atom in self.body:
            if atom.relation not in schema:
                raise MalformedQueryError(
                    f"query {self.name!r}: body relation {atom.relation!r} "
                    f"is not in the database schema"
                )
        for atom in (*self.postconditions, *self.head):
            if atom.relation in schema:
                raise MalformedQueryError(
                    f"query {self.name!r}: answer relation {atom.relation!r} "
                    f"collides with a database relation"
                )

    # ------------------------------------------------------------------
    # Renaming
    # ------------------------------------------------------------------
    def standardized(self, namespace: Optional[str] = None) -> "EntangledQuery":
        """A copy with every variable moved into ``namespace``.

        Defaults to the query's own name, which is unique within a set,
        so standardising every query of a set this way guarantees
        pairwise-disjoint variables.
        """
        namespace = self.name if namespace is None else namespace
        return EntangledQuery(
            self.name,
            tuple(a.rename(namespace) for a in self.postconditions),
            tuple(a.rename(namespace) for a in self.head),
            tuple(a.rename(namespace) for a in self.body),
        )

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        posts = ", ".join(str(a) for a in self.postconditions)
        heads = ", ".join(str(a) for a in self.head)
        body = ", ".join(str(a) for a in self.body) if self.body else "∅"
        return f"{{{posts}}} {heads} :- {body}"

    def __repr__(self) -> str:
        return f"EntangledQuery({self.name!r}: {self})"


def check_distinct_names(queries: Iterable[EntangledQuery]) -> Tuple[EntangledQuery, ...]:
    """Validate that all queries in a set have distinct names."""
    queries = tuple(queries)
    seen = set()
    for query in queries:
        if query.name in seen:
            raise MalformedQueryError(f"duplicate query name {query.name!r}")
        seen.add(query.name)
    return queries


def validate_query_set(
    queries: Iterable[EntangledQuery], schema: Schema
) -> Tuple[EntangledQuery, ...]:
    """Validate names and syntax of a whole query set against a schema."""
    queries = check_distinct_names(queries)
    for query in queries:
        query.validate(schema)
    return queries
