"""Recognising the canonical A-consistent form in raw entangled queries.

:func:`repro.core.consistent_lowering.to_entangled` lowers structured
:class:`~repro.core.consistent.ConsistentQuery` objects to the paper's
general entangled form.  This module provides the *inverse*:
:func:`analyze_consistent` inspects an arbitrary
:class:`~repro.core.query.EntangledQuery` (e.g. one produced by the
text parser) and recovers the structured query — user, own constraints,
named partners, same-tuple partners, friend slots — or raises
:class:`~repro.errors.MalformedQueryError` explaining which part of the
canonical shape is violated.

This closes the loop for textual workflows::

    queries  = parse_queries(source)
    requests = [analyze_consistent(q, setup, db) for q in queries]
    result   = consistent_coordinate(db, setup, requests)

and gives an executable characterisation of Definitions 7–9: a query is
A-consistent exactly when analysis succeeds.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set

from ..db import Database
from ..errors import MalformedQueryError
from ..logic import Atom, Constant, Variable
from .consistent import ConsistentQuery, ConsistentSetup, FriendSlot, NamedPartner
from .query import EntangledQuery


def _constant(term: object, context: str) -> Hashable:
    if not isinstance(term, Constant):
        raise MalformedQueryError(f"{context}: expected a constant, got {term}")
    return term.value


def analyze_consistent(
    query: EntangledQuery,
    setup: ConsistentSetup,
    db: Database,
    answer_relation: str = "R",
) -> ConsistentQuery:
    """Recover the structured consistent query from the general form.

    The canonical shape (paper, Section 5)::

        {R(y1, f1), R(y2, c2), ...}
            R(x, User) :- S(x, ...), F(User, f1), S(y1, ...), S(y2, ...)

    Checks performed: exactly one head ``R(x, User)`` with a constant
    user; every postcondition over ``R`` with a key variable and a
    partner term; friend variables bound by a friendship atom
    ``F(User, f)``; one ``S``-atom per distinct partner key variable;
    A-coordination (coordination attributes share the user's terms) and
    A-non-coordination (other attributes are fresh distinct variables)
    per Definitions 7–9.
    """
    table_schema = db.schema.get(setup.table)
    key = table_schema.key
    if key is None:
        raise MalformedQueryError(f"table {setup.table!r} must declare a key")
    key_position = table_schema.key_position

    # --- head -----------------------------------------------------------
    if len(query.head) != 1:
        raise MalformedQueryError("canonical form has exactly one head atom")
    head = query.head[0]
    if head.relation != answer_relation or head.arity != 2:
        raise MalformedQueryError(
            f"head must be {answer_relation}(x, User), got {head}"
        )
    own_key = head.terms[0]
    if not isinstance(own_key, Variable):
        raise MalformedQueryError("head key position must be a variable")
    user = _constant(head.terms[1], "head user position")

    # --- bucket the body ---------------------------------------------------
    s_atoms: List[Atom] = []
    friend_atoms: List[Atom] = []
    for atom in query.body:
        if atom.relation == setup.table:
            s_atoms.append(atom)
        elif atom.relation in setup.friend_relations:
            friend_atoms.append(atom)
        else:
            raise MalformedQueryError(
                f"body atom {atom} is neither the coordination table nor a "
                f"friendship relation"
            )

    own_atoms = [a for a in s_atoms if a.terms[key_position] == own_key]
    if len(own_atoms) != 1:
        raise MalformedQueryError(
            "exactly one body atom must select the user's own tuple"
        )
    own_atom = own_atoms[0]
    partner_atoms: Dict[Variable, Atom] = {}
    for atom in s_atoms:
        if atom is own_atom:
            continue
        partner_key = atom.terms[key_position]
        if not isinstance(partner_key, Variable):
            raise MalformedQueryError(
                f"partner tuple atom {atom} must have a variable key"
            )
        if partner_key in partner_atoms:
            raise MalformedQueryError(
                f"two body atoms share the partner key {partner_key}"
            )
        partner_atoms[partner_key] = atom

    # --- friendship atoms: F(User, f) ------------------------------------
    friend_vars: Dict[Variable, str] = {}
    for atom in friend_atoms:
        if atom.arity != 2:
            raise MalformedQueryError(f"friendship atom {atom} must be binary")
        owner = _constant(atom.terms[0], f"friendship atom {atom}")
        if owner != user:
            raise MalformedQueryError(
                f"friendship atom {atom} does not belong to user {user!r}"
            )
        friend = atom.terms[1]
        if not isinstance(friend, Variable):
            raise MalformedQueryError(
                f"friendship atom {atom} must bind a friend variable"
            )
        if friend in friend_vars:
            raise MalformedQueryError(f"friend variable {friend} bound twice")
        friend_vars[friend] = atom.relation

    # --- own constraints ---------------------------------------------------
    constraints: Dict[str, Hashable] = {}
    for position, attribute in enumerate(table_schema.attributes):
        if attribute == key:
            continue
        term = own_atom.terms[position]
        if isinstance(term, Constant):
            constraints[attribute] = term.value

    # --- postconditions → partners --------------------------------------
    partners: List[object] = []
    used_friend_vars: Set[Variable] = set()
    used_partner_keys: Set[Variable] = set()
    for post in query.postconditions:
        if post.relation != answer_relation or post.arity != 2:
            raise MalformedQueryError(
                f"postcondition {post} must be {answer_relation}(y, partner)"
            )
        partner_key, partner_term = post.terms
        if not isinstance(partner_key, Variable):
            raise MalformedQueryError(
                f"postcondition {post} must carry a key variable"
            )
        if isinstance(partner_term, Variable):
            # Friend slot: the partner variable must come from F(User, f).
            relation = friend_vars.get(partner_term)
            if relation is None:
                raise MalformedQueryError(
                    f"friend variable {partner_term} has no friendship atom"
                )
            if partner_term in used_friend_vars:
                raise MalformedQueryError(
                    f"friend variable {partner_term} used by two postconditions"
                )
            used_friend_vars.add(partner_term)
            partners.append(FriendSlot(relation))
        else:
            same_tuple = partner_key == own_key
            partners.append(NamedPartner(partner_term.value, same_tuple=same_tuple))
        if partner_key != own_key:
            atom = partner_atoms.get(partner_key)
            if atom is None:
                raise MalformedQueryError(
                    f"partner key {partner_key} has no body atom over "
                    f"{setup.table!r}"
                )
            used_partner_keys.add(partner_key)
            _check_partner_atom(atom, own_atom, table_schema, setup)

    unused = set(partner_atoms) - used_partner_keys
    if unused:
        raise MalformedQueryError(
            f"body atoms with keys {sorted(map(str, unused))} are not "
            f"referenced by any postcondition"
        )
    unused_friends = set(friend_vars) - used_friend_vars
    if unused_friends:
        raise MalformedQueryError(
            f"friendship atoms for {sorted(map(str, unused_friends))} are not "
            f"referenced by any postcondition"
        )

    return ConsistentQuery(str(user), constraints, partners)


def _check_partner_atom(
    atom: Atom,
    own_atom: Atom,
    table_schema,
    setup: ConsistentSetup,
) -> None:
    """Definitions 7/8 position checks for one partner atom."""
    seen_vars: Set[Variable] = set()
    for position, attribute in enumerate(table_schema.attributes):
        if attribute == table_schema.key:
            continue
        own_term = own_atom.terms[position]
        partner_term = atom.terms[position]
        if attribute in setup.coordination_attributes:
            if partner_term != own_term:
                raise MalformedQueryError(
                    f"coordination attribute {attribute!r} differs between "
                    f"{own_atom} and {atom} (not A-coordinating)"
                )
        else:
            if not isinstance(partner_term, Variable):
                raise MalformedQueryError(
                    f"non-coordination attribute {attribute!r} of {atom} must "
                    f"be a fresh variable (not A-non-coordinating)"
                )
            if partner_term == own_term or partner_term in seen_vars:
                raise MalformedQueryError(
                    f"non-coordination attribute {attribute!r} of {atom} "
                    f"reuses a variable (not A-non-coordinating)"
                )
            seen_vars.add(partner_term)


def analyze_program(
    queries: Sequence[EntangledQuery],
    setup: ConsistentSetup,
    db: Database,
    answer_relation: str = "R",
) -> List[ConsistentQuery]:
    """Analyse a whole program; raises on the first non-canonical query."""
    return [
        analyze_consistent(q, setup, db, answer_relation=answer_relation)
        for q in queries
    ]
