"""TCP shard transport: engine shards hosted on other machines.

The third implementation of the shard seam
(:mod:`repro.core.transport`), and the multi-node half of the fabric:

* :class:`ShardHost` — the worker side, a standalone server any
  machine can run (``python -m repro shard-host HOST:PORT``).  It is
  the gateway's asyncio architecture pointed inward: an event loop on
  a daemon thread accepts connections speaking length-prefixed
  :mod:`repro.db.wire` frames (the same stream framing the gateway
  uses — see :mod:`repro.client`), and each router connects with a
  small **hello handshake** that names its lane and session.  A main
  lane builds one :class:`~repro.core.transport.WorkerSession`
  (private lock-free replica + engine); a control lane attaches to it
  and flips the session to phased evaluation — frames on different
  connections execute on different pool threads, so a control probe is
  answered mid-``evaluate`` exactly as in the worker process.  Frames
  on *one* connection execute strictly in order (the request/reply
  discipline every lane requires).  An undecodable or
  version-mismatched frame — a router speaking a different
  ``db/wire`` version — is answered with a clean error reply and the
  connection closed; the host never crashes on it.

* :class:`RemoteShardTransport` — the router-side
  :class:`~repro.core.transport.ShardProxy` whose transport is a pair
  of TCP connections.  On construction it performs **replica warm-up**:
  one ``sync=True`` round trip ships the authoritative database as a
  bulk :func:`~repro.db.wire.build_sync` snapshot (the stamp vector
  starts empty), so the first evaluation pays no sync cost and a shard
  joining mid-stream starts from current state.  Steady-state sync is
  the usual write-token-gated stamp diff, now with tombstone tails —
  retract-heavy workloads no longer grow remote replicas unboundedly.

Failover is the service's job, not this module's: the proxy reports
death through the seam's :attr:`~repro.core.transport.ShardProxy.on_death`
hook, and :class:`~repro.core.service.ShardedCoordinationService`
re-homes the orphaned components to a surviving shard.
"""

from __future__ import annotations

import asyncio
import sys
import threading
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple, Union

from ..client import FramedEndpoint, checked_length
from ..concurrency import SHUTDOWN_GRACE, Deadline
from ..db import Database, wire
from ..errors import ConcurrencyError, PreconditionError, ReproError
from .transport import (
    CONTROL_SWITCH_INTERVAL,
    ShardProxy,
    WorkerSession,
    error_reply,
)

#: Accepted lane names in the hello handshake.
_LANES = ("main", "control")

Address = Union[str, Tuple[str, int]]


def parse_address(spec: Address) -> Tuple[str, int]:
    """``"host:port"`` (IPv6 brackets allowed) or ``(host, port)``."""
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise PreconditionError(
            f"remote shard address {spec!r} is not HOST:PORT"
        )
    host = host.strip("[]")
    try:
        return host, int(port)
    except ValueError:
        raise PreconditionError(
            f"remote shard address {spec!r} has a non-numeric port"
        ) from None


# ---------------------------------------------------------------------------
# Worker side: the shard host server
# ---------------------------------------------------------------------------
class ShardHost:
    """Host engine shards for remote routers, over TCP.

    Lifecycle mirrors :class:`~repro.core.gateway.Gateway`: the event
    loop runs on a daemon thread, ``start()`` returns the bound
    address (``port=0`` binds ephemerally), ``close()`` tears down
    within :data:`~repro.concurrency.SHUTDOWN_GRACE`.  One host serves
    any number of shard sessions — each router main-lane connection
    owns a private :class:`~repro.core.transport.WorkerSession`, so
    several services (or several shards of one service) can share a
    host process.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_threads: int = 8,
    ) -> None:
        self.host = host
        self.port = port
        self._pool = ThreadPoolExecutor(
            max_workers=worker_threads, thread_name_prefix="repro-shard-host"
        )
        self._sessions: Dict[str, WorkerSession] = {}
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._address: Optional[Tuple[str, int]] = None
        self._conn_tasks: set = set()
        self._writers: set = set()

    # -- lifecycle -------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._address is None:
            raise PreconditionError("shard host is not started")
        return self._address

    @property
    def session_count(self) -> int:
        """Live shard sessions (leak assertion hook for tests)."""
        return len(self._sessions)

    def start(self) -> Tuple[str, int]:
        """Bind, start serving on a background thread, return the address."""
        if self._thread is not None:
            raise PreconditionError("shard host already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-shard-host-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        assert self._address is not None
        return self._address

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the serving loop exits; ``True`` when it has."""
        thread = self._thread
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()

    def close(self, timeout: Optional[float] = SHUTDOWN_GRACE) -> None:
        """Stop serving and drop every session (idempotent)."""
        if self._thread is None:
            return
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None:
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        self._thread.join(timeout)
        self._thread = None
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "ShardHost":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- event loop ------------------------------------------------------
    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - surfaced via start()
            if not self._started.is_set():
                self._startup_error = error
                self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        self._address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._shutdown.wait()
            for writer in list(self._writers):
                writer.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=SHUTDOWN_GRACE)

    async def _read_frame(self, reader) -> Optional[bytes]:
        try:
            prefix = await reader.readexactly(4)
            return await reader.readexactly(
                checked_length(prefix, ConcurrencyError)
            )
        except (asyncio.IncompleteReadError, OSError, ConnectionError):
            return None

    async def _send(self, writer, reply: dict) -> bool:
        frame = wire.dumps(reply)
        try:
            writer.write(len(frame).to_bytes(4, "big") + frame)
            await writer.drain()
            return True
        except (OSError, ConnectionError):
            return False

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        session_token: Optional[str] = None
        lane = "main"
        try:
            session, session_token, lane = await self._handshake(reader, writer)
            if session is None:
                return
            loop = asyncio.get_running_loop()
            handler = (
                session.handle_main if lane == "main" else session.handle_control
            )
            while True:
                frame = await self._read_frame(reader)
                if frame is None:
                    return
                stop = False
                try:
                    message = wire.loads(frame)
                except ReproError as error:
                    # A frame this router cannot even decode (foreign
                    # wire version, corruption): reject it cleanly and
                    # keep the host alive; the connection is useless,
                    # so close it after replying.
                    await self._send(writer, error_reply(error))
                    return
                reply = await loop.run_in_executor(self._pool, handler, message)
                stop = lane == "main" and message.get("op") == "stop"
                if not await self._send(writer, reply) or stop:
                    return
        finally:
            if session_token is not None and lane == "main":
                self._sessions.pop(session_token, None)
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _handshake(self, reader, writer):
        """Validate the hello frame; returns ``(session, token, lane)``.

        Any problem — undecodable frame (wrong wire version), a
        non-hello first frame, an unknown lane or session — earns a
        clean error reply, never a crash; ``(None, None, "main")``
        signals the caller to drop the connection.
        """
        frame = await self._read_frame(reader)
        if frame is None:
            return None, None, "main"
        try:
            hello = wire.loads(frame)
        except ReproError as error:
            await self._send(writer, error_reply(error))
            return None, None, "main"
        lane = hello.get("lane", "main")
        token = hello.get("session")
        if (
            hello.get("op") != "hello"
            or lane not in _LANES
            or not isinstance(token, str)
        ):
            await self._send(
                writer,
                error_reply(
                    PreconditionError(
                        "expected a hello frame "
                        "{op: 'hello', lane: 'main'|'control', session: str}"
                    )
                ),
            )
            return None, None, "main"
        if lane == "main":
            if token in self._sessions:
                await self._send(
                    writer,
                    error_reply(
                        PreconditionError(f"session {token!r} already exists")
                    ),
                )
                return None, None, "main"
            options = hello.get("options") or {}
            session = WorkerSession(
                check_safety=bool(options.get("check_safety", True)),
                reuse_groundings=bool(options.get("reuse_groundings", False)),
                reuse_component_states=bool(
                    options.get("reuse_component_states", True)
                ),
                plan_cache=bool(options.get("plan_cache", True)),
                composite_indexes=bool(
                    options.get("composite_indexes", True)
                ),
            )
            self._sessions[token] = session
        else:
            session = self._sessions.get(token)
            if session is None:
                await self._send(
                    writer,
                    error_reply(
                        PreconditionError(
                            f"control lane for unknown session {token!r}"
                        )
                    ),
                )
                return None, None, "main"
            session.phased = True
            sys.setswitchinterval(CONTROL_SWITCH_INTERVAL)
        if not await self._send(
            writer, {"ok": True, "version": wire.VERSION}
        ):
            return None, None, "main"
        return session, token, lane


# ---------------------------------------------------------------------------
# Router side: the TCP shard proxy
# ---------------------------------------------------------------------------
class RemoteShardTransport(ShardProxy):
    """Router-side proxy for one shard engine hosted over TCP.

    The generic proxy protocol lives in
    :class:`~repro.core.transport.ShardProxy`; this class supplies the
    socket transport (two :class:`~repro.client.FramedEndpoint`
    connections, one per lane, joined to one host-side session by the
    hello handshake) and the connect-time replica warm-up.

    Sockets run without a read timeout by default: an ``evaluate``
    legitimately blocks for as long as evaluation takes, and a killed
    host surfaces promptly as a reset/closed connection — the seam's
    ordinary death path.  ``connect_retries`` spaces out connection
    attempts against a host that is still binding its listener.
    """

    def __init__(
        self,
        db: Database,
        index: int,
        address: Address,
        check_safety: bool = True,
        reuse_groundings: bool = False,
        reuse_component_states: bool = True,
        control_lane: bool = True,
        timeout: Optional[float] = None,
        connect_retries: int = 10,
        plan_cache: bool = True,
        composite_indexes: bool = True,
    ) -> None:
        self.host, self.port = parse_address(address)
        self.session = uuid.uuid4().hex
        options = {
            "check_safety": check_safety,
            "reuse_groundings": reuse_groundings,
            "reuse_component_states": reuse_component_states,
            "plan_cache": plan_cache,
            "composite_indexes": composite_indexes,
        }
        self._endpoint = self._connect(
            "main", options, timeout, connect_retries
        )
        self._control_endpoint = (
            self._connect("control", options, timeout, connect_retries)
            if control_lane
            else None
        )
        super().__init__(db, index, control_lane=control_lane)
        # Warm-up: the stamp vector starts empty, so this sync=True
        # round trip ships the entire authoritative database as one
        # bulk snapshot — the first evaluation pays no sync cost.
        self._request({"op": "ping"}, sync=True)

    def _connect(
        self,
        lane: str,
        options: dict,
        timeout: Optional[float],
        retries: int,
    ) -> FramedEndpoint:
        endpoint = FramedEndpoint(
            self.host,
            self.port,
            timeout=timeout,
            retries=retries,
            error=EOFError,
        )
        try:
            endpoint.send_message(
                {
                    "op": "hello",
                    "lane": lane,
                    "session": self.session,
                    "options": options,
                }
            )
            reply = endpoint.recv_message()
        except (EOFError, OSError) as error:
            endpoint.close()
            raise ConcurrencyError(
                f"shard {lane} handshake with {self.host}:{self.port} "
                f"failed: {error!r}"
            ) from error
        if reply.get("error") is not None or not reply.get("ok"):
            endpoint.close()
            error = reply.get("error") or {}
            raise PreconditionError(
                f"shard host {self.host}:{self.port} rejected the {lane} "
                f"handshake: {error.get('message', reply)}"
            )
        return endpoint

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _transact(self, frame: bytes, control: bool = False) -> bytes:
        endpoint = self._control_endpoint if control else self._endpoint
        endpoint.send_frame(frame)
        return endpoint.recv_frame()

    @property
    def _has_control(self) -> bool:
        return self._control_endpoint is not None

    def _describe_death(self, error: BaseException) -> str:
        return (
            f"shard {self.index} remote worker at "
            f"{self.host}:{self.port} died: {error!r}"
        )

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def stop(self, timeout: Optional[float] = SHUTDOWN_GRACE) -> bool:
        """Disconnect from the host; best-effort within ``timeout``.

        Graceful first (a ``stop`` command retires the host-side
        session), then the sockets close unconditionally.  The host
        process itself belongs to its operator — stopping a proxy never
        kills the host.  Returns ``True`` (the connection is always
        gone on return).
        """
        self.db.remove_write_listener(self._listener)
        deadline = Deadline(timeout)
        if not self._stopped and self._dead is None:
            remaining = deadline.remaining()
            acquired = (
                self._io.acquire()
                if remaining is None
                else self._io.acquire(timeout=remaining)
            )
            if acquired:
                try:
                    self._endpoint.set_timeout(deadline.remaining())
                    self._endpoint.send_frame(wire.dumps({"op": "stop"}))
                    self._endpoint.recv_frame()
                except (EOFError, OSError, ValueError):
                    pass
                finally:
                    self._io.release()
        self._stopped = True
        self._endpoint.close()
        if self._control_endpoint is not None:
            self._control_endpoint.close()
        return True

    def __repr__(self) -> str:
        state = "stopped" if self._stopped else ("dead" if self._dead else "up")
        return (
            f"RemoteShardTransport(shard {self.index} @ "
            f"{self.host}:{self.port}, {state}, {len(self._handles)} pending)"
        )
