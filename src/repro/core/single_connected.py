"""Coordination for single-connected query sets (Definition 6, Theorem 3).

A query set is *single-connected* when every query has at most one
postcondition atom and the coordination graph has at most one simple
path between every pair of vertices.  Theorem 3 states that evaluation
is then possible with a linear number of conjunctive queries (of linear
size) to the database.

The paper states the theorem without a published proof, so this module
documents the realisation we implement (DESIGN.md, deviation 3):

* contract SCCs and process the condensation in reverse topological
  order, exactly like the SCC Coordination Algorithm;
* the one difference is that single-connected sets may be *unsafe*: one
  postcondition can unify with several heads.  Per component we resolve
  each postcondition by trying its candidate edges in order,
  backtracking on unification or database failure.  For genuinely
  single-connected inputs, two candidate edges of one postcondition
  lead to vertex-disjoint reachable regions (a shared vertex would give
  two simple paths), so choices are independent, first-fit composition
  is sound, and the number of database queries is bounded by the number
  of extended-graph edges — linear, as Theorem 3 promises.
* on inputs that are *not* single-connected the solver stays correct
  (it is a complete backtracking search) but may lose the linear bound;
  ``strict=True`` enforces the precondition instead.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from ..db import ConjunctiveQuery, CoordinationStats, Database
from ..errors import PreconditionError
from ..graphs import condensation
from ..logic import Atom, Substitution, Variable, apply_substitution_all
from .coordination_graph import CoordinationGraph, ExtendedEdge
from .properties import is_single_connected
from .query import EntangledQuery
from .result import CoordinatingSet, CoordinationResult
from .scc_coordination import SelectionCriterion, largest_candidate, preprocess
from .semantics import complete_assignment


def single_connected_coordinate(
    db: Database,
    queries: Iterable[EntangledQuery],
    choose: SelectionCriterion = largest_candidate,
    strict: bool = True,
) -> CoordinationResult:
    """Find a coordinating set for a single-connected query set.

    ``strict`` verifies Definition 6 up front (at most one postcondition
    per query and unique simple paths) and raises
    :class:`~repro.errors.PreconditionError` otherwise.
    """
    graph = CoordinationGraph.build(queries)
    if strict and not is_single_connected(graph):
        raise PreconditionError("query set is not single-connected")

    stats = CoordinationStats(
        graph_nodes=graph.graph.node_count(),
        graph_edges=graph.graph.edge_count(),
    )
    pre = preprocess(graph)
    graph = pre.graph
    stats.preprocessing_removed = len(pre.removed)
    if not graph.queries:
        return CoordinationResult(None, [], stats)

    cond = condensation(graph.graph)
    stats.scc_count = cond.component_count

    # Per component: None = failed, else (substitution, involved names).
    resolved: List[Optional[Tuple[Substitution, Tuple[str, ...]]]] = [
        None
    ] * cond.component_count
    candidates: List[CoordinatingSet] = []

    for component in cond.reverse_topological_order():
        outcome = _resolve_component(db, graph, cond, component, resolved, stats)
        resolved[component] = outcome
        if outcome is None:
            continue
        substitution, involved = outcome
        assignment = _ground(db, graph, involved, substitution, stats)
        if assignment is not None:
            candidates.append(CoordinatingSet(involved, assignment))

    stats.candidate_sets = len(candidates)
    return CoordinationResult(choose(candidates), candidates, stats)


def _resolve_component(
    db: Database,
    graph: CoordinationGraph,
    cond,
    component: int,
    resolved: Sequence[Optional[Tuple[Substitution, Tuple[str, ...]]]],
    stats: CoordinationStats,
) -> Optional[Tuple[Substitution, Tuple[str, ...]]]:
    """Resolve one component: choose an edge per member postcondition.

    Members have at most one postcondition each.  For each member we
    enumerate its candidate extended edges (to heads inside the
    component or in successor components); the cross product is explored
    with backtracking, pruned by unification, and each complete choice
    is validated with a single database satisfiability query.
    """
    members = cond.members(component)
    options: List[List[ExtendedEdge]] = []
    for name in members:
        query = graph.standardized[name]
        for pi in range(len(query.postconditions)):
            edges = [
                e
                for e in graph.edges_from_postcondition(name, pi)
                if cond.component_of(e.target) == component
                or resolved[cond.component_of(e.target)] is not None
            ]
            if not edges:
                return None
            options.append(edges)

    for choice in product(*options) if options else [()]:
        substitution = Substitution()
        involved: Set[str] = set(members)
        ok = True
        # Merge the resolved substitutions of every successor component
        # this particular choice actually uses.
        used_components = {
            cond.component_of(e.target)
            for e in choice
            if cond.component_of(e.target) != component
        }
        for successor in sorted(used_components):
            entry = resolved[successor]
            assert entry is not None
            successor_sub, successor_involved = entry
            if not substitution.merge(successor_sub):
                ok = False
                break
            involved.update(successor_involved)
        if not ok:
            continue
        for edge in choice:
            stats.unifications += 1
            post = graph.post_atom(edge)
            head = graph.head_atom(edge)
            for pt, ht in zip(post.terms, head.terms):
                if not substitution.unify_terms(pt, ht):
                    stats.unification_failures += 1
                    ok = False
                    break
            if not ok:
                break
        if not ok:
            continue

        involved_sorted = tuple(sorted(involved, key=str))
        combined_body: List[Atom] = []
        for name in involved_sorted:
            combined_body.extend(graph.standardized[name].body)
        rewritten = apply_substitution_all(combined_body, substitution)
        stats.db_queries += 1
        if db.is_satisfiable(ConjunctiveQuery(tuple(rewritten))):
            return substitution, involved_sorted
    return None


def _ground(
    db: Database,
    graph: CoordinationGraph,
    involved: Tuple[str, ...],
    substitution: Substitution,
    stats: CoordinationStats,
) -> Optional[Dict[Variable, Hashable]]:
    """Produce a total assignment for the resolved component."""
    combined_body: List[Atom] = []
    for name in involved:
        combined_body.extend(graph.standardized[name].body)
    rewritten = apply_substitution_all(combined_body, substitution)
    stats.db_queries += 1
    solution = db.first_solution(ConjunctiveQuery(tuple(rewritten)))
    if solution is None:
        return None
    partial: Dict[Variable, Hashable] = {}
    for name in involved:
        for variable in graph.standardized[name].variables():
            representative = substitution.resolve(variable)
            if isinstance(representative, Variable):
                if representative in solution:
                    partial[variable] = solution[representative]
            else:
                partial[variable] = representative.value
    return complete_assignment(db, graph.queries, involved, partial)
