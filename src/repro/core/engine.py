"""An online coordination engine in the style of the Youtopia system.

Section 6.1 describes how the paper's implementation is embedded:
queries arrive one at a time; the system updates the coordination graph,
then calls an evaluation method on the *connected component* the new
query belongs to; when evaluation succeeds, the satisfied queries are
deleted from the system's data structures.

:class:`CoordinationEngine` reproduces that control loop on top of the
SCC Coordination Algorithm, giving the library a realistic online entry
point (and the benchmarks a faithful way to measure per-arrival
processing) — wrapped in a first-class query-*lifecycle* API:

* :meth:`submit` returns a :class:`~repro.core.lifecycle.QueryHandle`
  that tracks the query from admission to resolution
  (``PENDING → SATISFIED | RETRACTED | REJECTED``); the handle
  duck-types the seed :class:`ArrivalOutcome`, so pre-lifecycle
  callers keep working unchanged;
* :meth:`retract` withdraws one pending query in O(its weak
  component) — the graph side via
  :meth:`~repro.core.coordination_graph.CoordinationGraph.discard_queries`,
  the component side via
  :meth:`~repro.graphs.UnionFind.replace_component`;
* :meth:`submit_many` admits a batch under one safety pass and runs
  **one** evaluation per affected weak component (unsafe batch members
  resolve to ``REJECTED`` instead of raising);
* :meth:`status` reports the last known state of a name, and
  :meth:`on_resolved` registers engine-wide resolution callbacks.

The arrival path is incremental end-to-end, so an arrival costs
amortized O(its weakly connected component), independent of the total
pending-set size:

* the coordination graph is extended through
  :meth:`~repro.core.coordination_graph.CoordinationGraph.probe` /
  ``with_arrival`` — only the newcomer's incident edges are computed,
  and nothing is copied;
* safety (Definition 2) is re-checked from the probe's head-match
  deltas in O(new edges) — the pending set was safe before the
  arrival, so only the new edges can break it — and a rejected arrival
  leaves no state to roll back;
* the newcomer's weak component comes from a
  :class:`~repro.graphs.UnionFind` over pending queries (amortized
  O(α) per new edge) instead of a BFS over the whole graph;
* per-SCC evaluation states (substitution + grounding) are memoized
  *across arrivals*, keyed by component membership and per-relation
  database version stamps (:meth:`~repro.db.Database.data_versions`),
  so re-evaluating a grown component re-issues database queries only
  for new or merged sub-components, and a write to a relation no
  pending body mentions evicts nothing;
* a satisfied coordinating set (or a retracted query) is deleted in
  O(its component) via
  :meth:`~repro.core.coordination_graph.CoordinationGraph.discard_queries`,
  and its weak component is re-split from the surviving incident edges.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..concurrency import OwnedLock
from ..db import Database, EvaluationReader
from ..errors import ConcurrencyError, PreconditionError
from ..graphs import UnionFind
from .coordination_graph import CoordinationGraph
from .lifecycle import (
    QueryHandle,
    QueryState,
    ResolutionCallback,
    record_final_state,
)
from .query import EntangledQuery
from .result import CoordinationResult
from .scc_coordination import (
    ComponentCache,
    SelectionCriterion,
    largest_candidate,
    scc_coordinate_on_graph,
)


class _StateCache(dict):
    """A :data:`ComponentCache` dict with inverted name and relation indexes.

    Retirement eviction must drop every entry whose stored closure
    touches a deleted query; a plain dict forces an O(cache) scan per
    retirement, which would break the engine's O(component) bound on
    churn-heavy read-only streams.  The name index makes
    :meth:`keys_touching` proportional to the affected entries only.

    Database-write eviction is finer still: each entry is indexed by
    the *body relations* of its closure's queries (resolved through the
    engine's pending pool at insertion time), so an insert into one
    relation evicts only the entries whose evaluation could observe it
    — see :meth:`keys_touching_relations`.  An entry whose queries
    cannot be resolved (not pending at insertion time, which no current
    caller produces) is indexed as a *wildcard* and evicted on any
    write, keeping the fallback conservative.

    The SCC algorithm populates the cache through plain ``dict``
    operations, all of which are intercepted here.

    Thread-safety: a small internal mutex serializes the *multi-step*
    operations (``__setitem__``/``__delitem__``/``clear`` update four
    side indexes; ``keys_touching*`` read them), because under the
    concurrent shard executor an evaluation writing cache entries
    (worker, outside the engine lock) can overlap an eviction for a
    *different* component (router, inside the engine lock).  Plain
    lookups (``get``/``in``) stay unlocked: a key's value tuple is
    immutable and installed with one atomic dict store, and the
    executor's component-freeze protocol guarantees the overlapping
    threads touch disjoint key sets — the mutex only protects the
    shared index structures.
    """

    def __init__(
        self, relations_of: Callable[[str], Optional[FrozenSet[str]]]
    ) -> None:
        super().__init__()
        self._relations_of = relations_of
        self._mutex = threading.Lock()
        self._by_name: Dict[str, Set[frozenset]] = {}
        self._by_relation: Dict[str, Set[frozenset]] = {}
        self._key_relations: Dict[frozenset, Optional[FrozenSet[str]]] = {}
        self._wildcard: Set[frozenset] = set()

    def _unindex(self, key: frozenset, involved: Tuple[str, ...]) -> None:
        for name in involved:
            keys = self._by_name.get(name)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_name[name]
        relations = self._key_relations.pop(key, None)
        if relations is None:
            self._wildcard.discard(key)
        else:
            for relation in relations:
                keys = self._by_relation.get(relation)
                if keys is not None:
                    keys.discard(key)
                    if not keys:
                        del self._by_relation[relation]

    def __setitem__(self, key, value) -> None:
        with self._mutex:
            self._setitem_locked(key, value)

    def _setitem_locked(self, key, value) -> None:
        old = self.get(key)
        if old is not None:
            self._unindex(key, old[0])
        super().__setitem__(key, value)
        state = value[1]
        # A body-relation write is the only insert that can flip a
        # db-failed verdict (inserts are monotone, so successes stay
        # valid) — with two active-domain exceptions, both wildcards:
        # a non-failed state with NO assignment (evaluation succeeded
        # but free-variable completion failed on an empty domain, which
        # any insert can grow — eviction un-strands the component), and
        # an assignment that USED the domain filler (min(domain) can
        # change under any insert; an uncached run would pick the new
        # minimum, and cached results must match uncached ones).
        domain_dependent = (
            not state.failed and state.assignment is None
        ) or state.domain_filled
        relations: Optional[Set[str]] = None if domain_dependent else set()
        for name in value[0]:
            self._by_name.setdefault(name, set()).add(key)
            body = self._relations_of(name) if relations is not None else None
            if relations is not None:
                if body is None:
                    relations = None
                else:
                    relations.update(body)
        if relations is None:
            self._key_relations[key] = None
            self._wildcard.add(key)
        else:
            frozen = frozenset(relations)
            self._key_relations[key] = frozen
            for relation in frozen:
                self._by_relation.setdefault(relation, set()).add(key)

    def __delitem__(self, key) -> None:
        with self._mutex:
            entry = self.get(key)
            super().__delitem__(key)
            if entry is not None:
                self._unindex(key, entry[0])

    def clear(self) -> None:
        with self._mutex:
            super().clear()
            self._by_name.clear()
            self._by_relation.clear()
            self._key_relations.clear()
            self._wildcard.clear()

    def keys_touching(self, names: Set[str]) -> Set[frozenset]:
        """Keys whose stored closure contains any of ``names``."""
        with self._mutex:
            touched: Set[frozenset] = set()
            for name in names:
                touched |= self._by_name.get(name, set())
            return touched

    def keys_touching_relations(self, relations: Set[str]) -> Set[frozenset]:
        """Keys whose closure bodies mention any of ``relations``
        (plus every wildcard entry — the conservative fallback)."""
        with self._mutex:
            touched: Set[frozenset] = set(self._wildcard)
            for relation in relations:
                touched |= self._by_relation.get(relation, set())
            return touched


@dataclass(frozen=True)
class _EvaluationPlan:
    """Snapshot handed from an evaluation's locked plan phase to its
    unlocked run phase: the component members, the independently-cored
    induced subgraph, the stamp-checked state cache, and the database
    view acquired from the storage backend (the shared store, or a
    freshly synced per-shard replica)."""

    component: Tuple[str, ...]
    restricted: "CoordinationGraph"
    cache: Optional[ComponentCache]
    db: Database


@dataclass
class ArrivalOutcome:
    """What happened when one query arrived (or was batch-evaluated)."""

    query: str
    component: Tuple[str, ...]
    result: Optional[CoordinationResult]
    satisfied: Tuple[str, ...] = ()

    @property
    def coordinated(self) -> bool:
        """``True`` when the arrival completed a coordinating set."""
        return bool(self.satisfied)


class CoordinationEngine:
    """Buffers entangled queries and coordinates them on arrival.

    Parameters
    ----------
    db:
        The shared database instance.
    choose:
        Selection criterion forwarded to the SCC algorithm.
    check_safety:
        When ``True`` (default) an arrival that makes the pending set
        unsafe is rejected — :meth:`submit` raises
        :class:`~repro.errors.PreconditionError`, :meth:`submit_many`
        resolves the handle to ``REJECTED`` — because the engine's
        evaluation method is the safe-set algorithm.  The rejection is
        an O(new edges) delta check whose correctness rests on the
        invariant that every *earlier* arrival was checked too: decide
        this flag at construction and do not flip it mid-stream (an
        engine that admitted unsafe arrivals while it was ``False``
        will not retroactively detect them).
    reuse_groundings:
        Forwarded to the SCC algorithm: seed each component's combined
        query with its successors' groundings within one evaluation.
    reuse_component_states:
        Memoize per-SCC evaluation states across arrivals (see module
        docstring).  The cache is invalidated automatically when the
        database changes — per relation, via
        :meth:`~repro.db.Database.data_versions`: only entries whose
        component bodies touch a mutated relation are dropped, with a
        clear-everything fallback should the per-relation stamps ever
        fail to explain a changed global stamp — and entries touching
        a satisfied/retracted (deleted) query are dropped.  Disable to
        reproduce the non-memoized evaluation cost profile.
    reader:
        Optional storage-backend view
        (:class:`~repro.db.EvaluationReader`): where this engine's
        evaluations *read* from.  ``None`` (default) evaluates against
        ``db`` directly — the shared-store behaviour.  The sharded
        service hands each shard its backend reader; with the
        replicated backend the reader returns a private replica synced
        at plan time, so the evaluation (run) phase touches no shared
        lock.  Writes and version stamps always go through ``db``, the
        authoritative store.
    """

    def __init__(
        self,
        db: Database,
        choose: SelectionCriterion = largest_candidate,
        check_safety: bool = True,
        reuse_groundings: bool = False,
        reuse_component_states: bool = True,
        reader: Optional[EvaluationReader] = None,
    ) -> None:
        self.db = db
        self._reader = reader
        self.choose = choose
        self.check_safety = check_safety
        self.reuse_groundings = reuse_groundings
        #: Structure lock for the single-owner discipline: the engine's
        #: graph, union–find, pending pool, handles, and caches belong
        #: to exactly one thread at a time.  Single-threaded callers
        #: may ignore it entirely; the concurrent service wraps every
        #: engine call in ``with engine.lock``.  Entry points *assert*
        #: the discipline — calling in while another thread holds the
        #: lock raises :class:`~repro.errors.ConcurrencyError` instead
        #: of corrupting state.
        self.lock = OwnedLock()
        self._pending: Dict[str, EntangledQuery] = {}
        self._graph: CoordinationGraph = CoordinationGraph.build([])
        self._components = UnionFind()
        self._component_states: Optional[_StateCache] = (
            _StateCache(self._body_relations_of) if reuse_component_states else None
        )
        self._db_stamp = db.data_version()
        self._db_stamps = db.data_versions()
        self._graph_view: Optional[CoordinationGraph] = None
        self._handles: Dict[str, QueryHandle] = {}
        self._final_states: Dict[str, QueryState] = {}
        self._resolution_callbacks: List[ResolutionCallback] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _guard(self) -> None:
        """Assert the single-owner discipline (see :attr:`lock`)."""
        if self.lock.held_elsewhere:
            raise ConcurrencyError(
                "CoordinationEngine accessed while another thread holds "
                "its lock; engines are single-owner — route calls "
                "through the owning service/worker"
            )

    def pending(self) -> Tuple[str, ...]:
        """Names of queries currently waiting to coordinate."""
        return tuple(self._pending)

    def handle(self, name: str) -> Optional[QueryHandle]:
        """The live handle of a *pending* query (``None`` otherwise)."""
        return self._handles.get(name)

    def status(self, name: str) -> Optional[QueryState]:
        """The last known lifecycle state of ``name``.

        ``PENDING`` while the query waits; afterwards the state it
        resolved to.  Name reuse overwrites: after a retract-resubmit
        cycle the *latest* submission's state is reported.  ``None``
        for a name the engine has never resolved or admitted — or whose
        record was evicted (the record is FIFO-bounded at
        :data:`~repro.core.lifecycle.MAX_FINAL_STATES` names so a
        long-lived stream cannot grow it without bound).
        """
        if name in self._pending:
            return QueryState.PENDING
        return self._final_states.get(name)

    def on_resolved(self, callback: ResolutionCallback) -> ResolutionCallback:
        """Register a callback fired whenever any handle resolves.

        Fired synchronously inside the resolving call, after the
        handle's own callbacks.  Returns the callback (decorator
        friendly).
        """
        self._resolution_callbacks.append(callback)
        return callback

    def graph(self) -> CoordinationGraph:
        """A snapshot view of the engine's coordination graph.

        Returns an :meth:`~repro.core.coordination_graph.CoordinationGraph.alias`
        of the engine's private graph, so the returned handle is stable
        with respect to **all** later engine activity — arrivals extend
        past it (it detaches onto its prefix on first read after the
        chain moves), and deletions (``flush``/``retract``/satisfied
        sets) detach it *before* mutating.  Calls between two engine
        mutations share one alias object (they are views of identical
        state), so holding views costs at most one O(graph) detach per
        mutation that actually deletes, and none for pure arrivals
        until the view is next read.
        """
        if not self._graph.same_view(self._graph_view):
            self._graph_view = self._graph.alias()
        return self._graph_view

    # ------------------------------------------------------------------
    # Lifecycle API
    # ------------------------------------------------------------------
    def submit(self, query: EntangledQuery) -> QueryHandle:
        """Add one query, evaluate its connected component, reap results.

        Returns the query's :class:`~repro.core.lifecycle.QueryHandle`;
        when the component produced a coordinating set, its members are
        removed from the pending pool (as the Youtopia loop does) and
        their handles — including possibly this one — resolve to
        ``SATISFIED``.  Raises :class:`~repro.errors.PreconditionError`
        for a duplicate name or an unsafe arrival.  All bookkeeping is
        incremental — see the module docstring for the cost breakdown.
        """
        self._guard()
        handle = self._admit(query)
        self._evaluate_component(query.name, (handle,))
        return handle

    def admit(self, query: EntangledQuery) -> QueryHandle:
        """Admit one query *without* evaluating its component.

        The control-plane half of :meth:`submit`: probe, safety-check,
        and commit the arrival (O(new edges)), returning its pending
        handle.  The caller owes the component an evaluation — the
        concurrent service admits on the router thread and enqueues the
        evaluation (:meth:`evaluate_admitted_phased`) on the shard's
        worker, so later arrivals' routing probes observe the admission
        immediately while the expensive evaluation overlaps.  Raises
        :class:`~repro.errors.PreconditionError` exactly as
        :meth:`submit` does.
        """
        self._guard()
        return self._admit(query)

    def submit_many(
        self, queries: Iterable[EntangledQuery]
    ) -> List[QueryHandle]:
        """Admit a batch, then evaluate each affected component once.

        Admission order is the iteration order, and safety is checked
        per arrival against everything admitted so far (one pass over
        the batch); an arrival that fails admission — duplicate name or
        unsafe — resolves to ``REJECTED`` instead of raising, and the
        batch continues.  Evaluation then runs **once per affected weak
        component**, not once per arrival, so k queries landing in one
        component cost one safety pass and one evaluation.  Unlike
        :meth:`flush` (one global result, one chosen set), every
        affected component may retire its own coordinating set.

        Each admitted handle's ``outcome`` carries its component's
        single evaluation; handles of the same component share the
        :class:`~repro.core.result.CoordinationResult` object.
        """
        self._guard()
        handles: List[QueryHandle] = []
        admitted: List[QueryHandle] = []
        for query in queries:
            try:
                handle = self._admit(query)
            except PreconditionError as error:
                handle = QueryHandle(query)
                self._finish(handle, QueryState.REJECTED, reason=str(error))
            else:
                admitted.append(handle)
            handles.append(handle)

        self.evaluate_admitted(admitted)
        return handles

    def retract(self, name: str) -> QueryHandle:
        """Withdraw one pending query; O(its weak component).

        The query and its incident edges leave the coordination graph
        in place (no full-graph rebuild), its weak component is
        re-split from the surviving incident edges, and every memoized
        component state whose closure touched it is dropped.  The
        handle resolves to ``RETRACTED`` and is returned.  Raises
        :class:`~repro.errors.PreconditionError` when ``name`` is not
        pending.
        """
        self._guard()
        if name not in self._pending:
            raise PreconditionError(f"query {name!r} is not pending")
        component = sorted(self._components.members(name))
        handle = self._handles[name]
        self._delete_and_resplit({name}, component)
        self._finish(handle, QueryState.RETRACTED)
        return handle

    def flush(self) -> CoordinationResult:
        """Evaluate everything still pending as one batch.

        One global run of the SCC algorithm: at most **one** chosen
        coordinating set is retired per call (the selection criterion
        picks across all components), so callers drain by looping until
        ``result.chosen`` is ``None``.
        """
        self._guard()
        db = self._evaluation_db()
        result = scc_coordinate_on_graph(
            db,
            self._graph,
            choose=self.choose,
            reuse_groundings=self.reuse_groundings,
            component_cache=self._component_cache(db),
        )
        if result.chosen is not None:
            satisfied = result.chosen.members
            # A chosen set is a reachable closure, so it lies entirely
            # inside one weak component: the per-arrival retirement
            # path applies unchanged.
            component = sorted(self._components.members(satisfied[0]))
            self._retire(satisfied, component, result)
        return result

    # ------------------------------------------------------------------
    # Shard-migration surface (used by ShardedCoordinationService)
    # ------------------------------------------------------------------
    def incident_pending(self, query: EntangledQuery) -> Tuple[str, ...]:
        """Pending queries a prospective arrival would share an edge with.

        A read-only probe (nothing is admitted); O(candidate pairs) in
        this engine's graph.  The sharded service uses it to detect an
        arrival whose edges span shards.  Raises for a name already
        pending here.
        """
        self._guard()
        probe = self._graph.probe(query)
        names = {end for edge in probe.new_edges for end in edge.endpoints()}
        names.discard(query.name)
        return tuple(sorted(names))

    def release_component(self, name: str) -> List[QueryHandle]:
        """Remove and return ``name``'s weak component, *unresolved*.

        The component's queries leave this engine's graph, pending
        pool, union–find, and caches, but their handles stay
        ``PENDING`` — this is the migration path: the service re-homes
        the returned handles into another shard with :meth:`adopt`.
        O(component).
        """
        self._guard()
        if name not in self._pending:
            raise PreconditionError(f"query {name!r} is not pending")
        component = sorted(self._components.members(name))
        handles = [self._handles.pop(n) for n in component]
        for member in component:
            self._pending.pop(member)
        self._graph.discard_queries(component)
        self._components.discard_component(name)
        self._forget_states(set(component))
        return handles

    def component_of(self, name: str) -> Tuple[str, ...]:
        """The weak component of a pending query, sorted by name."""
        if name not in self._pending:
            raise PreconditionError(f"query {name!r} is not pending")
        return tuple(sorted(self._components.members(name)))

    def components(self) -> List[Tuple[str, ...]]:
        """All weak components of the pending pool, each sorted by name.

        O(pending).  The service's rebalancer enumerates these to pick
        idle components to relocate between shards.
        """
        self._guard()
        return [tuple(sorted(members)) for members in self._components.components()]

    def evaluate_admitted(
        self,
        admitted: Sequence[QueryHandle],
        between: Optional[Callable[[], object]] = None,
    ) -> None:
        """Evaluate the components of freshly admitted handles, once each.

        The batch building block shared by :meth:`submit_many` and the
        sharded service: handles are grouped by weak component and each
        component is evaluated exactly once; every handle of a group
        receives that single evaluation as its ``outcome``.

        ``between`` is the control-lane yield hook: when given, it runs
        after each component's evaluation commits, at a point where the
        engine is fully consistent.  The process worker host uses it to
        service control-pipe frames (routing probes, admissions for
        *other* components) between evaluation steps — the
        component-freeze rule keeps everything a control command may
        touch disjoint from the components of this batch, so the
        byte-identical equivalence argument is unchanged.
        """
        self._guard()
        groups = self._group_by_component(admitted)
        for index, group in enumerate(groups):
            self._evaluate_component(group[0].query, group)
            if between is not None and index + 1 < len(groups):
                between()

    def evaluate_admitted_phased(
        self,
        admitted: Sequence[QueryHandle],
        between: Optional[Callable[[], object]] = None,
    ) -> None:
        """As :meth:`evaluate_admitted`, but evaluation runs unlocked.

        The shard worker's data-plane entry point.  The call acquires
        :attr:`lock` itself, in two short critical sections around the
        expensive middle:

        1. **plan** (locked): group handles by weak component, snapshot
           each component's induced subgraph
           (:meth:`~repro.core.coordination_graph.CoordinationGraph.restricted_to`
           returns an independent core) and stamp-check the state cache;
        2. **run** (unlocked): the SCC algorithm over the snapshots —
           database reads go through the database's reader–writer lock,
           cache writes through the cache's internal mutex;
        3. **commit** (locked): record outcomes and retire chosen sets.

        Byte-identical to :meth:`evaluate_admitted` *provided* the
        components stay frozen between plan and commit — which the
        concurrent service guarantees by never admitting into, migrating,
        retracting from, or flushing over a component with an
        outstanding evaluation (its busy-component drain rule).  The
        payoff is that routing probes from the router thread only ever
        wait out the short locked sections, not the evaluations.

        ``between``, when given, runs in the *unlocked* run phase after
        each component's evaluation — the shard worker passes its
        control-lane drain here, so a queued control job (probe, status)
        waits at most one component evaluation even while this worker
        grinds a long batch.  The hook runs with the engine lock free;
        control jobs take it themselves for their own short reads.
        """
        with self.lock:
            self._guard()
            plans = [
                (group, self._evaluation_plan(group[0].query))
                for group in self._group_by_component(admitted)
            ]
        finished = []
        for group, plan in plans:
            finished.append((group, plan, self._run_evaluation(plan)))
            if between is not None:
                between()
        with self.lock:
            for group, plan, result in finished:
                self._commit_evaluation(plan, result, group)

    def _group_by_component(
        self, admitted: Sequence[QueryHandle]
    ) -> List[Tuple[QueryHandle, ...]]:
        by_root: Dict[object, List[QueryHandle]] = {}
        for handle in admitted:
            root = self._components.find(handle.query)
            by_root.setdefault(root, []).append(handle)
        return [tuple(group) for group in by_root.values()]

    def adopt(self, handles: Sequence[QueryHandle]) -> None:
        """Admit already-pending handles from another engine, silently.

        No evaluation runs and the handles keep their identity (their
        registered callbacks survive the move); the adopting shard
        evaluates on its next ordinary arrival, exactly as a single
        engine would.  Safety is still asserted per arrival — an
        adopted set that was safe in its donor shard and shares no
        edges with this shard's pending pool (the service's routing
        invariant) always passes.
        """
        self._guard()
        for handle in handles:
            self._admit(handle.entangled, handle=handle)

    # ------------------------------------------------------------------
    # Internal bookkeeping
    # ------------------------------------------------------------------
    #: Hard bound on memoized component states; one entry exists per
    #: distinct SCC member-set, so this is only reached by pathological
    #: churn — clearing then is cheap and correctness-neutral.
    _MAX_COMPONENT_STATES = 16384

    def _admit(
        self, query: EntangledQuery, handle: Optional[QueryHandle] = None
    ) -> QueryHandle:
        """Probe, safety-check, and commit one arrival (no evaluation)."""
        if query.name in self._pending:
            raise PreconditionError(f"query {query.name!r} already pending")
        probe = self._graph.probe(query)
        if self.check_safety and not probe.is_safe:
            # The pending set was safe before this arrival (invariant of
            # this guard), so the probe's O(new edges) delta check is
            # equivalent to a whole-graph safety report.
            raise PreconditionError(
                f"arrival {query.name!r} makes the set unsafe "
                f"(unsafe queries: {probe.unsafe_queries()})"
            )
        self._graph = self._graph.with_arrival(probe)
        self._pending[query.name] = query
        self._components.add(query.name)
        for edge in probe.new_edges:
            self._components.union(edge.source, edge.target)
        if handle is None:
            handle = QueryHandle(query)
        self._handles[query.name] = handle
        return handle

    def _evaluate_component(
        self, name: str, admitted: Tuple[QueryHandle, ...]
    ) -> None:
        """Evaluate ``name``'s weak component; retire a chosen set."""
        plan = self._evaluation_plan(name)
        self._commit_evaluation(plan, self._run_evaluation(plan), admitted)

    def _evaluation_plan(self, name: str) -> "_EvaluationPlan":
        """Control-plane half of one component evaluation (own the lock).

        Snapshots everything the unlocked run needs: the component's
        member list, its induced subgraph (an independent core — later
        mutations of the live graph cannot reach it), and the
        stamp-checked state cache."""
        component = tuple(sorted(self._components.members(name)))
        # Acquire the evaluation view first, then stamp-check the cache
        # against *it*: the stamps then describe exactly the data the
        # run phase will read (for a replica this is also lock-free —
        # the authoritative store is only touched when its write token
        # moved; epochs equal row counts, so replica stamps agree with
        # the authoritative stamps they were synced from).
        db = self._evaluation_db()
        return _EvaluationPlan(
            component,
            self._graph.restricted_to(component),
            self._component_cache(db),
            db,
        )

    def _evaluation_db(self) -> Database:
        """The database view evaluations read from (plan-phase acquire).

        Without a backend reader this is the authoritative store
        itself.  With one, the backend hands back its view for this
        shard — for the replicated backend, a private replica lazily
        synced to the authoritative per-relation version stamps, so the
        run phase that follows does no cross-shard locking."""
        if self._reader is None:
            return self.db
        return self._reader.acquire()

    def _run_evaluation(self, plan: "_EvaluationPlan") -> CoordinationResult:
        """Data-plane half: pure computation over the plan's snapshot.

        Touches no engine structure, so the concurrent executor runs it
        outside :attr:`lock`; database access synchronizes through the
        plan database's own reader–writer lock (a no-op for a private
        replica) and cache writes through the cache's mutex."""
        return scc_coordinate_on_graph(
            plan.db,
            plan.restricted,
            choose=self.choose,
            reuse_groundings=self.reuse_groundings,
            component_cache=plan.cache,
        )

    def _commit_evaluation(
        self,
        plan: "_EvaluationPlan",
        result: CoordinationResult,
        admitted: Sequence[QueryHandle],
    ) -> None:
        """Record outcomes and retire the chosen set (own the lock)."""
        satisfied: Tuple[str, ...] = ()
        if result.chosen is not None:
            satisfied = result.chosen.members
        for handle in admitted:
            handle.outcome = ArrivalOutcome(
                handle.query, plan.component, result, satisfied
            )
        if satisfied:
            self._retire(satisfied, plan.component, result)

    def _retire(
        self,
        satisfied: Tuple[str, ...],
        component: Sequence[str],
        result: Optional[CoordinationResult],
    ) -> None:
        """Delete a satisfied set, re-split its component, resolve handles."""
        resolved = [self._handles.pop(n) for n in satisfied if n in self._handles]
        self._delete_and_resplit(set(satisfied), component)
        for handle in resolved:
            self._finish(
                handle,
                QueryState.SATISFIED,
                result=result,
                satisfied_with=tuple(satisfied),
            )

    def _delete_and_resplit(
        self, removed: Set[str], component: Sequence[str]
    ) -> None:
        """Drop ``removed`` (all within one weak ``component``) and
        re-link the component's survivors from their surviving edges —
        the shared O(component) deletion path of retirement and
        retraction."""
        for name in removed:
            self._pending.pop(name, None)
            self._handles.pop(name, None)
        self._graph.discard_queries(tuple(removed))
        # The removed set lives entirely inside one weak component;
        # union-find cannot split, so drop the component and re-link
        # the survivors from their (surviving) incident edges.
        if component:
            survivors = [n for n in component if n not in removed]
            self._components.replace_component(
                component[0],
                survivors,
                (
                    edge.endpoints()
                    for name in survivors
                    for edge in self._graph.out_edges_of(name)
                ),
            )
        self._forget_states(removed)

    def _finish(
        self,
        handle: QueryHandle,
        state: QueryState,
        result: Optional[CoordinationResult] = None,
        satisfied_with: Tuple[str, ...] = (),
        reason: Optional[str] = None,
    ) -> None:
        """Resolve a handle and fire engine-level callbacks."""
        handle._resolve(
            state, resolution=result, satisfied_with=satisfied_with, reason=reason
        )
        # A rejected *duplicate* must not shadow the still-pending
        # query of the same name in the status record.
        if handle.query not in self._pending:
            record_final_state(self._final_states, handle.query, state)
        for callback in self._resolution_callbacks:
            callback(handle)

    def _body_relations_of(self, name: str) -> Optional[FrozenSet[str]]:
        """Body relations of a pending query (``None`` when unknown —
        the state cache then treats the entry as touching everything)."""
        query = self._pending.get(name)
        return None if query is None else query.body_relations()

    def _component_cache(self, db: Database) -> Optional[ComponentCache]:
        """The cross-arrival component cache, stamped against ``db`` —
        the view the upcoming evaluation reads (the authoritative store,
        or the shard replica just synced from it, whose per-relation
        epochs agree with the authoritative stamps by construction).

        The cheap global-sum stamp (:meth:`~repro.db.Database.data_version`)
        gates the common unchanged case; when it moves, the per-relation
        stamps localize the eviction to entries whose component bodies
        touch a mutated relation.  Should the per-relation diff ever
        fail to explain a changed global stamp, the whole cache is
        cleared — the seed behaviour, kept as the safety fallback.
        """
        if self._component_states is None:
            return None
        stamp = db.data_version()
        if stamp != self._db_stamp:
            stamps = db.data_versions()
            changed = {
                relation
                for relation in stamps.keys() | self._db_stamps.keys()
                if stamps.get(relation) != self._db_stamps.get(relation)
            }
            if changed:
                for key in self._component_states.keys_touching_relations(changed):
                    del self._component_states[key]
            else:
                self._component_states.clear()
            self._db_stamp = stamp
            self._db_stamps = stamps
        elif len(self._component_states) > self._MAX_COMPONENT_STATES:
            self._component_states.clear()
        return self._component_states

    def _forget_states(self, names: Set[str]) -> None:
        """Drop memoized component states whose closure touched ``names``.

        Also protects against query-name reuse: a deleted name may
        return with entirely different content, so nothing keyed on it
        may survive.
        """
        if not self._component_states:
            return
        for key in self._component_states.keys_touching(names):
            del self._component_states[key]
