"""An online coordination engine in the style of the Youtopia system.

Section 6.1 describes how the paper's implementation is embedded:
queries arrive one at a time; the system updates the coordination graph,
then calls an evaluation method on the *connected component* the new
query belongs to; when evaluation succeeds, the satisfied queries are
deleted from the system's data structures.

:class:`CoordinationEngine` reproduces that control loop on top of the
SCC Coordination Algorithm, giving the library a realistic online entry
point (and the benchmarks a faithful way to measure per-arrival
processing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..db import Database
from ..errors import PreconditionError
from .coordination_graph import CoordinationGraph
from .properties import safety_report
from .query import EntangledQuery
from .result import CoordinationResult
from .scc_coordination import (
    SelectionCriterion,
    largest_candidate,
    scc_coordinate_on_graph,
)


@dataclass
class ArrivalOutcome:
    """What happened when one query arrived."""

    query: str
    component: Tuple[str, ...]
    result: Optional[CoordinationResult]
    satisfied: Tuple[str, ...] = ()

    @property
    def coordinated(self) -> bool:
        """``True`` when the arrival completed a coordinating set."""
        return bool(self.satisfied)


class CoordinationEngine:
    """Buffers entangled queries and coordinates them on arrival.

    Parameters
    ----------
    db:
        The shared database instance.
    choose:
        Selection criterion forwarded to the SCC algorithm.
    check_safety:
        When ``True`` (default) an arrival that makes the pending set
        unsafe is rejected with
        :class:`~repro.errors.PreconditionError` — the engine's
        evaluation method is the safe-set algorithm.
    """

    def __init__(
        self,
        db: Database,
        choose: SelectionCriterion = largest_candidate,
        check_safety: bool = True,
        reuse_groundings: bool = False,
    ) -> None:
        self.db = db
        self.choose = choose
        self.check_safety = check_safety
        self.reuse_groundings = reuse_groundings
        self._pending: Dict[str, EntangledQuery] = {}
        self._graph: CoordinationGraph = CoordinationGraph.build([])

    # ------------------------------------------------------------------
    def pending(self) -> Tuple[str, ...]:
        """Names of queries currently waiting to coordinate."""
        return tuple(self._pending)

    def graph(self) -> CoordinationGraph:
        """The incrementally-maintained coordination graph."""
        return self._graph

    def submit(self, query: EntangledQuery) -> ArrivalOutcome:
        """Add one query, evaluate its connected component, reap results.

        Returns an :class:`ArrivalOutcome`; when the component produced
        a coordinating set, its members are removed from the pending
        pool (as the Youtopia loop does).  The coordination graph is
        maintained *incrementally*: an arrival only computes its own
        incident edges (the paper's future-work question of Section 7).
        """
        if query.name in self._pending:
            raise PreconditionError(f"query {query.name!r} already pending")

        graph = self._graph.with_query(query)
        if self.check_safety:
            report = safety_report(graph)
            if not report.is_safe:
                raise PreconditionError(
                    f"arrival {query.name!r} makes the set unsafe "
                    f"(unsafe queries: {report.unsafe_queries()})"
                )
        self._pending[query.name] = query
        self._graph = graph

        component = self._weak_component(graph, query.name)
        restricted = graph.restricted_to(component)
        result = scc_coordinate_on_graph(
            self.db,
            restricted,
            choose=self.choose,
            reuse_groundings=self.reuse_groundings,
        )

        satisfied: Tuple[str, ...] = ()
        if result.chosen is not None:
            satisfied = result.chosen.members
            for name in satisfied:
                self._pending.pop(name, None)
            self._graph = self._graph.restricted_to(self._pending.keys())
        return ArrivalOutcome(query.name, tuple(component), result, satisfied)

    def flush(self) -> CoordinationResult:
        """Evaluate everything still pending as one batch."""
        result = scc_coordinate_on_graph(
            self.db,
            self._graph,
            choose=self.choose,
            reuse_groundings=self.reuse_groundings,
        )
        if result.chosen is not None:
            for name in result.chosen.members:
                self._pending.pop(name, None)
            self._graph = self._graph.restricted_to(self._pending.keys())
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _weak_component(graph: CoordinationGraph, start: str) -> List[str]:
        """The weakly connected component of ``start`` in the graph."""
        seen: Set[str] = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            neighbours = graph.graph.successors(node) | graph.graph.predecessors(
                node
            )
            for neighbour in neighbours:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return sorted(seen)
