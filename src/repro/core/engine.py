"""An online coordination engine in the style of the Youtopia system.

Section 6.1 describes how the paper's implementation is embedded:
queries arrive one at a time; the system updates the coordination graph,
then calls an evaluation method on the *connected component* the new
query belongs to; when evaluation succeeds, the satisfied queries are
deleted from the system's data structures.

:class:`CoordinationEngine` reproduces that control loop on top of the
SCC Coordination Algorithm, giving the library a realistic online entry
point (and the benchmarks a faithful way to measure per-arrival
processing).

The arrival path is incremental end-to-end, so an arrival costs
amortized O(its weakly connected component), independent of the total
pending-set size:

* the coordination graph is extended through
  :meth:`~repro.core.coordination_graph.CoordinationGraph.probe` /
  ``with_arrival`` — only the newcomer's incident edges are computed,
  and nothing is copied;
* safety (Definition 2) is re-checked from the probe's head-match
  deltas in O(new edges) — the pending set was safe before the
  arrival, so only the new edges can break it — and a rejected arrival
  leaves no state to roll back;
* the newcomer's weak component comes from a
  :class:`~repro.graphs.UnionFind` over pending queries (amortized
  O(α) per new edge) instead of a BFS over the whole graph;
* per-SCC evaluation states (substitution + grounding) are memoized
  *across arrivals*, keyed by component membership and a database
  version stamp (:meth:`~repro.db.Database.data_version`), so
  re-evaluating a grown component re-issues database queries only for
  new or merged sub-components — the ``reuse_groundings`` fast path
  extended from within one run to the whole arrival stream;
* a satisfied coordinating set is deleted in O(its component) via
  :meth:`~repro.core.coordination_graph.CoordinationGraph.discard_queries`,
  and its weak component is re-split from the surviving incident edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..db import Database
from ..errors import PreconditionError
from ..graphs import UnionFind
from .coordination_graph import CoordinationGraph
from .query import EntangledQuery
from .result import CoordinationResult
from .scc_coordination import (
    ComponentCache,
    SelectionCriterion,
    largest_candidate,
    scc_coordinate_on_graph,
)


class _StateCache(dict):
    """A :data:`ComponentCache` dict with an inverted name→keys index.

    Retirement eviction must drop every entry whose stored closure
    touches a deleted query; a plain dict forces an O(cache) scan per
    retirement, which would break the engine's O(component) bound on
    churn-heavy read-only streams.  The index makes
    :meth:`keys_touching` proportional to the affected entries only.
    The SCC algorithm populates the cache through plain ``dict``
    operations, all of which are intercepted here.
    """

    def __init__(self) -> None:
        super().__init__()
        self._by_name: Dict[str, Set[frozenset]] = {}

    def _unindex(self, key: frozenset, involved: Tuple[str, ...]) -> None:
        for name in involved:
            keys = self._by_name.get(name)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_name[name]

    def __setitem__(self, key, value) -> None:
        old = self.get(key)
        if old is not None:
            self._unindex(key, old[0])
        super().__setitem__(key, value)
        for name in value[0]:
            self._by_name.setdefault(name, set()).add(key)

    def __delitem__(self, key) -> None:
        entry = self.get(key)
        super().__delitem__(key)
        if entry is not None:
            self._unindex(key, entry[0])

    def clear(self) -> None:
        super().clear()
        self._by_name.clear()

    def keys_touching(self, names: Set[str]) -> Set[frozenset]:
        """Keys whose stored closure contains any of ``names``."""
        touched: Set[frozenset] = set()
        for name in names:
            touched |= self._by_name.get(name, set())
        return touched


@dataclass
class ArrivalOutcome:
    """What happened when one query arrived."""

    query: str
    component: Tuple[str, ...]
    result: Optional[CoordinationResult]
    satisfied: Tuple[str, ...] = ()

    @property
    def coordinated(self) -> bool:
        """``True`` when the arrival completed a coordinating set."""
        return bool(self.satisfied)


class CoordinationEngine:
    """Buffers entangled queries and coordinates them on arrival.

    Parameters
    ----------
    db:
        The shared database instance.
    choose:
        Selection criterion forwarded to the SCC algorithm.
    check_safety:
        When ``True`` (default) an arrival that makes the pending set
        unsafe is rejected with
        :class:`~repro.errors.PreconditionError` — the engine's
        evaluation method is the safe-set algorithm.  The rejection is
        an O(new edges) delta check whose correctness rests on the
        invariant that every *earlier* arrival was checked too: decide
        this flag at construction and do not flip it mid-stream (an
        engine that admitted unsafe arrivals while it was ``False``
        will not retroactively detect them).
    reuse_groundings:
        Forwarded to the SCC algorithm: seed each component's combined
        query with its successors' groundings within one evaluation.
    reuse_component_states:
        Memoize per-SCC evaluation states across arrivals (see module
        docstring).  The cache is invalidated automatically when the
        database changes (tracked via
        :meth:`~repro.db.Database.data_version`, which observes every
        insert path) and entries touching a satisfied (deleted) set
        are dropped.  Disable to reproduce the non-memoized evaluation
        cost profile.
    """

    def __init__(
        self,
        db: Database,
        choose: SelectionCriterion = largest_candidate,
        check_safety: bool = True,
        reuse_groundings: bool = False,
        reuse_component_states: bool = True,
    ) -> None:
        self.db = db
        self.choose = choose
        self.check_safety = check_safety
        self.reuse_groundings = reuse_groundings
        self._pending: Dict[str, EntangledQuery] = {}
        self._graph: CoordinationGraph = CoordinationGraph.build([])
        self._components = UnionFind()
        self._component_states: Optional[_StateCache] = (
            _StateCache() if reuse_component_states else None
        )
        self._db_stamp = db.data_version()

    # ------------------------------------------------------------------
    def pending(self) -> Tuple[str, ...]:
        """Names of queries currently waiting to coordinate."""
        return tuple(self._pending)

    def graph(self) -> CoordinationGraph:
        """The engine's coordination graph, as of this call.

        The returned handle is a snapshot with respect to later
        *arrivals*: each ``submit`` extends a fresh graph object, and
        previously returned handles keep their pre-arrival state (they
        detach from the shared core on first read).  Deletions that
        happen without an intervening arrival — a :meth:`flush` that
        satisfies queries — do mutate the handle in place, so take
        ``graph().restricted_to(pending())`` when a fully independent
        copy is needed.
        """
        return self._graph

    def submit(self, query: EntangledQuery) -> ArrivalOutcome:
        """Add one query, evaluate its connected component, reap results.

        Returns an :class:`ArrivalOutcome`; when the component produced
        a coordinating set, its members are removed from the pending
        pool (as the Youtopia loop does).  All bookkeeping is
        incremental — see the module docstring for the cost breakdown.
        """
        if query.name in self._pending:
            raise PreconditionError(f"query {query.name!r} already pending")

        probe = self._graph.probe(query)
        if self.check_safety and not probe.is_safe:
            # The pending set was safe before this arrival (invariant of
            # this guard), so the probe's O(new edges) delta check is
            # equivalent to a whole-graph safety report.
            raise PreconditionError(
                f"arrival {query.name!r} makes the set unsafe "
                f"(unsafe queries: {probe.unsafe_queries()})"
            )
        self._graph = self._graph.with_arrival(probe)
        self._pending[query.name] = query
        self._components.add(query.name)
        for edge in probe.new_edges:
            self._components.union(edge.source, edge.target)

        component = sorted(self._components.members(query.name))
        restricted = self._graph.restricted_to(component)
        result = scc_coordinate_on_graph(
            self.db,
            restricted,
            choose=self.choose,
            reuse_groundings=self.reuse_groundings,
            component_cache=self._component_cache(),
        )

        satisfied: Tuple[str, ...] = ()
        if result.chosen is not None:
            satisfied = result.chosen.members
            self._retire(satisfied, component)
        return ArrivalOutcome(query.name, tuple(component), result, satisfied)

    def flush(self) -> CoordinationResult:
        """Evaluate everything still pending as one batch."""
        result = scc_coordinate_on_graph(
            self.db,
            self._graph,
            choose=self.choose,
            reuse_groundings=self.reuse_groundings,
            component_cache=self._component_cache(),
        )
        if result.chosen is not None:
            satisfied = result.chosen.members
            for name in satisfied:
                self._pending.pop(name, None)
            self._graph.discard_queries(satisfied)
            self._rebuild_components()
            self._forget_states(set(satisfied))
        return result

    # ------------------------------------------------------------------
    # Internal bookkeeping
    # ------------------------------------------------------------------
    #: Hard bound on memoized component states; one entry exists per
    #: distinct SCC member-set, so this is only reached by pathological
    #: churn — clearing then is cheap and correctness-neutral.
    _MAX_COMPONENT_STATES = 16384

    def _component_cache(self) -> Optional[ComponentCache]:
        """The cross-arrival component cache, stamped against the db."""
        if self._component_states is None:
            return None
        stamp = self.db.data_version()
        if stamp != self._db_stamp:
            self._component_states.clear()
            self._db_stamp = stamp
        elif len(self._component_states) > self._MAX_COMPONENT_STATES:
            self._component_states.clear()
        return self._component_states

    def _retire(self, satisfied: Tuple[str, ...], component: List[str]) -> None:
        """Delete a satisfied set and re-split its weak component."""
        satisfied_set = set(satisfied)
        for name in satisfied:
            self._pending.pop(name, None)
        self._graph.discard_queries(satisfied)
        # The satisfied set lives entirely inside the arrival's weak
        # component; union-find cannot split, so drop the component and
        # re-link the survivors from their (surviving) incident edges.
        if component:
            self._components.discard_component(component[0])
        survivors = [n for n in component if n not in satisfied_set]
        for name in survivors:
            self._components.add(name)
        for name in survivors:
            for edge in self._graph.out_edges_of(name):
                self._components.union(edge.source, edge.target)
        self._forget_states(satisfied_set)

    def _rebuild_components(self) -> None:
        """Recompute all weak components (flush-scale bookkeeping)."""
        components = UnionFind()
        for name in self._pending:
            components.add(name)
        for name in self._pending:
            for edge in self._graph.out_edges_of(name):
                components.union(edge.source, edge.target)
        self._components = components

    def _forget_states(self, names: Set[str]) -> None:
        """Drop memoized component states whose closure touched ``names``.

        Also protects against query-name reuse: a deleted name may
        return with entirely different content, so nothing keyed on it
        may survive.
        """
        if not self._component_states:
            return
        for key in self._component_states.keys_touching(names):
            del self._component_states[key]
