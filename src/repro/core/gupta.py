"""The baseline algorithm of Gupta et al. for safe *and* unique sets.

Section 2.3 of the paper summarises the prior algorithm [5] that this
paper's SCC Coordination Algorithm generalises: when a query set is
safe and unique, any coordinating set must contain *all* queries (by
safety, a member's successors are members; by uniqueness the
coordination graph is strongly connected).  The algorithm therefore:

1. traverses the extended coordination graph, computing the most
   general unifier that enforces every postcondition/head constraint;
2. builds one *combined query* from the unified heads and bodies of all
   queries;
3. issues it to the database; a valuation witnesses the coordinating
   set ``S = Q``.

We implement it both as the historical baseline for benchmarks and as
the degenerate case the SCC algorithm must agree with on safe + unique
inputs (asserted by integration tests).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional

from ..db import ConjunctiveQuery, CoordinationStats, Database
from ..errors import PreconditionError
from ..logic import Substitution, Variable, apply_substitution_all
from .coordination_graph import CoordinationGraph
from .properties import is_unique, safety_report
from .query import EntangledQuery
from .result import CoordinatingSet, CoordinationResult
from .semantics import complete_assignment


def gupta_coordinate(
    db: Database,
    queries: Iterable[EntangledQuery],
    check_preconditions: bool = True,
) -> CoordinationResult:
    """Run the Gupta et al. baseline on a safe and unique query set.

    Raises :class:`~repro.errors.PreconditionError` when the set is not
    safe + unique (disable with ``check_preconditions=False`` to observe
    the baseline's behaviour outside its contract, as the paper's
    Example 1 discusses).
    """
    graph = CoordinationGraph.build(queries)
    stats = CoordinationStats(
        graph_nodes=graph.graph.node_count(),
        graph_edges=graph.graph.edge_count(),
    )
    if not graph.queries:
        return CoordinationResult(None, [], stats)
    if check_preconditions:
        report = safety_report(graph)
        if not report.is_safe:
            raise PreconditionError(
                f"query set is not safe (unsafe: {report.unsafe_queries()})"
            )
        if not is_unique(graph):
            raise PreconditionError("query set is not unique")

    if not graph.queries:
        return CoordinationResult(None, [], stats)

    # One pass over the extended edges computes the MGU of all
    # postcondition/head constraints.  For a safe set each postcondition
    # has at most one edge; a postcondition with none is unsatisfiable
    # and the whole set fails (uniqueness: all queries stand together).
    substitution = Substitution()
    for name, query in graph.standardized.items():
        for pi in range(len(query.postconditions)):
            edges = graph.edges_from_postcondition(name, pi)
            if not edges:
                return CoordinationResult(None, [], stats)
            edge = edges[0]
            stats.unifications += 1
            post = graph.post_atom(edge)
            head = graph.head_atom(edge)
            for pt, ht in zip(post.terms, head.terms):
                if not substitution.unify_terms(pt, ht):
                    stats.unification_failures += 1
                    return CoordinationResult(None, [], stats)

    combined_body = []
    for query in graph.standardized.values():
        combined_body.extend(query.body)
    rewritten = apply_substitution_all(combined_body, substitution)
    stats.db_queries += 1
    solution = db.first_solution(ConjunctiveQuery(tuple(rewritten)))
    if solution is None:
        return CoordinationResult(None, [], stats)

    assignment = _recover_assignment(db, graph, substitution, solution)
    if assignment is None:
        return CoordinationResult(None, [], stats)
    found = CoordinatingSet(tuple(graph.queries), assignment)
    return CoordinationResult(found, [found], stats)


def _recover_assignment(
    db: Database,
    graph: CoordinationGraph,
    substitution: Substitution,
    solution: Dict[Variable, Hashable],
) -> Optional[Dict[Variable, Hashable]]:
    """Map standardised variables to values via the MGU + body solution."""
    partial: Dict[Variable, Hashable] = {}
    for query in graph.standardized.values():
        for variable in query.variables():
            representative = substitution.resolve(variable)
            if isinstance(representative, Variable):
                if representative in solution:
                    partial[variable] = solution[representative]
            else:
                partial[variable] = representative.value
    return complete_assignment(db, graph.queries, tuple(graph.queries), partial)
