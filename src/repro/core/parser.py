"""A parser for the paper's textual entangled-query syntax.

Grammar (whitespace-insensitive)::

    program  := statement (';' statement)* ';'?
    statement:= [ident ':'] query
    query    := '{' atoms? '}' atoms ':-' body
    body     := atoms | '∅' | 'empty' | <nothing>
    atoms    := atom (',' atom)*
    atom     := ident '(' terms? ')'
    terms    := term (',' term)*
    term     := variable | constant
    variable := identifier starting with a lowercase letter
    constant := identifier starting with an uppercase letter
              | integer literal
              | single- or double-quoted string

Examples::

    q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich')
    q2: {} R(Chris, y) :- Flights(y, 'Zurich')

The lowercase-variable / capitalised-constant convention follows the
paper's notation (``x1, y2`` are variables; ``Chris``, ``Paris`` are
constants).  Quoted strings and integers are always constants, so any
value can be expressed regardless of capitalisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ParseError
from ..logic import Atom, Constant, Term, Variable
from .query import EntangledQuery

_PUNCT = {"{", "}", "(", ")", ",", ";", ":"}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'ident' | 'int' | 'string' | 'punct' | 'entails' | 'end'
    text: str
    position: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if source.startswith(":-", i):
            tokens.append(_Token("entails", ":-", i))
            i += 2
            continue
        if ch in _PUNCT:
            tokens.append(_Token("punct", ch, i))
            i += 1
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            while j < n and source[j] != quote:
                j += 1
            if j >= n:
                raise ParseError(f"unterminated string literal at position {i}")
            tokens.append(_Token("string", source[i + 1 : j], i))
            i = j + 1
            continue
        if ch == "∅":
            tokens.append(_Token("ident", "∅", i))
            i += 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            j = i + 1
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(_Token("int", source[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_*'"):
                j += 1
            tokens.append(_Token("ident", source[i:j], i))
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r} at position {i}")
    tokens.append(_Token("end", "", n))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str) -> None:
        self._tokens = _tokenize(source)
        self._index = 0

    # -- token helpers --------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r} at position {token.position}, "
                f"found {token.text!r}"
            )
        return self._advance()

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    # -- grammar --------------------------------------------------------
    def parse_term(self) -> Term:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return Constant(int(token.text))
        if token.kind == "string":
            self._advance()
            return Constant(token.text)
        if token.kind == "ident":
            self._advance()
            if token.text[0].islower() or token.text[0] == "_":
                return Variable(token.text)
            return Constant(token.text)
        raise ParseError(
            f"expected a term at position {token.position}, found {token.text!r}"
        )

    def parse_atom(self) -> Atom:
        name = self._expect("ident")
        self._expect("punct", "(")
        terms: List[Term] = []
        if not self._accept("punct", ")"):
            terms.append(self.parse_term())
            while self._accept("punct", ","):
                terms.append(self.parse_term())
            self._expect("punct", ")")
        return Atom(name.text, terms)

    def parse_atom_list(self, stop_kinds: Tuple[str, ...]) -> List[Atom]:
        atoms: List[Atom] = []
        token = self._peek()
        if token.kind in stop_kinds or (token.kind == "punct" and token.text == "}"):
            return atoms
        atoms.append(self.parse_atom())
        while self._accept("punct", ","):
            atoms.append(self.parse_atom())
        return atoms

    def parse_query(self, name: str) -> EntangledQuery:
        self._expect("punct", "{")
        postconditions = self.parse_atom_list(stop_kinds=())
        self._expect("punct", "}")
        head: List[Atom] = []
        if self._peek().kind == "ident":
            head.append(self.parse_atom())
            while self._accept("punct", ","):
                head.append(self.parse_atom())
        self._expect("entails")
        body: List[Atom] = []
        token = self._peek()
        if token.kind == "ident" and token.text in ("∅", "empty"):
            self._advance()
        elif token.kind == "ident":
            body.append(self.parse_atom())
            while self._accept("punct", ","):
                body.append(self.parse_atom())
        return EntangledQuery(name, postconditions, head, body)

    def parse_statement(self, default_name: str) -> EntangledQuery:
        name = default_name
        token = self._peek()
        if token.kind == "ident":
            save = self._index
            candidate = self._advance()
            if self._accept("punct", ":"):
                name = candidate.text
            else:
                self._index = save
        return self.parse_query(name)

    def parse_program(self) -> List[EntangledQuery]:
        queries: List[EntangledQuery] = []
        while self._peek().kind != "end":
            queries.append(self.parse_statement(default_name=f"q{len(queries)}"))
            while self._accept("punct", ";"):
                pass
        return queries


def parse_query(source: str, name: str = "q0") -> EntangledQuery:
    """Parse a single entangled query from text.

    An optional ``name:`` prefix in the text overrides ``name``.
    """
    parser = _Parser(source)
    query = parser.parse_statement(default_name=name)
    parser._accept("punct", ";")
    token = parser._peek()
    if token.kind != "end":
        raise ParseError(
            f"trailing input at position {token.position}: {token.text!r}"
        )
    return query


def parse_queries(source: str) -> List[EntangledQuery]:
    """Parse a ``;``-separated program of entangled queries.

    Unnamed queries receive names ``q0, q1, ...`` by position.
    """
    return _Parser(source).parse_program()
