"""Structural properties of query sets: safety, uniqueness, single-connectedness.

These are Definitions 2, 3 and 6 of the paper; the practical algorithms
use them as preconditions:

* the Gupta et al. baseline requires safety *and* uniqueness;
* the SCC Coordination Algorithm requires safety only;
* the solver of Theorem 3 requires single-connectedness;
* the Consistent Coordination Algorithm requires neither, but requires
  A-consistency (see :mod:`repro.core.consistent`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..graphs import has_unique_simple_paths, is_strongly_connected
from .coordination_graph import CoordinationGraph, unsafe_query_names
from .query import EntangledQuery


@dataclass(frozen=True)
class SafetyReport:
    """Outcome of a safety check.

    ``violations`` lists, for every unsafe postcondition, the
    ``(query name, postcondition index, matching head count)`` triple.
    """

    is_safe: bool
    violations: Tuple[Tuple[str, int, int], ...]

    def unsafe_queries(self) -> Tuple[str, ...]:
        """Names of queries with at least one unsafe postcondition."""
        return unsafe_query_names(self.violations)


def safety_report(graph: CoordinationGraph) -> SafetyReport:
    """Check Definition 2 on a built coordination graph.

    A query is unsafe when one of its postcondition atoms unifies with
    more than one head atom appearing in the set (equivalently: more
    than one arrow emanates from it with the same left-endpoint label in
    the extended coordination graph).
    """
    violations: List[Tuple[str, int, int]] = []
    for name, query in graph.queries.items():
        for pi in range(len(query.postconditions)):
            count = len(graph.edges_from_postcondition(name, pi))
            if count > 1:
                violations.append((name, pi, count))
    return SafetyReport(not violations, tuple(violations))


def is_safe(queries: Iterable[EntangledQuery]) -> bool:
    """Convenience wrapper: build the graph and check safety."""
    return safety_report(CoordinationGraph.build(queries)).is_safe


def is_unique(graph: CoordinationGraph) -> bool:
    """Check Definition 3: the coordination graph is strongly connected.

    Uniqueness is only defined for safe sets; callers should check
    safety first.  A single query with no edges is trivially unique (a
    one-vertex graph is strongly connected).
    """
    return is_strongly_connected(graph.graph)


def is_safe_and_unique(queries: Iterable[EntangledQuery]) -> bool:
    """The combined precondition of the Gupta et al. baseline."""
    graph = CoordinationGraph.build(queries)
    return safety_report(graph).is_safe and is_unique(graph)


def is_single_connected(graph: CoordinationGraph) -> bool:
    """Check Definition 6 on a built coordination graph.

    Two conditions: every query has at most one postcondition atom, and
    the coordination graph has at most one simple path between every
    ordered pair of vertices.
    """
    for query in graph.queries.values():
        if len(query.postconditions) > 1:
            return False
    return has_unique_simple_paths(graph.graph)


def postcondition_fanout(graph: CoordinationGraph) -> Dict[Tuple[str, int], int]:
    """Matching-head count for every postcondition atom in the set.

    Useful for diagnostics: a safe set has every value at most 1; a
    value of 0 means the postcondition can never be satisfied and its
    query will be removed by the SCC algorithm's preprocessing.
    """
    out: Dict[Tuple[str, int], int] = {}
    for name, query in graph.queries.items():
        for pi in range(len(query.postconditions)):
            out[(name, pi)] = len(graph.edges_from_postcondition(name, pi))
    return out
