"""Coordination graphs (Section 2.3 of the paper).

Two structures are defined over a set of entangled queries ``Q``:

* the **extended coordination graph** — a directed multigraph whose
  vertices are the queries, with a labelled edge
  ``((q, a_p), (q', a_h))`` for every postcondition atom ``a_p`` of
  ``q`` that unifies with a head atom ``a_h`` of ``q'``;
* the **coordination graph** — obtained by collapsing parallel edges;
  the edge ``(q, q')`` means "q potentially needs q' to coordinate".

Queries are standardised apart (each into its own namespace) before
unification, so a shared variable name across two queries never creates
a spurious edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..graphs import DiGraph
from ..logic import Atom, Constant, unifiable
from .query import EntangledQuery, check_distinct_names


class _HeadIndex:
    """Index of head atoms for fast unifiability-candidate lookup.

    Building the extended coordination graph naively compares every
    postcondition against every head — quadratic in the query count,
    which Figure 6's 1000-query graphs make painful.  Heads are bucketed
    by (relation, arity); within a bucket, per-position maps record
    which heads carry which constant (or a variable) at that position.
    A postcondition with a constant at some position can only unify with
    heads that have the *same* constant or a variable there, so probing
    the post's most selective constant position yields a near-minimal
    candidate list.  Full unification still validates every candidate.
    """

    __slots__ = ("_buckets",)

    def __init__(self) -> None:
        # (relation, arity) -> {
        #   "all": [(query, head_index, atom)],
        #   "by_pos": [ {const_value: [entry]} per position ],
        #   "var_at": [ [entry] per position ],
        # }
        self._buckets: Dict[tuple, dict] = {}

    def add(self, query: str, head_index: int, atom: Atom) -> None:
        key = (atom.relation, atom.arity)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = {
                "all": [],
                "by_pos": [dict() for _ in range(atom.arity)],
                "var_at": [[] for _ in range(atom.arity)],
            }
            self._buckets[key] = bucket
        entry = (query, head_index, atom)
        bucket["all"].append(entry)
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                bucket["by_pos"][position].setdefault(term.value, []).append(entry)
            else:
                bucket["var_at"][position].append(entry)

    def copy(self) -> "_HeadIndex":
        """A structurally independent copy (buckets are rebuilt shallow)."""
        dup = _HeadIndex()
        for key, bucket in self._buckets.items():
            dup._buckets[key] = {
                "all": list(bucket["all"]),
                "by_pos": [dict((v, list(es)) for v, es in m.items()) for m in bucket["by_pos"]],
                "var_at": [list(es) for es in bucket["var_at"]],
            }
        return dup

    def candidates(self, post: Atom) -> List[tuple]:
        """Entries possibly unifiable with ``post`` (superset, validated
        by the caller with real unification)."""
        bucket = self._buckets.get((post.relation, post.arity))
        if bucket is None:
            return []
        best: Optional[List[tuple]] = None
        for position, term in enumerate(post.terms):
            if not isinstance(term, Constant):
                continue
            matching = bucket["by_pos"][position].get(term.value, [])
            candidate = matching + bucket["var_at"][position]
            if best is None or len(candidate) < len(best):
                best = candidate
        return bucket["all"] if best is None else best


@dataclass(frozen=True, slots=True)
class ExtendedEdge:
    """One labelled edge of the extended coordination graph.

    ``source``/``target`` are query names; ``post_index`` selects the
    postcondition atom of the source and ``head_index`` the head atom of
    the target it unifies with.
    """

    source: str
    post_index: int
    target: str
    head_index: int

    def endpoints(self) -> Tuple[str, str]:
        """The (source, target) query-name pair."""
        return (self.source, self.target)


@dataclass
class CoordinationGraph:
    """The extended and collapsed coordination graphs of a query set.

    Attributes
    ----------
    queries:
        Original queries by name.
    standardized:
        The same queries with variables namespaced by query name; all
        unification in the coordination layers happens on these.
    extended_edges:
        All labelled edges of the extended coordination graph.
    graph:
        The collapsed coordination graph (a :class:`DiGraph` over query
        names).
    """

    queries: Dict[str, EntangledQuery]
    standardized: Dict[str, EntangledQuery]
    extended_edges: List[ExtendedEdge]
    graph: DiGraph
    _out_by_post: Dict[Tuple[str, int], List[ExtendedEdge]] = field(
        default_factory=dict
    )
    _head_index: Optional[_HeadIndex] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        queries: Iterable[EntangledQuery],
        include_self_edges: bool = True,
    ) -> "CoordinationGraph":
        """Build both graphs for a query set.

        ``include_self_edges`` controls whether a query's postcondition
        may be matched against the query's own head atoms.  The paper's
        definition quantifies over all "head atoms that appear in Q",
        which includes the query's own; no example in the paper has a
        self-unifiable pair, so the flag only matters for synthetic
        inputs.
        """
        query_list = check_distinct_names(queries)
        by_name = {q.name: q for q in query_list}
        standardized = {q.name: q.standardized() for q in query_list}

        index = _HeadIndex()
        for name, std in standardized.items():
            for hi, head in enumerate(std.head):
                index.add(name, hi, head)

        edges: List[ExtendedEdge] = []
        graph = DiGraph()
        graph.add_nodes(by_name.keys())
        for source in query_list:
            source_std = standardized[source.name]
            for pi, post in enumerate(source_std.postconditions):
                for target_name, hi, head in index.candidates(post):
                    if not include_self_edges and target_name == source.name:
                        continue
                    if unifiable(post, head):
                        edges.append(
                            ExtendedEdge(source.name, pi, target_name, hi)
                        )
                        graph.add_edge(source.name, target_name)

        built = cls(dict(by_name), standardized, edges, graph, _head_index=index)
        for edge in edges:
            built._out_by_post.setdefault(
                (edge.source, edge.post_index), []
            ).append(edge)
        return built

    def with_query(self, query: EntangledQuery) -> "CoordinationGraph":
        """Incrementally extend the graph with one new query.

        Computes only the edges incident to the newcomer — its
        postconditions against all existing heads (via the head index)
        and every existing postcondition against its heads — so an
        online arrival costs O(candidate pairs), not a full rebuild.
        The receiver is not mutated; a new graph sharing the unchanged
        structure is returned.
        """
        if query.name in self.queries:
            from ..errors import MalformedQueryError

            raise MalformedQueryError(f"duplicate query name {query.name!r}")
        std = query.standardized()

        queries = dict(self.queries)
        queries[query.name] = query
        standardized = dict(self.standardized)
        standardized[query.name] = std
        edges = list(self.extended_edges)
        graph = self.graph.copy()
        graph.add_node(query.name)

        # Extend a private copy of the head index with the new heads
        # (the receiver's index must not see queries it doesn't hold).
        if self._head_index is not None:
            index = self._head_index.copy()
        else:
            index = _HeadIndex()
            for name, existing in self.standardized.items():
                for hi, head in enumerate(existing.head):
                    index.add(name, hi, head)
        new_edges: List[ExtendedEdge] = []
        for hi, head in enumerate(std.head):
            index.add(query.name, hi, head)

        # New query's postconditions against every head (including its own).
        for pi, post in enumerate(std.postconditions):
            for target_name, hi, head in index.candidates(post):
                if unifiable(post, head):
                    new_edges.append(
                        ExtendedEdge(query.name, pi, target_name, hi)
                    )

        # Existing postconditions against the new query's heads.
        for name, existing in self.standardized.items():
            for pi, post in enumerate(existing.postconditions):
                for hi, head in enumerate(std.head):
                    if unifiable(post, head):
                        new_edges.append(
                            ExtendedEdge(name, pi, query.name, hi)
                        )

        for edge in new_edges:
            edges.append(edge)
            graph.add_edge(edge.source, edge.target)

        extended = CoordinationGraph(
            queries, standardized, edges, graph, _head_index=index
        )
        extended._out_by_post = {
            key: list(values) for key, values in self._out_by_post.items()
        }
        for edge in new_edges:
            extended._out_by_post.setdefault(
                (edge.source, edge.post_index), []
            ).append(edge)
        return extended

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def edges_from_postcondition(self, query: str, post_index: int) -> List[ExtendedEdge]:
        """All extended edges emanating from one postcondition atom."""
        return list(self._out_by_post.get((query, post_index), ()))

    def post_atom(self, edge: ExtendedEdge) -> Atom:
        """The (standardised) postcondition atom of an edge."""
        return self.standardized[edge.source].postconditions[edge.post_index]

    def head_atom(self, edge: ExtendedEdge) -> Atom:
        """The (standardised) head atom of an edge."""
        return self.standardized[edge.target].head[edge.head_index]

    def names(self) -> Tuple[str, ...]:
        """All query names."""
        return tuple(self.queries)

    def restricted_to(self, names: Iterable[str]) -> "CoordinationGraph":
        """The coordination graph induced on a subset of queries.

        Rebuilding from scratch would recompute unifications; instead we
        filter the cached edges, which is exactly the induced structure.
        """
        keep = set(names)
        queries = {n: q for n, q in self.queries.items() if n in keep}
        standardized = {n: q for n, q in self.standardized.items() if n in keep}
        edges = [
            e for e in self.extended_edges if e.source in keep and e.target in keep
        ]
        graph = DiGraph()
        graph.add_nodes(queries.keys())
        for edge in edges:
            graph.add_edge(edge.source, edge.target)
        sub = CoordinationGraph(queries, standardized, edges, graph)
        for edge in edges:
            sub._out_by_post.setdefault((edge.source, edge.post_index), []).append(
                edge
            )
        return sub

    def __len__(self) -> int:
        return len(self.queries)
