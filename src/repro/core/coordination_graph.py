"""Coordination graphs (Section 2.3 of the paper), maintained incrementally.

Two structures are defined over a set of entangled queries ``Q``:

* the **extended coordination graph** — a directed multigraph whose
  vertices are the queries, with a labelled edge
  ``((q, a_p), (q', a_h))`` for every postcondition atom ``a_p`` of
  ``q`` that unifies with a head atom ``a_h`` of ``q'``;
* the **coordination graph** — obtained by collapsing parallel edges;
  the edge ``(q, q')`` means "q potentially needs q' to coordinate".

Queries are standardised apart (each into its own namespace) before
unification, so a shared variable name across two queries never creates
a spurious edge.

Online maintenance
------------------
The Youtopia embedding (Section 6.1) feeds arrivals one at a time, so
the representation is built for *extension*, not reconstruction.  All
graphs produced by a chain of :meth:`CoordinationGraph.with_query`
calls share one mutable :class:`_GraphCore`; extending the newest graph
of the chain (the *tip*) appends to the shared core in O(new incident
edges) — no copy of the head index, the edge list, or the adjacency
maps is ever taken on the arrival path.  Older graphs of the chain stay
valid reads: each remembers the (query, edge) prefix of the core that
was current when it was created, and *detaches* onto a private core the
first time it is read or extended after the chain moved on.  The
snapshot guarantee attaches to the *graph object* and its accessors —
the ``queries``/``standardized`` dicts it hands out are live views of
its current state, not frozen copies (see the property docstrings).  A linear
arrival stream therefore pays amortized O(incident edges) per query,
while branching (two extensions of one base) costs one O(base) copy —
exactly the access pattern split between the online engine and
exploratory callers.

Destructive operations (:meth:`discard_queries`, issued by the engine
when a coordinating set is satisfied and leaves the system) mutate the
core in place in O(removed component); any other graph still attached
to the core is detached first, so it keeps its pre-removal snapshot.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from itertools import islice
from typing import Dict, Iterable, List, Optional, Tuple

from ..graphs import DiGraph
from ..logic import Atom, Constant, unifiable
from .query import EntangledQuery, check_distinct_names


class _AtomIndex:
    """Index of atoms for fast unifiability-candidate lookup.

    Matching every postcondition against every head is quadratic in the
    query count, which Figure 6's 1000-query graphs make painful.
    Atoms are bucketed by (relation, arity); within a bucket,
    per-position maps record which atoms carry which constant (or a
    variable) at that position.  Two flat atoms can only unify when, at
    every position, they don't carry *different* constants — so probing
    the query atom's most selective constant position yields a
    near-minimal candidate list.  Full unification still validates
    every candidate.

    The same structure indexes head atoms (probed by postconditions)
    and postcondition atoms (probed by the heads of a new arrival);
    unifiability is symmetric, so one implementation serves both.

    Removal is handled by *tombstoning*: entries of dropped queries stay
    in the buckets and are filtered out by the caller's liveness check;
    the owning :class:`_GraphCore` rebuilds the index once dead entries
    outnumber live ones, keeping the amortized cost O(1) per entry.
    """

    __slots__ = ("_buckets", "live", "dead")

    def __init__(self) -> None:
        # (relation, arity) -> {
        #   "all": [(query, atom_index, atom)],
        #   "by_pos": [ {const_value: [entry]} per position ],
        #   "var_at": [ [entry] per position ],
        # }
        self._buckets: Dict[tuple, dict] = {}
        self.live = 0
        self.dead = 0

    def add(self, query: str, atom_index: int, atom: Atom) -> None:
        key = (atom.relation, atom.arity)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = {
                "all": [],
                "by_pos": [dict() for _ in range(atom.arity)],
                "var_at": [[] for _ in range(atom.arity)],
            }
            self._buckets[key] = bucket
        entry = (query, atom_index, atom)
        bucket["all"].append(entry)
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                bucket["by_pos"][position].setdefault(term.value, []).append(entry)
            else:
                bucket["var_at"][position].append(entry)
        self.live += 1

    def mark_dead(self, count: int) -> None:
        """Account for ``count`` entries whose query was dropped."""
        self.live -= count
        self.dead += count

    def needs_compaction(self) -> bool:
        return self.dead > self.live

    def candidates(self, probe: Atom) -> List[tuple]:
        """Entries possibly unifiable with ``probe`` (superset; the
        caller validates with real unification and a liveness check)."""
        bucket = self._buckets.get((probe.relation, probe.arity))
        if bucket is None:
            return []
        best: Optional[List[tuple]] = None
        for position, term in enumerate(probe.terms):
            if not isinstance(term, Constant):
                continue
            matching = bucket["by_pos"][position].get(term.value, [])
            candidate = matching + bucket["var_at"][position]
            if best is None or len(candidate) < len(best):
                best = candidate
        return bucket["all"] if best is None else best


@dataclass(frozen=True, slots=True)
class ExtendedEdge:
    """One labelled edge of the extended coordination graph.

    ``source``/``target`` are query names; ``post_index`` selects the
    postcondition atom of the source and ``head_index`` the head atom of
    the target it unifies with.
    """

    source: str
    post_index: int
    target: str
    head_index: int

    def endpoints(self) -> Tuple[str, str]:
        """The (source, target) query-name pair."""
        return (self.source, self.target)


def unsafe_query_names(
    violations: Iterable[Tuple[str, int, int]]
) -> Tuple[str, ...]:
    """Names with a violated postcondition, deduplicated in first-seen
    order.  Shared by :class:`ArrivalProbe` and
    :class:`~repro.core.properties.SafetyReport`."""
    return tuple(dict.fromkeys(name for name, _, _ in violations))


@dataclass(frozen=True)
class ArrivalProbe:
    """The incident structure of one prospective arrival.

    Computed by :meth:`CoordinationGraph.probe` *without* touching the
    graph: the newcomer's standardised form, every extended edge it
    would contribute, and the safety violations (Definition 2) those
    edges would introduce — each as a ``(query, post_index, head-match
    count)`` triple, matching :class:`~repro.core.properties.SafetyReport`.
    The engine inspects ``violations`` to reject an unsafe arrival in
    O(new edges) with nothing to roll back, then commits the accepted
    ones with :meth:`CoordinationGraph.with_arrival`.
    """

    query: EntangledQuery
    standardized: EntangledQuery
    new_edges: Tuple[ExtendedEdge, ...]
    violations: Tuple[Tuple[str, int, int], ...]
    # Origin stamp: the core object and its version at probe time.
    # ``with_arrival`` recomputes the probe unless both still match —
    # version numbers alone are per-core counters and may coincide
    # across unrelated graphs.
    base_version: int
    base_core: object

    @property
    def is_safe(self) -> bool:
        """``True`` when committing keeps the pending set safe."""
        return not self.violations

    def unsafe_queries(self) -> Tuple[str, ...]:
        """Names with at least one violated postcondition (first-seen order)."""
        return unsafe_query_names(self.violations)


class _GraphCore:
    """The shared mutable backing store of a chain of coordination graphs.

    Holds the authoritative dictionaries, the append-only edge list,
    the collapsed digraph, both atom indexes, per-node incident-edge
    adjacency, and the per-postcondition head-match counts.  ``version``
    increments on every mutation; a :class:`CoordinationGraph` whose
    version matches is the *tip* and reads the core directly.
    """

    __slots__ = (
        "queries",
        "standardized",
        "edges",
        "edge_pos",
        "dead_edges",
        "digraph",
        "out_by_post",
        "out_edges",
        "in_edges",
        "fanout",
        "head_index",
        "post_index",
        "version",
        "attached",
    )

    def __init__(self) -> None:
        self.queries: Dict[str, EntangledQuery] = {}
        self.standardized: Dict[str, EntangledQuery] = {}
        # Append-only; removal tombstones slots to None so the prefixes
        # remembered by attached graphs stay addressable.
        self.edges: List[Optional[ExtendedEdge]] = []
        self.edge_pos: Dict[ExtendedEdge, int] = {}
        self.dead_edges = 0
        self.digraph = DiGraph()
        self.out_by_post: Dict[Tuple[str, int], List[ExtendedEdge]] = {}
        self.out_edges: Dict[str, List[ExtendedEdge]] = {}
        self.in_edges: Dict[str, List[ExtendedEdge]] = {}
        # (query, post_index) -> live head-match count; safety means
        # every value is at most 1 (Definition 2).
        self.fanout: Dict[Tuple[str, int], int] = {}
        # Atom indexes are built lazily on first probe: restricted /
        # detached graphs are evaluated (preprocess, condensation,
        # unification) but never probed, so they must not pay index
        # construction.  Once built, extensions maintain them
        # incrementally; discard sets them back to None when tombstones
        # dominate (cheaper than compacting eagerly).
        self.head_index: Optional[_AtomIndex] = None
        self.post_index: Optional[_AtomIndex] = None
        self.version = 0
        self.attached: "weakref.WeakSet[CoordinationGraph]" = weakref.WeakSet()

    # ------------------------------------------------------------------
    @classmethod
    def from_parts(
        cls,
        queries: Dict[str, EntangledQuery],
        standardized: Dict[str, EntangledQuery],
        edges: Iterable[ExtendedEdge],
    ) -> "_GraphCore":
        """Build a consistent core from known queries and edges."""
        core = cls()
        core.queries = queries
        core.standardized = standardized
        core.digraph.add_nodes(queries.keys())
        for name in standardized:
            core.out_edges[name] = []
            core.in_edges[name] = []
        for edge in edges:
            core._append_edge(edge)
        return core

    def ensure_indexes(self) -> None:
        """Build the head/postcondition atom indexes if absent."""
        if self.head_index is not None:
            return
        head_index = _AtomIndex()
        post_index = _AtomIndex()
        for name, std in self.standardized.items():
            for hi, head in enumerate(std.head):
                head_index.add(name, hi, head)
            for pi, post in enumerate(std.postconditions):
                post_index.add(name, pi, post)
        self.head_index = head_index
        self.post_index = post_index

    def _append_edge(self, edge: ExtendedEdge) -> None:
        self.edge_pos[edge] = len(self.edges)
        self.edges.append(edge)
        self.out_by_post.setdefault((edge.source, edge.post_index), []).append(edge)
        self.out_edges.setdefault(edge.source, []).append(edge)
        self.in_edges.setdefault(edge.target, []).append(edge)
        key = (edge.source, edge.post_index)
        self.fanout[key] = self.fanout.get(key, 0) + 1
        self.digraph.add_edge(edge.source, edge.target)

    def is_current_atom(self, entry: tuple, heads: bool) -> bool:
        """Liveness check for a (query, atom_index, atom) index entry.

        Guards against both dropped queries and name reuse (a query may
        leave the system and an unrelated query with the same name may
        arrive later): the entry is live only if the indexed atom *is*
        (identity) the query's current atom.
        """
        name, atom_index, atom = entry
        std = self.standardized.get(name)
        if std is None:
            return False
        atoms = std.head if heads else std.postconditions
        return atom_index < len(atoms) and atoms[atom_index] is atom

    def compact_indexes_if_needed(self) -> None:
        if self.head_index is None:
            return
        if self.head_index.needs_compaction() or self.post_index.needs_compaction():
            # Drop rather than rebuild: the next probe rebuilds lazily,
            # and evaluation-only graphs never pay for it.
            self.head_index = None
            self.post_index = None

    def compact_edges_if_needed(self) -> None:
        if self.dead_edges <= len(self.edges) - self.dead_edges:
            return
        self.edges = [e for e in self.edges if e is not None]
        self.edge_pos = {e: i for i, e in enumerate(self.edges)}
        self.dead_edges = 0


class CoordinationGraph:
    """The extended and collapsed coordination graphs of a query set.

    A lightweight view over a shared :class:`_GraphCore` (see the
    module docstring for the sharing discipline).  The public surface —
    ``queries``, ``standardized``, ``extended_edges``, ``graph``, and
    the lookup methods — is unchanged from the batch-built
    representation; all properties are cheap for the newest graph of an
    extension chain.
    """

    __slots__ = ("_core", "_version", "_n_queries", "_n_edges", "__weakref__")

    def __init__(self, core: _GraphCore, version: int) -> None:
        self._core = core
        self._version = version
        self._n_queries = len(core.queries)
        self._n_edges = len(core.edges)
        core.attached.add(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        queries: Iterable[EntangledQuery],
        include_self_edges: bool = True,
    ) -> "CoordinationGraph":
        """Build both graphs for a query set.

        ``include_self_edges`` controls whether a query's postcondition
        may be matched against the query's own head atoms.  The paper's
        definition quantifies over all "head atoms that appear in Q",
        which includes the query's own; no example in the paper has a
        self-unifiable pair, so the flag only matters for synthetic
        inputs.
        """
        query_list = check_distinct_names(queries)
        graph = cls(_GraphCore(), 0)
        for query in query_list:
            probe = graph._probe(query, include_self=include_self_edges)
            graph = graph.with_arrival(probe)
        return graph

    def probe(self, query: EntangledQuery) -> ArrivalProbe:
        """The edges and safety impact of one prospective arrival.

        O(candidate pairs) via the head/postcondition indexes; the
        receiver is not modified, so a rejected arrival needs no
        rollback.  Raises for a duplicate name.
        """
        return self._probe(query, include_self=True)

    def _probe(self, query: EntangledQuery, include_self: bool) -> ArrivalProbe:
        core = self._view()
        if query.name in core.queries:
            from ..errors import MalformedQueryError

            raise MalformedQueryError(f"duplicate query name {query.name!r}")
        core.ensure_indexes()
        std = query.standardized()
        new_edges: List[ExtendedEdge] = []

        # The newcomer's postconditions against every existing head,
        # plus (optionally) its own heads — which are not yet indexed.
        for pi, post in enumerate(std.postconditions):
            for entry in core.head_index.candidates(post):
                target_name, hi, head = entry
                if not core.is_current_atom(entry, heads=True):
                    continue
                if unifiable(post, head):
                    new_edges.append(ExtendedEdge(query.name, pi, target_name, hi))
            if include_self:
                for hi, head in enumerate(std.head):
                    if unifiable(post, head):
                        new_edges.append(ExtendedEdge(query.name, pi, query.name, hi))

        # Existing postconditions against the newcomer's heads.
        for hi, head in enumerate(std.head):
            for entry in core.post_index.candidates(head):
                source_name, pi, post = entry
                if not core.is_current_atom(entry, heads=False):
                    continue
                if unifiable(post, head):
                    new_edges.append(ExtendedEdge(source_name, pi, query.name, hi))

        # Safety delta (Definition 2): the set stays safe iff no
        # postcondition — old or new — ends up with more than one
        # matching head.  Only the new edges can raise a count.
        delta: Dict[Tuple[str, int], int] = {}
        for edge in new_edges:
            key = (edge.source, edge.post_index)
            delta[key] = delta.get(key, 0) + 1
        violations = tuple(
            (name, pi, total)
            for (name, pi), added in sorted(delta.items())
            if (total := core.fanout.get((name, pi), 0) + added) > 1
        )
        return ArrivalProbe(
            query, std, tuple(new_edges), violations, self._version, core
        )

    def with_arrival(self, probe: ArrivalProbe) -> "CoordinationGraph":
        """Commit a probed arrival; returns the extended graph.

        On the tip of an extension chain this appends to the shared
        core in O(new edges); the receiver keeps answering reads with
        its pre-arrival state.  A probe taken from a different graph
        state is recomputed (probes are cheap and side-effect free).
        """
        core = self._view()
        if probe.base_core is not core or probe.base_version != self._version:
            probe = self.probe(probe.query)
            core = self._core
        name = probe.query.name
        core.queries[name] = probe.query
        core.standardized[name] = probe.standardized
        core.digraph.add_node(name)
        core.out_edges.setdefault(name, [])
        core.in_edges.setdefault(name, [])
        if core.head_index is not None:
            for hi, head in enumerate(probe.standardized.head):
                core.head_index.add(name, hi, head)
            for pi, post in enumerate(probe.standardized.postconditions):
                core.post_index.add(name, pi, post)
        for edge in probe.new_edges:
            core._append_edge(edge)
        core.version += 1
        return CoordinationGraph(core, core.version)

    def with_query(self, query: EntangledQuery) -> "CoordinationGraph":
        """Incrementally extend the graph with one new query.

        Computes only the edges incident to the newcomer — its
        postconditions against all existing heads (via the head index)
        and every existing postcondition against its heads (via the
        postcondition index) — so an online arrival costs O(candidate
        pairs), not a full rebuild.  The receiver keeps its own state;
        structure is shared with the result (copied lazily only if the
        receiver is read or extended again).
        """
        return self.with_arrival(self.probe(query))

    # ------------------------------------------------------------------
    # Destructive mutation (the engine's satisfied-set removal path)
    # ------------------------------------------------------------------
    def discard_queries(self, names: Iterable[str]) -> None:
        """Remove queries and their incident edges, **in place**.

        O(removed queries + their incident edges), amortized over index
        compaction.  This is the mutable fast path for the online
        engine, which deletes a whole satisfied component per arrival;
        other graphs attached to the shared core are detached first and
        keep their pre-removal snapshots.  Unknown names are ignored.
        """
        core = self._view()
        dropped = [n for n in names if n in core.queries]
        if not dropped:
            return
        self._detach_others(core)
        dropped_set = set(dropped)
        for name in dropped:
            std = core.standardized[name]
            # Kill incident edges.  Out-edges of the dropped query also
            # release their (name, post_index) fanout bookkeeping; live
            # in-edges from surviving sources decrement their post's
            # head-match count.
            for edge in core.out_edges.pop(name, ()):
                self._kill_edge(core, edge)
                if edge.target not in dropped_set and edge.target != name:
                    core.in_edges[edge.target].remove(edge)
            for edge in core.in_edges.pop(name, ()):
                if edge.source in dropped_set or edge.source == name:
                    continue  # killed (or to be killed) via the source side
                self._kill_edge(core, edge)
                core.out_edges[edge.source].remove(edge)
            for pi in range(len(std.postconditions)):
                core.fanout.pop((name, pi), None)
                core.out_by_post.pop((name, pi), None)
            if core.head_index is not None:
                core.head_index.mark_dead(len(std.head))
                core.post_index.mark_dead(len(std.postconditions))
            core.digraph.remove_node(name)
            del core.queries[name]
            del core.standardized[name]
        core.compact_edges_if_needed()
        core.compact_indexes_if_needed()
        core.version += 1
        self._version = core.version
        self._n_queries = len(core.queries)
        self._n_edges = len(core.edges)

    @staticmethod
    def _kill_edge(core: _GraphCore, edge: ExtendedEdge) -> None:
        position = core.edge_pos.pop(edge)
        core.edges[position] = None
        core.dead_edges += 1
        key = (edge.source, edge.post_index)
        remaining = core.fanout.get(key)
        if remaining is not None:
            if remaining <= 1:
                core.fanout.pop(key, None)
                core.out_by_post.pop(key, None)
            else:
                core.fanout[key] = remaining - 1
                core.out_by_post[key].remove(edge)

    # ------------------------------------------------------------------
    # View maintenance
    # ------------------------------------------------------------------
    def _view(self) -> _GraphCore:
        """The core, detaching first if the chain moved past us."""
        if self._version != self._core.version:
            self._detach()
        return self._core

    def _detach(self) -> None:
        """Rebuild a private core from this graph's recorded prefix.

        Valid because the shared core is append-only between
        destructive operations, and destructive operations detach all
        bystanders before mutating.
        """
        old = self._core
        old.attached.discard(self)
        queries = dict(islice(old.queries.items(), self._n_queries))
        standardized = dict(islice(old.standardized.items(), self._n_queries))
        edges = [e for e in old.edges[: self._n_edges] if e is not None]
        core = _GraphCore.from_parts(queries, standardized, edges)
        self._core = core
        self._version = core.version
        self._n_queries = len(queries)
        self._n_edges = len(core.edges)
        core.attached.add(self)

    def _detach_others(self, core: _GraphCore) -> None:
        for graph in list(core.attached):
            if graph is not self:
                graph._detach()

    def alias(self) -> "CoordinationGraph":
        """A distinct graph object viewing the same state, O(1).

        The alias shares the core until either side mutates: an
        extension leaves the alias on its pre-extension prefix (it
        detaches on first read, as any bystander of the chain does),
        and a destructive :meth:`discard_queries` on the original
        detaches the alias *first*, so it keeps its pre-removal
        snapshot.  This is how the engine hands out ``graph()`` views
        that stay stable across arrivals *and* deletions while its own
        private handle keeps the mutable fast path.
        """
        return CoordinationGraph(self._view(), self._version)

    def same_view(self, other: Optional["CoordinationGraph"]) -> bool:
        """``True`` when ``other`` currently reads the same graph state
        (same core, same version) — i.e. an alias of the receiver that
        has not been left behind by a mutation."""
        return (
            other is not None
            and other._core is self._core
            and other._version == self._version
        )

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------
    @property
    def queries(self) -> Dict[str, EntangledQuery]:
        """Original queries by name.

        A read-only *live view*: it reflects this graph's state at each
        access, so hold the graph object — not this dict — across
        arrivals (snapshot with ``dict(graph.queries)`` if needed).
        """
        return self._view().queries

    @property
    def standardized(self) -> Dict[str, EntangledQuery]:
        """The same queries with variables namespaced by query name; all
        unification in the coordination layers happens on these.  A
        read-only live view, like :attr:`queries`."""
        return self._view().standardized

    @property
    def extended_edges(self) -> List[ExtendedEdge]:
        """All labelled edges of the extended coordination graph (a
        fresh list on every access; safe to hold)."""
        core = self._view()
        return [e for e in core.edges if e is not None]

    @property
    def graph(self) -> DiGraph:
        """The collapsed coordination graph over query names."""
        return self._view().digraph

    def edges_from_postcondition(self, query: str, post_index: int) -> List[ExtendedEdge]:
        """All extended edges emanating from one postcondition atom."""
        return list(self._view().out_by_post.get((query, post_index), ()))

    def out_edges_of(self, query: str) -> Tuple[ExtendedEdge, ...]:
        """Extended edges whose source is ``query`` (incident adjacency)."""
        return tuple(self._view().out_edges.get(query, ()))

    def in_edges_of(self, query: str) -> Tuple[ExtendedEdge, ...]:
        """Extended edges whose target is ``query`` (incident adjacency)."""
        return tuple(self._view().in_edges.get(query, ()))

    def post_atom(self, edge: ExtendedEdge) -> Atom:
        """The (standardised) postcondition atom of an edge."""
        return self._view().standardized[edge.source].postconditions[edge.post_index]

    def head_atom(self, edge: ExtendedEdge) -> Atom:
        """The (standardised) head atom of an edge."""
        return self._view().standardized[edge.target].head[edge.head_index]

    def names(self) -> Tuple[str, ...]:
        """All query names."""
        return tuple(self._view().queries)

    def restricted_to(self, names: Iterable[str]) -> "CoordinationGraph":
        """The coordination graph induced on a subset of queries.

        Uses the per-node incident-edge adjacency, so the cost is
        O(kept queries + their incident edges) — for the engine's
        per-arrival call on one weakly connected component that is
        O(component), independent of the total pending-set size.
        Unknown names are ignored.  The result owns an independent core.
        """
        core = self._view()
        keep = [n for n in dict.fromkeys(names) if n in core.queries]
        keep_set = set(keep)
        queries = {n: core.queries[n] for n in keep}
        standardized = {n: core.standardized[n] for n in keep}
        edges = [
            edge
            for n in keep
            for edge in core.out_edges.get(n, ())
            if edge.target in keep_set
        ]
        sub = _GraphCore.from_parts(queries, standardized, edges)
        return CoordinationGraph(sub, sub.version)

    def safety_violations(self) -> Tuple[Tuple[str, int, int], ...]:
        """Postconditions with more than one matching head, from the
        incrementally maintained counts (O(violations), not O(posts))."""
        core = self._view()
        return tuple(
            (name, pi, count)
            for (name, pi), count in core.fanout.items()
            if count > 1
        )

    def __len__(self) -> int:
        return len(self._view().queries)
