"""Lowering consistent queries to entangled queries, and Definitions 7–9.

Section 5 of the paper presents the general entangled-query form of an
A-consistent request::

    {R(y1, f1), R(y2, c2), ..., R(yk, ck)}
        R(x, User) :- S(x, a^x_1, ..., a^x_d), F(User, f1),
                      ⋀_i S(yi, a^i_1, ..., a^i_d)

This module converts between that form and the structured
:class:`~repro.core.consistent.ConsistentQuery` model:

* :func:`to_entangled` — lower a structured query to the raw syntax
  (used to cross-validate the Consistent Coordination Algorithm against
  the brute-force Definition-1 oracle);
* :func:`classify_attributes` — check Definitions 7 (A-coordinating),
  8 (A-non-coordinating) and 9 (A-consistent) on a lowered query;
* :func:`outcome_witness` — turn a
  :class:`~repro.core.consistent.ConsistentOutcome` into a Definition-1
  assignment over the lowered queries, so the algorithm's answers can be
  verified mechanically.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..db import Database
from ..errors import MalformedQueryError
from ..logic import Atom, Constant, Variable
from .consistent import (
    ConsistentOutcome,
    ConsistentQuery,
    ConsistentSetup,
    FriendSlot,
    NamedPartner,
)
from .query import EntangledQuery

ANSWER_RELATION = "R"


def to_entangled(
    query: ConsistentQuery,
    setup: ConsistentSetup,
    db: Database,
    answer_relation: str = ANSWER_RELATION,
) -> EntangledQuery:
    """Lower a :class:`ConsistentQuery` to the paper's general form.

    Friend slots with ``count > 1`` are rejected: as the paper observes,
    "coordinate with k friends" is *not expressible* in entangled-query
    syntax (Discussion subsection of Section 5).
    """
    table_schema = db.schema.get(setup.table)
    key = table_schema.key
    if key is None:
        raise MalformedQueryError(f"table {setup.table!r} must declare a key")
    constraints = query.constraint_map()

    own_key = Variable("x")
    shared: Dict[str, object] = {}
    for attribute in setup.coordination_attributes:
        if attribute in constraints:
            shared[attribute] = Constant(constraints[attribute])
        else:
            shared[attribute] = Variable(f"v_{attribute}")

    def own_term(attribute: str) -> object:
        if attribute == key:
            return own_key
        if attribute in setup.coordination_attributes:
            return shared[attribute]
        if attribute in constraints:
            return Constant(constraints[attribute])
        return Variable(f"own_{attribute}")

    body: List[Atom] = [
        Atom(setup.table, [own_term(a) for a in table_schema.attributes])
    ]
    postconditions: List[Atom] = []

    def partner_atom(index: int, key_term: object) -> Atom:
        terms: List[object] = []
        for attribute in table_schema.attributes:
            if attribute == key:
                terms.append(key_term)
            elif attribute in setup.coordination_attributes:
                terms.append(shared[attribute])
            else:
                terms.append(Variable(f"p{index}_{attribute}"))
        return Atom(setup.table, terms)

    for index, partner in enumerate(query.partners):
        if isinstance(partner, FriendSlot):
            if partner.count > 1:
                raise MalformedQueryError(
                    "k-friend coordination is not expressible in entangled "
                    "query syntax (paper, Section 5 Discussion)"
                )
            friend_var = Variable(f"f{index}")
            partner_key = Variable(f"y{index}")
            body.append(Atom(partner.relation, [Constant(query.user), friend_var]))
            body.append(partner_atom(index, partner_key))
            postconditions.append(
                Atom(answer_relation, [partner_key, friend_var])
            )
        else:
            assert isinstance(partner, NamedPartner)
            partner_key = own_key if partner.same_tuple else Variable(f"y{index}")
            if not partner.same_tuple:
                body.append(partner_atom(index, partner_key))
            postconditions.append(
                Atom(answer_relation, [partner_key, Constant(partner.user)])
            )

    head = [Atom(answer_relation, [own_key, Constant(query.user)])]
    return EntangledQuery(query.user, postconditions, head, body)


def lower_all(
    queries: Sequence[ConsistentQuery],
    setup: ConsistentSetup,
    db: Database,
) -> List[EntangledQuery]:
    """Lower a whole batch of consistent queries."""
    return [to_entangled(q, setup, db) for q in queries]


# ---------------------------------------------------------------------------
# Definitions 7–9 on the lowered form
# ---------------------------------------------------------------------------
def classify_attributes(
    query: EntangledQuery,
    setup: ConsistentSetup,
    db: Database,
) -> Dict[str, str]:
    """Classify each attribute of ``S`` as coordinating / non-coordinating.

    Returns a map attribute → ``"coordinating"`` | ``"non-coordinating"``
    | ``"other"`` following Definitions 7 and 8: an attribute is
    *coordinating* for the query when the user's own ``S``-atom and all
    partner ``S``-atoms carry the **same** constant or variable in that
    position; *non-coordinating* when the partner positions are pairwise
    distinct variables also distinct from the user's term (unless the
    user pinned a private constant).
    """
    table_schema = db.schema.get(setup.table)
    s_atoms = [a for a in query.body if a.relation == setup.table]
    if not s_atoms:
        raise MalformedQueryError("query has no atom over the coordination table")
    own, partners = s_atoms[0], s_atoms[1:]

    out: Dict[str, str] = {}
    for position, attribute in enumerate(table_schema.attributes):
        if attribute == table_schema.key:
            out[attribute] = "other"
            continue
        own_term = own.terms[position]
        partner_terms = [p.terms[position] for p in partners]
        if all(t == own_term for t in partner_terms):
            out[attribute] = "coordinating"
            continue
        distinct = len(set(partner_terms)) == len(partner_terms)
        all_vars = all(isinstance(t, Variable) for t in partner_terms)
        own_clear = own_term not in partner_terms
        if distinct and all_vars and own_clear:
            out[attribute] = "non-coordinating"
        else:
            out[attribute] = "other"
    return out


def is_a_consistent(
    query: EntangledQuery,
    setup: ConsistentSetup,
    db: Database,
) -> bool:
    """Definition 9: A-coordinating on ``A``, non-coordinating elsewhere.

    A query with no partner ``S``-atoms is vacuously consistent.
    """
    table_schema = db.schema.get(setup.table)
    classes = classify_attributes(query, setup, db)
    for attribute in table_schema.attributes:
        if attribute == table_schema.key:
            continue
        expected = (
            "coordinating"
            if attribute in setup.coordination_attributes
            else "non-coordinating"
        )
        actual = classes[attribute]
        if actual == "coordinating" and expected == "non-coordinating":
            # A lone partner atom can be simultaneously "same term" and
            # "distinct variables" only if there are no partners at all;
            # with zero partners both checks pass vacuously.
            if len([a for a in query.body if a.relation == setup.table]) > 1:
                return False
            continue
        if actual != expected:
            return False
    return True


# ---------------------------------------------------------------------------
# Witness extraction
# ---------------------------------------------------------------------------
def outcome_witness(
    outcome: ConsistentOutcome,
    queries: Sequence[ConsistentQuery],
    setup: ConsistentSetup,
    db: Database,
) -> Optional[Dict[Variable, Hashable]]:
    """Build a Definition-1 assignment witnessing a consistent outcome.

    Maps the standardised variables of each lowered query of the
    coordinating set: the user's key variable to the selected tuple key,
    coordination variables to the agreed value, partner key variables to
    the partner's selected key, friend variables to the witnessing
    friend, and the private attribute variables to the attributes of the
    actually-selected tuples.  Returns ``None`` when a required tuple
    cannot be found (which indicates an algorithm bug; tests assert this
    never happens).
    """
    table_schema = db.schema.get(setup.table)
    key_position = table_schema.key_position
    by_user = {q.user: q for q in queries}
    members = set(outcome.selections)

    def tuple_for_key(key_value: Hashable) -> Optional[Tuple[Hashable, ...]]:
        for row in db.relation(setup.table).match({key_position: key_value}):
            return row
        return None

    assignment: Dict[Variable, Hashable] = {}
    for user in members:
        query = by_user[user]
        namespace = user
        own_row = tuple_for_key(outcome.selections[user])
        if own_row is None:
            return None
        assignment[Variable("x", namespace)] = outcome.selections[user]
        for position, attribute in enumerate(table_schema.attributes):
            if attribute == table_schema.key:
                continue
            if attribute in setup.coordination_attributes:
                index = setup.coordination_attributes.index(attribute)
                if attribute not in query.constraint_map():
                    assignment[Variable(f"v_{attribute}", namespace)] = (
                        outcome.value[index]
                    )
            elif attribute not in query.constraint_map():
                assignment[Variable(f"own_{attribute}", namespace)] = own_row[
                    position
                ]

        witness_iter = iter(outcome.friend_witnesses.get(user, ()))
        for index, partner in enumerate(query.partners):
            if isinstance(partner, FriendSlot):
                friend = next(witness_iter, None)
                if friend is None or friend not in members:
                    return None
                partner_user = friend
                assignment[Variable(f"f{index}", namespace)] = friend
            else:
                partner_user = partner.user
                if partner.same_tuple:
                    # y_i = x: no separate variables to assign.
                    continue
            partner_key = outcome.selections.get(partner_user)
            if partner_key is None:
                return None
            partner_row = tuple_for_key(partner_key)
            if partner_row is None:
                return None
            assignment[Variable(f"y{index}", namespace)] = partner_key
            for position, attribute in enumerate(table_schema.attributes):
                if attribute == table_schema.key:
                    continue
                if attribute not in setup.coordination_attributes:
                    assignment[Variable(f"p{index}_{attribute}", namespace)] = (
                        partner_row[position]
                    )
    return assignment
