"""Result types returned by the coordination algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..db import CoordinationStats
from ..logic import GroundAtom, Variable


@dataclass(frozen=True)
class CoordinatingSet:
    """A coordinating set: query names plus a witnessing assignment.

    The assignment maps *standardised* variables (namespaced by query
    name) to database values, covering every variable of every included
    query, as Definition 1 requires.
    """

    members: Tuple[str, ...]
    assignment: Dict[Variable, Hashable]

    @property
    def size(self) -> int:
        """Number of queries in the set."""
        return len(self.members)

    def member_set(self) -> frozenset:
        """The members as a frozenset (order-insensitive comparisons)."""
        return frozenset(self.members)

    def value_of(self, query: str, variable_name: str) -> Hashable:
        """The value assigned to a given query's variable.

        Variables are looked up in the query's namespace, so callers use
        the variable names as written in the original query.
        """
        return self.assignment[Variable(variable_name, query)]

    def __contains__(self, query_name: str) -> bool:
        return query_name in self.member_set()

    def __len__(self) -> int:
        return len(self.members)

    def __str__(self) -> str:
        return "{" + ", ".join(sorted(self.members)) + "}"


@dataclass
class CoordinationResult:
    """Outcome of a coordination algorithm run.

    Attributes
    ----------
    chosen:
        The selected coordinating set (by default a maximum-size one
        among the candidates the algorithm is able to see), or ``None``
        when no coordinating set exists.
    candidates:
        Every candidate coordinating set the algorithm verified against
        the database (the paper's algorithms record one per successful
        component / per candidate value).
    stats:
        Machine-independent cost counters for the run.
    """

    chosen: Optional[CoordinatingSet]
    candidates: List[CoordinatingSet] = field(default_factory=list)
    stats: CoordinationStats = field(default_factory=CoordinationStats)

    @property
    def found(self) -> bool:
        """``True`` when a coordinating set was found."""
        return self.chosen is not None

    def sizes(self) -> List[int]:
        """Sizes of all candidate sets (for reporting)."""
        return [c.size for c in self.candidates]


@dataclass(frozen=True)
class GroundedView:
    """Grounded postconditions and heads of a coordinating set.

    Produced by :func:`repro.core.semantics.grounded_view`; useful in
    tests and for explaining *why* a set coordinates: the postcondition
    multiset must be a subset of the head set.
    """

    postconditions: Tuple[GroundAtom, ...]
    heads: Tuple[GroundAtom, ...]

    def satisfied(self) -> bool:
        """Condition (3) of Definition 1."""
        heads = set(self.heads)
        return all(p in heads for p in self.postconditions)
