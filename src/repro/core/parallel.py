"""Parallel value-checking for the Consistent Coordination Algorithm.

Section 6.2 of the paper closes with: *"our implementation does not use
any parallelism, although our algorithm naturally breaks into parallel
processes, where each possible value can be easily checked
independently.  We believe that this could even further reduce the
running time, but we leave this enhancement open for future work."*

This module implements that future work.  The algorithm's value loop is
embarrassingly parallel: for each candidate value ``v`` the cleaning
phase of ``G_v`` depends only on (the pruned graph, the option lists,
``v``) — no shared mutable state.  We partition ``V(Q)`` into chunks
and clean them in worker processes:

* phase 1 (serial): option lists + friends cache + pruned graph — the
  ``O(n)`` database queries happen once, in the parent;
* phase 2 (parallel): each worker rebuilds the (read-only) database
  from a plain JSON-able spec and runs the cleaning loop over its chunk;
* phase 3 (serial): candidates are merged, the selection criterion is
  applied, and the chosen set is grounded in the parent.

Determinism: the merged candidate list is sorted exactly as the serial
loop would produce it, so parallel and serial runs choose the same set.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..db import CoordinationStats, Database, database_from_spec, database_to_spec
from .consistent import (
    CandidateCriterion,
    ConsistentCandidate,
    ConsistentCoordinator,
    ConsistentQuery,
    ConsistentResult,
    ConsistentSetup,
    Value,
    largest_consistent_candidate,
)

_WorkerPayload = Tuple[
    dict,  # database spec
    ConsistentSetup,
    Tuple[ConsistentQuery, ...],
    Dict[Tuple[str, str], FrozenSet[str]],  # friends cache
    Dict[str, FrozenSet[Value]],  # option lists
    Tuple[str, ...],  # pruned-graph nodes
    Tuple[Value, ...],  # this worker's chunk of V(Q)
]


def partition_values(
    values: Sequence[Value], chunks: int
) -> List[Tuple[Value, ...]]:
    """Split the ordered value list into ``chunks`` contiguous slices."""
    chunks = max(1, min(chunks, len(values)))
    size, remainder = divmod(len(values), chunks)
    out: List[Tuple[Value, ...]] = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < remainder else 0)
        out.append(tuple(values[start:end]))
        start = end
    return [chunk for chunk in out if chunk]


def _clean_chunk(payload: _WorkerPayload) -> List[Tuple[Value, Tuple[str, ...]]]:
    """Worker: run the cleaning phase for one chunk of values.

    Module-level so it pickles under ``ProcessPoolExecutor``; rebuilds a
    read-only database from the spec (needed only for same-tuple
    checks, which query the coordination table).
    """
    spec, setup, queries, friends, option_lists, nodes, values = payload
    db = database_from_spec(spec)
    coordinator = ConsistentCoordinator(db, setup)
    by_user = {q.user: q for q in queries}
    coordinator._by_user = by_user
    stats = CoordinationStats()
    node_set = set(nodes)

    out: List[Tuple[Value, Tuple[str, ...]]] = []
    for value in values:
        members = {
            user for user in node_set if value in option_lists[user]
        }
        members = coordinator._clean(members, by_user, friends, value, stats)
        if members:
            out.append((value, tuple(sorted(members))))
    return out


def consistent_coordinate_parallel(
    db: Database,
    setup: ConsistentSetup,
    queries: Sequence[ConsistentQuery],
    workers: int = 2,
    choose: CandidateCriterion = largest_consistent_candidate,
) -> ConsistentResult:
    """The Consistent Coordination Algorithm with parallel value checks.

    Semantically identical to
    :func:`repro.core.consistent.consistent_coordinate`; with
    ``workers <= 1`` it simply delegates to the serial implementation.
    """
    queries = tuple(queries)
    if workers <= 1 or len(queries) == 0:
        return ConsistentCoordinator(db, setup).coordinate(queries, choose=choose)

    setup.validate(db, queries)
    coordinator = ConsistentCoordinator(db, setup)
    by_user = {q.user: q for q in queries}
    coordinator._by_user = by_user
    stats = CoordinationStats()

    # Phase 1 (serial): option lists and pruned graph.
    option_lists: Dict[str, FrozenSet[Value]] = {}
    for query in queries:
        stats.db_queries += 1
        option_lists[query.user] = coordinator._constrained_option_list(query)
    graph, friends = coordinator.pruned_graph(queries, option_lists, stats)
    stats.graph_nodes = graph.node_count()
    stats.graph_edges = graph.edge_count()

    all_values = set()
    for values in option_lists.values():
        all_values.update(values)
    ordered_values = sorted(all_values, key=repr)
    stats.candidate_values = len(ordered_values)

    if not ordered_values:
        return ConsistentResult(None, [], option_lists, stats)

    # Phase 2 (parallel): cleaning per value chunk.  Workers only touch
    # the database for same-tuple checks; when no query uses them, ship
    # a schema-only spec so workers skip rebuilding the data.
    needs_rows = any(
        partner.same_tuple
        for query in queries
        for partner in query.named_partners()
    )
    spec = database_to_spec(db)
    if not needs_rows:
        spec = {
            "tables": [
                {**table, "rows": []} for table in spec["tables"]
            ]
        }
    nodes = tuple(sorted(graph.nodes(), key=str))
    chunks = partition_values(ordered_values, workers)
    payloads: List[_WorkerPayload] = [
        (spec, setup, queries, dict(friends), option_lists, nodes, chunk)
        for chunk in chunks
    ]
    survived: List[Tuple[Value, Tuple[str, ...]]] = []
    with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
        for chunk_result in pool.map(_clean_chunk, payloads):
            survived.extend(chunk_result)
    stats.extra["workers"] = len(payloads)

    # Phase 3 (serial): merge deterministically, choose, ground.
    survived.sort(key=lambda item: repr(item[0]))
    candidates = [ConsistentCandidate(value, users) for value, users in survived]
    stats.candidate_sets = len(candidates)
    remaining = list(candidates)
    outcome = None
    while remaining:
        chosen_candidate = choose(remaining)
        if chosen_candidate is None:
            break
        outcome = coordinator._ground(chosen_candidate, by_user, friends, stats)
        if outcome is not None:
            break
        remaining.remove(chosen_candidate)
    return ConsistentResult(outcome, candidates, option_lists, stats)
