"""Worker-thread plumbing for the concurrent shard executor.

:class:`~repro.core.service.ShardedCoordinationService` separates a
*control plane* (the router thread: probing, admission, migration,
placement — cheap graph deltas) from a *data plane* (component
evaluations — database joins, against the shared store or, under the
replicated storage backend, a private per-shard replica synced at plan
time).  This module supplies the two thread primitives that separation
runs on:

* :class:`ShardWorker` — one thread per engine shard, consuming a
  bounded FIFO **mailbox** of jobs.  The mailbox bound is the service's
  backpressure: when a shard falls behind, enqueueing blocks the
  producer instead of growing an unbounded backlog.  Jobs resolve
  :class:`concurrent.futures.Future` objects, so callers can run
  fire-and-forget (``submit_nowait``) or block for byte-identical
  serial semantics (``submit``).

* :class:`CallbackDispatcher` — a single thread that fires user
  resolution callbacks *off-worker*.  A callback that re-enters the
  service (``submit`` from inside ``on_resolved``) therefore blocks
  only the dispatcher, never a shard worker or the router — the
  deadlock the serial engine documents away ("callbacks must not
  re-enter the engine") is structurally impossible here, which the
  test suite's re-entrancy regression exercises.

Both threads are daemons (an abandoned service cannot hang interpreter
shutdown) and drain through counted-outstanding condition variables, so
``service.drain()`` can wait for true quiescence: empty mailboxes, idle
workers, *and* an empty callback queue.

The service's *executor seam* is the choice of what a shard's data
plane runs on.  ``executor="thread"`` (this module) keeps the engines
in-process behind :class:`ShardWorker` mailboxes; ``executor="process"``
(:mod:`repro.core.procexec`) hosts each engine in a worker *process*
behind a framed pipe, and ``executor="remote"``
(:mod:`repro.core.remote`) hosts it on another machine over TCP — both
behind the shard-proxy protocol of :mod:`repro.core.transport`, with
the same mailbox threads acting as I/O waiters — see
:func:`resolve_executor`.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from concurrent.futures import Future
from typing import Callable, Deque, List, Optional, Tuple

from ..concurrency import Deadline
from ..errors import PreconditionError

#: The executor seam's valid specs (``ShardedCoordinationService(executor=...)``).
EXECUTORS = ("thread", "process", "remote")


def resolve_executor(spec: str) -> str:
    """Validate an executor spec (``"thread"``/``"process"``/``"remote"``)."""
    if spec not in EXECUTORS:
        raise PreconditionError(
            f"unknown executor {spec!r} (expected one of {list(EXECUTORS)})"
        )
    return spec

#: A unit of shard work: ``(run, future)``.  ``run`` executes on the
#: worker thread; its return value (or exception) resolves ``future``.
Job = Tuple[Callable[[], object], "Future[object]"]


class ShardWorker:
    """One shard's two-lane mailbox and worker thread.

    The worker owns its engine's data plane: it executes **data jobs**
    (evaluations, flushes) strictly in mailbox (FIFO) order, one at a
    time.  The router enqueues an evaluation job per admitted component
    and a flush job per flush — per-shard FIFO is exactly the ordering
    the equivalence argument needs, because all commands touching one
    weak component go through one mailbox in router order.

    A second, unbounded **control lane** carries cheap control commands
    (routing probes, status, admission bookkeeping).  Control jobs are
    serviced *before* any queued data job, and a long-running data job
    can cooperatively yield between evaluation steps via
    :meth:`service_control` — so a probe's latency is bounded by one
    component evaluation, not by the whole mailbox backlog.  Control
    jobs never mutate busy components (the component-freeze rule keeps
    probed components disjoint from those under evaluation), so the
    byte-identical equivalence argument is unchanged.
    """

    def __init__(self, index: int, capacity: int) -> None:
        self.index = index
        self._capacity = capacity
        self._lock = threading.Lock()
        # Worker waits on _ready for work in either lane; producers wait
        # on _space for a free data-lane slot (the service's backpressure).
        self._ready = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._data: Deque[Optional[Job]] = deque()
        self._control: Deque[Job] = deque()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-shard-{index}", daemon=True
        )
        self._thread.start()

    def post(self, run: Callable[[], object]) -> "Future[object]":
        """Enqueue a data job; blocks when the mailbox is full (backpressure)."""
        future: "Future[object]" = Future()
        with self._space:
            self._space.wait_for(lambda: len(self._data) < self._capacity)
            self._data.append((run, future))
            self._ready.notify()
        return future

    def post_control(self, run: Callable[[], object]) -> "Future[object]":
        """Enqueue a control job on the priority lane (never blocks).

        The lane is unbounded because control commands are few, cheap,
        and issued by the router/gateway at request granularity — the
        bounded data lane remains the only backpressure surface.
        """
        future: "Future[object]" = Future()
        with self._lock:
            self._control.append((run, future))
            self._ready.notify_all()
        return future

    def service_control(self) -> int:
        """Drain the control lane inline; returns jobs serviced.

        Called from the worker thread itself, between steps of a
        long-running data job (the engine's between-component yield
        hook) — this is what bounds probe latency to one evaluation
        step instead of one mailbox backlog.
        """
        serviced = 0
        while True:
            with self._lock:
                if not self._control:
                    return serviced
                job = self._control.popleft()
            self._execute(job)
            serviced += 1

    @property
    def depth(self) -> int:
        """Queued data jobs (mailbox depth, for cost-based routing)."""
        with self._lock:
            return len(self._data)

    @staticmethod
    def _execute(job: Job) -> None:
        run, future = job
        if not future.set_running_or_notify_cancel():
            return
        try:
            future.set_result(run())
        except BaseException as error:  # noqa: BLE001 - forwarded to waiter
            future.set_exception(error)

    def _run(self) -> None:
        while True:
            with self._ready:
                self._ready.wait_for(lambda: self._control or self._data)
                if self._control:
                    job: Optional[Job] = self._control.popleft()
                else:
                    job = self._data.popleft()
                    self._space.notify()
            if job is None:
                return
            self._execute(job)

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Post the shutdown sentinel and join the thread.

        The whole call — including the sentinel enqueue, which blocks
        while the mailbox is full — honors one shared ``timeout``.
        Returns ``False`` when the worker is still running on return
        (mailbox never freed a slot, or a long job outlived the join);
        the thread is a daemon, so a ``False`` is a bounded-shutdown
        report, not a leak of process lifetime.
        """
        deadline = Deadline(timeout)
        with self._space:
            if not self._space.wait_for(
                lambda: len(self._data) < self._capacity,
                timeout=deadline.remaining(),
            ):
                return False
            self._data.append(None)
            self._ready.notify()
        self._thread.join(deadline.remaining())
        return not self._thread.is_alive()

    @property
    def alive(self) -> bool:
        """Whether the worker thread is still running."""
        return self._thread.is_alive()


class CallbackDispatcher:
    """Fires user resolution callbacks on a dedicated thread.

    Workers and the router :meth:`post` zero-argument thunks; the
    dispatcher executes them FIFO.  Exceptions raised by user callbacks
    are collected (never propagated into the dispatch loop) and
    re-raised by the service at its next drain point, mirroring how the
    serial engines let callback exceptions surface to the caller.
    """

    def __init__(self, name: str = "repro-callbacks") -> None:
        self._queue: "queue.SimpleQueue[Optional[Callable[[], None]]]" = (
            queue.SimpleQueue()
        )
        self._idle = threading.Condition(threading.Lock())
        self._outstanding = 0
        self._stopping = False
        self.errors: List[BaseException] = []
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    def post(self, thunk: Callable[[], None]) -> None:
        """Enqueue one callback batch for off-worker execution.

        After :meth:`stop` has sentineled the queue, late posts (a
        worker job outliving a timed-out shutdown) are *dropped*
        without touching the outstanding count — they could never run,
        and counting them would wedge every later ``drain()`` forever.
        """
        with self._idle:
            if self._stopping:
                return
            self._outstanding += 1
            # Enqueue under the same lock as the stopping flag (put on
            # a SimpleQueue never blocks): a thunk can therefore never
            # land behind the shutdown sentinel with its outstanding
            # count already taken — the wedge this method prevents.
            self._queue.put(thunk)

    def _run(self) -> None:
        while True:
            thunk = self._queue.get()
            if thunk is None:
                return
            error: Optional[BaseException] = None
            try:
                thunk()
            except BaseException as caught:  # noqa: BLE001 - surfaced at drain
                error = caught
            finally:
                with self._idle:
                    if error is not None:
                        self.errors.append(error)
                    self._outstanding -= 1
                    if self._outstanding == 0:
                        self._idle.notify_all()

    def take_errors(self) -> List[BaseException]:
        """Atomically take (and clear) the collected callback errors.

        Appends happen under the same lock, so an error landing
        concurrently with the take is either returned now or preserved
        for the next take — never dropped.
        """
        with self._idle:
            errors, self.errors = self.errors, []
            return errors

    @property
    def is_dispatch_thread(self) -> bool:
        """``True`` when called from inside a dispatched callback."""
        return threading.current_thread() is self._thread

    @property
    def idle(self) -> bool:
        """``True`` when no posted callback is queued or running."""
        with self._idle:
            return self._outstanding == 0

    def drain(
        self, timeout: Optional[float] = None, *, raise_errors: bool = False
    ) -> bool:
        """Block until every posted callback has finished running.

        Must not be called from the dispatch thread itself: the running
        callback counts as outstanding and queued callbacks cannot run
        while it blocks.  Callers (the service) guard for that and
        raise instead of hanging.

        With ``raise_errors=True`` a complete drain re-raises every
        collected callback error *deterministically* — all of them, in
        the order they occurred, on this call — instead of leaving them
        in :attr:`errors` to surface on some later service call.  A
        single error is re-raised as itself; several become one
        :class:`ExceptionGroup`.
        """
        with self._idle:
            drained = self._idle.wait_for(
                lambda: self._outstanding == 0, timeout=timeout
            )
        if raise_errors and drained:
            raise_collected("deferred callback errors", self.take_errors())
        return drained

    def stop(self, timeout: Optional[float] = None) -> None:
        """Post the shutdown sentinel and join the thread.

        Callbacks posted after this point are dropped (see
        :meth:`post`) — the price of a timed-out shutdown with jobs
        still in flight, documented on the service's ``close``.
        """
        with self._idle:
            self._stopping = True
            self._queue.put(None)
        self._thread.join(timeout)

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop the dispatcher, then re-raise any collected errors.

        The deterministic shutdown path: after the thread joins, every
        callback error still sitting in :attr:`errors` is re-raised here
        (single error as itself, several as one :class:`ExceptionGroup`)
        rather than being silently lost with the dispatcher.
        """
        self.stop(timeout)
        raise_collected("deferred callback errors", self.take_errors())


def raise_collected(message: str, errors: List[BaseException]) -> None:
    """Re-raise collected callback errors deterministically.

    No errors: no-op.  One error: re-raised as itself (the common case
    keeps its concrete type for ``pytest.raises`` and retry logic).
    Several: raised together as one :class:`ExceptionGroup` so none is
    deferred to a later call — the loss mode this helper exists to fix.
    """
    if not errors:
        return
    if len(errors) == 1:
        raise errors[0]
    raise BaseExceptionGroup(message, errors)
