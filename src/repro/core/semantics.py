"""Coordinating-set semantics: Definition 1, checked mechanically.

This module is the ground truth the rest of the library is tested
against.  :func:`verify_coordinating_set` checks the three conditions of
Definition 1 for an explicit subset + assignment; every algorithm's
output must pass it (and the property-based tests assert exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional

from ..db import Database
from ..logic import GroundAtom, Variable
from .query import EntangledQuery
from .result import CoordinatingSet, GroundedView


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of checking Definition 1, with a human-readable reason."""

    ok: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


def grounded_view(
    queries: Mapping[str, EntangledQuery],
    members: Iterable[str],
    assignment: Mapping[Variable, Hashable],
) -> GroundedView:
    """Ground all postconditions and heads of ``members`` under ``assignment``.

    Queries are standardised apart (variables namespaced by query name)
    before grounding, matching how algorithms produce assignments.
    """
    posts: List[GroundAtom] = []
    heads: List[GroundAtom] = []
    for name in members:
        query = queries[name].standardized()
        for atom in query.postconditions:
            posts.append(atom.ground(assignment))
        for atom in query.head:
            heads.append(atom.ground(assignment))
    return GroundedView(tuple(posts), tuple(heads))


def verify_coordinating_set(
    db: Database,
    queries: Iterable[EntangledQuery],
    members: Iterable[str],
    assignment: Mapping[Variable, Hashable],
) -> VerificationReport:
    """Check the three conditions of Definition 1.

    Parameters
    ----------
    db:
        The database instance ``I``.
    queries:
        The full query set ``Q`` (only ``members`` are examined, but the
        full set makes call sites uniform).
    members:
        Names of the queries in the claimed coordinating set ``S``.
    assignment:
        Mapping from *standardised* variables (namespaced by query name)
        to values of the domain of ``I``.
    """
    by_name = {q.name: q for q in queries}
    member_list = list(members)
    if not member_list:
        return VerificationReport(False, "coordinating set must be non-empty")
    for name in member_list:
        if name not in by_name:
            return VerificationReport(False, f"unknown query {name!r}")

    # Condition (1): every variable in S is assigned a value.
    for name in member_list:
        std = by_name[name].standardized()
        for variable in std.variables():
            if variable not in assignment:
                return VerificationReport(
                    False, f"variable {variable} of query {name!r} is unassigned"
                )

    # Condition (2): every grounded body atom appears in I.
    for name in member_list:
        std = by_name[name].standardized()
        for atom in std.body:
            ground = atom.ground(assignment)
            if ground.relation not in db:
                return VerificationReport(
                    False, f"body relation {ground.relation!r} not in instance"
                )
            if not db.contains(ground.relation, ground.values):
                return VerificationReport(
                    False, f"grounded body atom {ground} not in instance"
                )

    # Condition (3): grounded postconditions ⊆ grounded heads.
    view = grounded_view(by_name, member_list, assignment)
    head_set = set(view.heads)
    for post in view.postconditions:
        if post not in head_set:
            return VerificationReport(
                False, f"grounded postcondition {post} matched by no head"
            )
    return VerificationReport(True)


def verify_result_set(
    db: Database,
    queries: Iterable[EntangledQuery],
    candidate: CoordinatingSet,
) -> VerificationReport:
    """Verify an algorithm-produced :class:`CoordinatingSet`."""
    return verify_coordinating_set(db, queries, candidate.members, candidate.assignment)


def complete_assignment(
    db: Database,
    queries: Mapping[str, EntangledQuery],
    members: Iterable[str],
    partial: Mapping[Variable, Hashable],
) -> Optional[Dict[Variable, Hashable]]:
    """Extend a partial assignment to all variables of ``members``.

    Variables not constrained by any body atom or unification (the
    paper's queries can mention head variables that never reach the
    body) may take an arbitrary value of the active domain; this helper
    picks the deterministic minimum.  Returns ``None`` when unassigned
    variables exist but the domain is empty.
    """
    assignment: Dict[Variable, Hashable] = dict(partial)
    missing: List[Variable] = []
    for name in members:
        std = queries[name].standardized()
        for variable in std.variables():
            if variable not in assignment:
                missing.append(variable)
    if not missing:
        return assignment
    domain = db.domain()
    if not domain:
        return None
    filler = min(domain, key=repr)
    for variable in missing:
        assignment[variable] = filler
    return assignment
