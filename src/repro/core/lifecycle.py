"""Query lifecycle: handles, states, and resolution callbacks.

The paper's Youtopia embedding (Section 6.1) gives a query a life
beyond one ``submit`` call: it is inserted into the system, *waits*
while its coordination partners trickle in, and eventually leaves —
either satisfied (its coordinating set was found and deleted) or
deleted by the user.  The seed engine only exposed the submit half of
that story; this module supplies the request-lifecycle half as a
first-class API surface:

* :class:`QueryState` — the four terminal/transient states
  ``PENDING → SATISFIED | RETRACTED | REJECTED``;
* :class:`QueryHandle` — the object
  :meth:`~repro.core.engine.CoordinationEngine.submit` returns.  It
  stays valid for the query's whole life: while the query waits it
  reports ``PENDING``; when a later arrival (or ``flush``, or a batch
  evaluation) completes a coordinating set containing the query, the
  handle resolves to ``SATISFIED`` with the
  :class:`~repro.core.result.CoordinationResult` that satisfied it;
  :meth:`~repro.core.engine.CoordinationEngine.retract` resolves it to
  ``RETRACTED``; a batch admission that violates safety resolves it to
  ``REJECTED``.

Backward compatibility: a handle *duck-types* the seed
:class:`~repro.core.engine.ArrivalOutcome` — ``query``, ``component``,
``result``, ``satisfied`` and ``coordinated`` all delegate to the
admission-time outcome — so every pre-lifecycle caller of ``submit``
keeps working unchanged (``ArrivalOutcome`` itself also remains the
type of :attr:`QueryHandle.outcome`).

Callbacks registered with :meth:`QueryHandle.on_resolved` fire exactly
once; a callback registered *after* resolution fires immediately on
the registering thread.  In the serial engines they fire synchronously
inside the resolving call and must not re-enter the engine that is
resolving them.  Under the concurrent shard executor
(``ShardedCoordinationService(workers=N)``) the handle carries a
*dispatch seam* (:meth:`QueryHandle._use_dispatcher`): resolution still
updates the handle's state synchronously on the worker, but user
callbacks are handed to a dedicated dispatcher thread, so a callback
may freely re-enter the service (``submit``/``retract``/...) without
deadlocking the shard that resolved it.  The handle itself is
thread-safe: state transitions are lock-guarded, :meth:`QueryHandle.wait`
blocks future-style until resolution, and a callback registered
concurrently with resolution fires exactly once.
"""

from __future__ import annotations

import threading
from enum import Enum
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from .engine import ArrivalOutcome
    from .query import EntangledQuery
    from .result import CoordinationResult


class QueryState(Enum):
    """Where a submitted query is in its life."""

    #: In the system, waiting for coordination partners.
    PENDING = "pending"
    #: A coordinating set containing the query was found; the query was
    #: answered and deleted from the system.
    SATISFIED = "satisfied"
    #: The user withdrew the query before it coordinated.
    RETRACTED = "retracted"
    #: Admission was refused (unsafe arrival or duplicate name in a
    #: batch submission); the query never entered the system.
    REJECTED = "rejected"

    @property
    def resolved(self) -> bool:
        """``True`` for every state except :attr:`PENDING`."""
        return self is not QueryState.PENDING

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


ResolutionCallback = Callable[["QueryHandle"], None]

#: Default bound on the engines'/service's last-known-state records.
MAX_FINAL_STATES = 65536


def record_final_state(
    record: dict,
    name: str,
    state: "QueryState",
    cap: int = MAX_FINAL_STATES,
) -> None:
    """Record a name's latest resolution in a FIFO-bounded dict.

    ``status(name)`` only needs the most recent resolution per name,
    but an unbounded record would grow with the total stream length —
    against the engine's pending-size-independent cost promise.  The
    name is re-inserted (moving it to the back of the insertion order)
    and, past ``cap`` entries, the oldest records are forgotten:
    ``status`` then returns ``None`` for them, exactly as for a name
    never seen.
    """
    record.pop(name, None)
    record[name] = state
    while len(record) > cap:
        del record[next(iter(record))]


def encode_resolution(handle: "QueryHandle") -> dict:
    """The serializable face of a resolved handle (a *resolution record*).

    The process-based shard executor cannot share handle objects across
    the IPC boundary, so resolution travels as data: the worker process
    resolves its private handle, encodes this record, and the router
    process applies it to the caller-visible handle with
    :func:`apply_resolution`.  Uses the wire codec of
    :mod:`repro.db.wire` for the coordination result payload (imported
    lazily — lifecycle stays import-light for serial users).
    """
    from ..db import wire  # lazy: keep lifecycle import-light

    return {
        "query": handle.query,
        "state": handle.state.value,
        "satisfied_with": list(handle.satisfied_with),
        "reason": handle.reason,
        "resolution": wire.encode_result(handle.resolution),
    }


def apply_resolution(handle: "QueryHandle", record: dict) -> None:
    """Apply a :func:`encode_resolution` record to a live handle.

    Runs the handle's ordinary resolution path (state transition under
    the handle lock, ``wait`` wake-up, callbacks via the dispatch seam),
    so a proxy handle resolving from a wire record is indistinguishable
    from one resolved in-process.
    """
    from ..db import wire  # lazy: keep lifecycle import-light

    handle._resolve(
        QueryState(record["state"]),
        resolution=wire.decode_result(record["resolution"]),
        satisfied_with=tuple(record["satisfied_with"]),
        reason=record["reason"],
    )


class QueryHandle:
    """A live view of one submitted query's lifecycle.

    Created by the engine; not meant to be constructed by callers.
    The handle is updated *in place* when the query's state changes,
    so one object tracks the query from admission to resolution.

    Attributes
    ----------
    query:
        The query's name (matching ``ArrivalOutcome.query``).
    entangled:
        The submitted :class:`~repro.core.query.EntangledQuery`.
    state:
        The current :class:`QueryState`.
    outcome:
        The :class:`~repro.core.engine.ArrivalOutcome` of the admission
        evaluation (``None`` for a rejected batch member, and for batch
        members between admission and their component's evaluation).
    resolution:
        The :class:`~repro.core.result.CoordinationResult` whose chosen
        set satisfied the query (``SATISFIED`` only; ``None`` for
        retraction and rejection).
    satisfied_with:
        The full member tuple of the coordinating set the query left
        with (``SATISFIED`` only).
    reason:
        Human-readable rejection reason (``REJECTED`` only).
    """

    __slots__ = (
        "query",
        "entangled",
        "state",
        "outcome",
        "resolution",
        "satisfied_with",
        "reason",
        "_callbacks",
        "_lock",
        "_event",
        "_dispatch",
    )

    def __init__(self, entangled: "EntangledQuery") -> None:
        self.query = entangled.name
        self.entangled = entangled
        self.state = QueryState.PENDING
        self.outcome: Optional["ArrivalOutcome"] = None
        self.resolution: Optional["CoordinationResult"] = None
        self.satisfied_with: Tuple[str, ...] = ()
        self.reason: Optional[str] = None
        self._callbacks: List[ResolutionCallback] = []
        self._lock = threading.Lock()
        self._event: Optional[threading.Event] = None
        self._dispatch: Optional[Callable[[Callable[[], None]], None]] = None

    # ------------------------------------------------------------------
    # Lifecycle queries
    # ------------------------------------------------------------------
    @property
    def resolved(self) -> bool:
        """``True`` once the query has left the system (or never entered)."""
        return self.state.resolved

    @property
    def is_pending(self) -> bool:
        """``True`` while the query waits in the engine."""
        return self.state is QueryState.PENDING

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the handle resolves; ``True`` if it has.

        Future-style blocking for the concurrent service's
        ``submit_nowait`` path: ``handle.wait(5.0)`` returns ``True``
        as soon as the handle leaves ``PENDING`` (on any thread), or
        ``False`` on timeout.  A query that merely evaluated without
        coordinating is still ``PENDING`` and keeps ``wait`` blocking —
        use :meth:`ShardedCoordinationService.drain
        <repro.core.service.ShardedCoordinationService.drain>` to wait
        for evaluation quiescence instead.
        """
        with self._lock:
            if self.state.resolved:
                return True
            if self._event is None:
                self._event = threading.Event()
            event = self._event
        return event.wait(timeout)

    def on_resolved(self, callback: ResolutionCallback) -> "QueryHandle":
        """Register a callback fired (once) when the handle resolves.

        Fires immediately (on the registering thread) if the handle is
        already resolved.  Returns the handle for chaining.  Safe to
        call concurrently with resolution: the callback fires exactly
        once either way.
        """
        with self._lock:
            if not self.state.resolved:
                self._callbacks.append(callback)
                return self
        callback(self)
        return self

    def _use_dispatcher(
        self, dispatch: Callable[[Callable[[], None]], None]
    ) -> None:
        """Route future callback firings through ``dispatch`` (internal).

        Set by the concurrent service right after admission, before any
        resolution can happen, so user callbacks run on the service's
        dispatcher thread instead of inside a shard worker.
        """
        self._dispatch = dispatch

    # ------------------------------------------------------------------
    # ArrivalOutcome compatibility surface
    # ------------------------------------------------------------------
    @property
    def component(self) -> Tuple[str, ...]:
        """The weak component evaluated at admission (outcome delegate)."""
        return () if self.outcome is None else self.outcome.component

    @property
    def result(self) -> Optional["CoordinationResult"]:
        """The admission evaluation's result (outcome delegate)."""
        return None if self.outcome is None else self.outcome.result

    @property
    def satisfied(self) -> Tuple[str, ...]:
        """Queries satisfied by the admission evaluation (outcome delegate)."""
        return () if self.outcome is None else self.outcome.satisfied

    @property
    def coordinated(self) -> bool:
        """``True`` when the admission completed a coordinating set."""
        return self.outcome is not None and self.outcome.coordinated

    # ------------------------------------------------------------------
    # Engine-side transitions (internal)
    # ------------------------------------------------------------------
    def _resolve(
        self,
        state: QueryState,
        resolution: Optional["CoordinationResult"] = None,
        satisfied_with: Tuple[str, ...] = (),
        reason: Optional[str] = None,
    ) -> None:
        """Move out of ``PENDING`` and fire callbacks.  Idempotent-safe:
        a second resolution attempt is a programming error upstream and
        raises immediately rather than silently re-firing callbacks.

        The state transition happens under the handle lock (so
        :meth:`wait` and concurrent :meth:`on_resolved` registrations
        observe it atomically); callbacks fire *outside* the lock —
        inline on the resolving thread by default, or via the dispatch
        seam when the concurrent service installed one."""
        with self._lock:
            if self.state.resolved:
                raise RuntimeError(
                    f"handle for {self.query!r} already resolved to {self.state}"
                )
            # Payload before state: lock-free pollers (`while not
            # handle.resolved`) must never observe a resolved state
            # with unset resolution fields.
            self.resolution = resolution
            self.satisfied_with = satisfied_with
            self.reason = reason
            self.state = state
            callbacks, self._callbacks = self._callbacks, []
            event = self._event
            dispatch = self._dispatch
        if event is not None:
            event.set()
        if not callbacks:
            return
        if dispatch is not None:

            def fire(handle: "QueryHandle" = self) -> None:
                for callback in callbacks:
                    callback(handle)

            dispatch(fire)
        else:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:
        detail = ""
        if self.state is QueryState.SATISFIED and self.satisfied_with:
            detail = f" with {{{', '.join(sorted(self.satisfied_with))}}}"
        elif self.state is QueryState.REJECTED and self.reason:
            detail = f" ({self.reason})"
        return f"QueryHandle({self.query!r}: {self.state}{detail})"
