"""The transport-agnostic shard seam: one proxy protocol, N transports.

The sharded service (:mod:`repro.core.service`) drives every shard
through the :class:`~repro.core.engine.CoordinationEngine` surface —
``admit``/``incident_pending``/``evaluate_admitted_phased``/``flush``/
``release_component``/``adopt``/…  In-thread shards *are* engines; a
shard hosted elsewhere needs a router-side proxy that speaks the same
surface over a message boundary.  This module is that seam, split in
half:

* :class:`ShardProxy` — the router side.  Everything a remote-ish shard
  proxy needs regardless of transport: the engine-surface methods
  encoded as framed :mod:`repro.db.wire` commands, the two-lane
  request serialization (main lane for ``evaluate``/``flush`` and
  everything that resolves handles; control lane for probes and
  migration bookkeeping), write-token-gated replica sync piggybacked
  on evaluation commands, router-side
  :class:`~repro.core.lifecycle.QueryHandle` mirroring from resolution
  records, and first-class death handling with an optional
  :attr:`ShardProxy.on_death` failover hook.  A transport implements
  exactly three things: :meth:`ShardProxy._transact` (one raw framed
  round trip), :meth:`ShardProxy._describe_death` (the error message
  when the peer vanishes) and :meth:`ShardProxy.stop`.

* :class:`WorkerSession` + :func:`execute_command` — the worker side.
  A private lock-free :class:`~repro.db.Database` replica, a full
  :class:`~repro.core.engine.CoordinationEngine` over it, and the
  command dispatch both hosted-shard implementations serve:
  the child-process pipe worker (:mod:`repro.core.procexec`) and the
  TCP shard host (:mod:`repro.core.remote`).  The byte-identical
  equivalence argument lives here once, not per transport: the service
  routes, freezes, migrates and journals identically whatever hosts
  the shard, and the worker applies the identical command stream to an
  identical replica.

Two lanes exist because their latency profiles must not couple: the
main lane is a strict request/reply channel carrying the data plane
and every resolution record in router order, while the control lane
carries cheap probes that must be answered mid-``evaluate``.  Control
commands never resolve handles and — by the service's component-freeze
rule — never touch a component under evaluation, so running them from
a second worker-side thread (or a second TCP connection) changes no
observable ordering.
"""

from __future__ import annotations

import threading
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..concurrency import OwnedLock
from ..db import Database, wire
from ..errors import ConcurrencyError, PreconditionError, ReproError
from .engine import ArrivalOutcome, CoordinationEngine
from .lifecycle import (
    QueryHandle,
    QueryState,
    ResolutionCallback,
    apply_resolution,
    encode_resolution,
)
from .query import EntangledQuery

#: Commands a worker accepts on the control lane.  All are either
#: read-only probes or mutations the component-freeze rule keeps
#: disjoint from any component under evaluation (``admit`` of a new
#: arrival, ``release``/``adopt`` of an *idle* migrating component),
#: and none can resolve handles — control replies never carry
#: resolutions, so resolution ordering stays a main-lane property.
CONTROL_OPS = frozenset(
    {
        "admit",
        "incident",
        "component_of",
        "components",
        "pending",
        "release",
        "adopt",
    }
)

#: GIL switch interval inside a worker that services a control lane
#: from a second thread.  The control thread wakes mid-``evaluate``
#: only at a switch point of the CPU-bound run phase, so the default
#: 5 ms interval would be the floor of every control round trip.
CONTROL_SWITCH_INTERVAL = 0.001

#: Failover hook signature: ``hook(proxy, orphans) -> handled``.  See
#: :attr:`ShardProxy.on_death`.
DeathHook = Callable[["ShardProxy", List[QueryHandle]], bool]


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
def error_reply(error: BaseException) -> dict:
    """Wrap a worker-side failure as the reply the router expects.

    Three kinds: ``precondition`` (the router re-raises
    :class:`~repro.errors.PreconditionError` — a caller error, the
    worker is fine), ``repro`` (any other library error, including
    :class:`~repro.errors.WireError` for undecodable or
    version-mismatched frames — rejected cleanly, never a worker
    crash), and ``internal`` (anything else, traceback attached).
    """
    if isinstance(error, PreconditionError):
        return {"error": {"kind": "precondition", "message": str(error)}}
    if isinstance(error, ReproError):
        return {"error": {"kind": "repro", "message": str(error)}}
    return {
        "error": {
            "kind": "internal",
            "message": "".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            ),
        }
    }


def execute_command(engine: CoordinationEngine, message: dict) -> dict:
    """Run one router command against a worker's private engine.

    Callers hold the engine lock (the main loop and a control thread
    share the engine once a control lane exists)."""
    op = message["op"]
    if op == "admit":
        query = wire.decode_query(message["query"])
        engine.admit(query)
        return {"component": list(engine.component_of(query.name))}
    if op == "incident":
        query = wire.decode_query(message["query"])
        return {"names": list(engine.incident_pending(query))}
    if op == "component_of":
        return {"names": list(engine.component_of(message["name"]))}
    if op == "components":
        return {"components": [list(c) for c in engine.components()]}
    if op == "evaluate":
        handles = [
            handle
            for name in message["names"]
            if (handle := engine.handle(name)) is not None
        ]
        engine.evaluate_admitted(handles)
        return {"outcomes": _encode_outcomes(handles)}
    if op == "flush":
        return {"result": wire.encode_result(engine.flush())}
    if op == "retract":
        engine.retract(message["name"])
        return {}
    if op == "release":
        released = engine.release_component(message["name"])
        return {"names": [handle.query for handle in released]}
    if op == "adopt":
        queries = [wire.decode_query(q) for q in message["queries"]]
        engine.adopt([QueryHandle(query) for query in queries])
        return {}
    if op == "pending":
        return {"names": list(engine.pending())}
    if op in ("stop", "ping"):
        return {}
    raise PreconditionError(f"unknown worker command {op!r}")


def _encode_outcomes(handles: Sequence[QueryHandle]) -> List[dict]:
    return [
        {
            "query": handle.query,
            "component": list(handle.outcome.component),
            "result": wire.encode_result(handle.outcome.result),
            "satisfied": list(handle.outcome.satisfied),
        }
        for handle in handles
        if handle.outcome is not None
    ]


def evaluate_phased(engine: CoordinationEngine, message: dict) -> dict:
    """Main-lane ``evaluate`` while a control lane is live.

    Handle lookup and the reply build bracket the engine lock; the run
    phase inside ``evaluate_admitted_phased`` leaves it free, which is
    what lets control commands be answered mid-frame.  Outcomes are
    byte-identical to the plain ``evaluate`` path — the freeze rule
    keeps the evaluated components untouched between plan and commit
    (see the engine docstring).
    """
    with engine.lock:
        handles = [
            handle
            for name in message["names"]
            if (handle := engine.handle(name)) is not None
        ]
    engine.evaluate_admitted_phased(handles)
    with engine.lock:
        return {"outcomes": _encode_outcomes(handles)}


class WorkerSession:
    """One hosted shard's worker-side state: replica + engine + records.

    Shared by every hosted-shard implementation — the pipe worker
    process (:func:`repro.core.procexec._host_main`) and each TCP
    session of :class:`repro.core.remote.ShardHost` build exactly one
    of these.  :meth:`handle_main` and :meth:`handle_control` are the
    two lanes' frame handlers; the session object carries the
    resolution buffer that makes every main-lane reply ship the
    resolution records its command produced, in resolution order.
    """

    def __init__(
        self,
        check_safety: bool = True,
        reuse_groundings: bool = False,
        reuse_component_states: bool = True,
        plan_cache: bool = True,
        composite_indexes: bool = True,
    ) -> None:
        self.replica = Database(synchronized=False)
        # Ablation toggles travel with the session options so a
        # toggled-off feature is off wherever evaluation actually runs.
        self.replica.configure(
            plan_cache=plan_cache, composite_indexes=composite_indexes
        )
        self.engine = CoordinationEngine(
            self.replica,
            check_safety=check_safety,
            reuse_groundings=reuse_groundings,
            reuse_component_states=reuse_component_states,
        )
        self.resolutions: List[dict] = []
        self.engine.on_resolved(
            lambda handle: self.resolutions.append(encode_resolution(handle))
        )
        #: ``True`` once a control lane services this session; main-lane
        #: ``evaluate`` then runs the phased plan/run/commit split with
        #: the engine lock free during the run phase.
        self.phased = False

    def handle_main(self, message: dict) -> dict:
        """Serve one main-lane command; the reply carries resolutions."""
        try:
            sync = message.get("sync")
            if sync is not None:
                # The replica is written only by the main lane, but a
                # control thread reads it (admission probes), so writes
                # serialize through the engine lock like any mutation.
                with self.engine.lock:
                    wire.apply_sync(self.replica, sync)
            if self.phased and message.get("op") == "evaluate":
                reply = evaluate_phased(self.engine, message)
            else:
                with self.engine.lock:
                    reply = execute_command(self.engine, message)
        except BaseException as error:  # noqa: BLE001 - forwarded to router
            reply = error_reply(error)
        reply["resolutions"] = list(self.resolutions)
        self.resolutions.clear()
        return reply

    def handle_control(self, message: dict) -> dict:
        """Serve one control-lane command (probes, migration halves)."""
        try:
            op = message.get("op")
            if op not in CONTROL_OPS:
                raise PreconditionError(
                    f"op {op!r} is not a control-lane command"
                )
            with self.engine.lock:
                return execute_command(self.engine, message)
        except BaseException as error:  # noqa: BLE001 - forwarded to router
            return error_reply(error)


# ---------------------------------------------------------------------------
# Router side
# ---------------------------------------------------------------------------
class ShardProxy:
    """Router-side proxy for one shard engine hosted across a boundary.

    Duck-types the :class:`~repro.core.engine.CoordinationEngine`
    surface the sharded service drives, so the service's control plane
    — routing probes, admission, the component-freeze rule, two-phase
    migration, journaling — is transport-agnostic.  All caller-visible
    :class:`~repro.core.lifecycle.QueryHandle` objects live on this
    side; the worker's private handles never cross the boundary (their
    resolutions do, as records).

    Replica sync is write-token gated exactly like the in-process
    replicated backend: a listener on the authoritative database bumps
    the token on every facade write, and the next ``evaluate``/``flush``
    command whose token moved carries a :func:`repro.db.wire.build_sync`
    payload of the changed relations' mutation-log tails.

    Subclasses implement the transport: :meth:`_transact` (one raw
    framed round trip on the requested lane), :attr:`_has_control`
    (whether a control lane exists — without one, control commands fall
    back to the main lane), :meth:`_describe_death` (the message when
    the peer vanishes) and :meth:`stop`.
    """

    def __init__(self, db: Database, index: int, control_lane: bool = True) -> None:
        self.db = db
        self.index = index
        #: Whether this shard has the second (control) lane.
        self.control_lane = control_lane
        #: Structure-lock parity with :class:`CoordinationEngine`: the
        #: service brackets engine calls in ``with engine.lock``; for a
        #: proxy the lane mutexes below do the real serialization.
        self.lock = OwnedLock()
        self._io = threading.Lock()
        self._control_io = threading.Lock()
        self._handles: Dict[str, QueryHandle] = {}
        self._callbacks: List[ResolutionCallback] = []
        #: Component memo from the last ``admit`` reply — valid only
        #: until the next state-changing command (components can merge).
        self._component_hint: Dict[str, Tuple[str, ...]] = {}
        self._stamps: Dict[str, int] = {}
        self._token = 0
        self._synced_token = -1
        self._token_mutex = threading.Lock()
        self._dead: Optional[str] = None
        self._stopped = False
        # Serializes the death transition: several threads can observe
        # a broken transport at once, but only the first may hand off /
        # reject the orphaned handles (callbacks must fire exactly once).
        self._fail_mutex = threading.Lock()
        #: Failover hook, set by the service: called exactly once per
        #: proxy death, by the first thread that observed it, with the
        #: orphaned (still-pending) handles.  Return ``True`` to signal
        #: the orphans were re-homed (the default rejection is skipped);
        #: ``False``/``None``/an exception falls back to rejecting them.
        #: Either way the observing call still raises
        #: :class:`~repro.errors.ConcurrencyError`.
        self.on_death: Optional[DeathHook] = None
        self._listener = self._note_write
        db.add_write_listener(self._listener)

    # ------------------------------------------------------------------
    # Transport surface (subclass responsibilities)
    # ------------------------------------------------------------------
    def _transact(self, frame: bytes, control: bool = False) -> bytes:
        """One raw framed round trip; raises OSError/EOFError on death."""
        raise NotImplementedError

    @property
    def _has_control(self) -> bool:
        """Whether a control lane is connected."""
        raise NotImplementedError

    def _describe_death(self, error: BaseException) -> str:
        """The :class:`~repro.errors.ConcurrencyError` message on death."""
        raise NotImplementedError

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Stop the hosted shard; best-effort within ``timeout``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Invalidation (authoritative-store write listener)
    # ------------------------------------------------------------------
    def _note_write(self) -> None:
        with self._token_mutex:
            self._token += 1

    # ------------------------------------------------------------------
    # Introspection / local state
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the proxy is usable (not stopped, peer not dead)."""
        return self._dead is None and not self._stopped

    def pending(self) -> Tuple[str, ...]:
        """Names of queries currently pending on this shard."""
        return tuple(self._handles)

    def handle(self, name: str) -> Optional[QueryHandle]:
        """The live (router-side) handle of a pending query."""
        return self._handles.get(name)

    def probe_pending(self) -> Tuple[str, ...]:
        """Pending names read on the *worker*, over the control lane.

        Unlike :meth:`pending` (a local table read), this is a real
        transport round trip — the service's control-lane latency probe.
        """
        reply = self._control_request({"op": "pending"})
        return tuple(reply["names"])

    def on_resolved(self, callback: ResolutionCallback) -> ResolutionCallback:
        """Register a proxy-level resolution callback (service hook)."""
        self._callbacks.append(callback)
        return callback

    # ------------------------------------------------------------------
    # Engine surface (transport-backed)
    # ------------------------------------------------------------------
    def admit(self, query: EntangledQuery) -> QueryHandle:
        """Admit one arrival on the worker; returns the proxy handle.

        Rides the control lane: admission bookkeeping must not queue
        behind an in-flight ``evaluate`` frame.  Safe mid-evaluation
        because the service's freeze rule guarantees the arrival touches
        no component under evaluation, and the worker only services the
        lane at engine-consistent points.
        """
        reply = self._control_request(
            {"op": "admit", "query": wire.encode_query(query)}
        )
        handle = QueryHandle(query)
        self._handles[query.name] = handle
        self._component_hint = {query.name: tuple(reply["component"])}
        return handle

    def incident_pending(self, query: EntangledQuery) -> Tuple[str, ...]:
        """Read-only probe: pending queries the arrival would touch."""
        reply = self._control_request(
            {"op": "incident", "query": wire.encode_query(query)}
        )
        return tuple(reply["names"])

    def component_of(self, name: str) -> Tuple[str, ...]:
        """The weak component of a pending query, sorted by name."""
        if name not in self._handles:
            raise PreconditionError(f"query {name!r} is not pending")
        hint = self._component_hint.get(name)
        if hint is not None:
            return hint
        reply = self._control_request({"op": "component_of", "name": name})
        return tuple(reply["names"])

    def components(self) -> List[Tuple[str, ...]]:
        """All weak components of this shard's pending pool."""
        reply = self._control_request({"op": "components"})
        return [tuple(component) for component in reply["components"]]

    def retract(self, name: str) -> QueryHandle:
        """Withdraw one pending query; resolves its proxy handle."""
        if name not in self._handles:
            raise PreconditionError(f"query {name!r} is not pending")
        handle = self._handles[name]
        self._component_hint = {}
        self._request({"op": "retract", "name": name})
        return handle

    def evaluate_admitted(
        self, admitted: Sequence[QueryHandle], between=None
    ) -> None:
        """Evaluate the admitted handles' components on the worker.

        ``between`` (the thread executor's control-lane yield hook) is
        accepted for surface parity and ignored: a hosted worker
        services its own control lane, and the router-side mailbox
        thread is already free while it blocks on the reply.
        """
        if not admitted:
            return
        self._component_hint = {}
        self._request(
            {"op": "evaluate", "names": [h.query for h in admitted]},
            sync=True,
        )

    # The hosted worker is single-owner, so there is no phased/unlocked
    # variant to speak of — the shard worker thread blocks on the reply
    # while the expensive work runs on the other side of the transport.
    evaluate_admitted_phased = evaluate_admitted

    def flush(self):
        """One global evaluation run on the worker's pending pool."""
        self._component_hint = {}
        reply = self._request({"op": "flush"}, sync=True)
        return wire.decode_result(reply["result"])

    def release_component(self, name: str) -> List[QueryHandle]:
        """Migration phase 1: detach a component, handles stay pending."""
        if name not in self._handles:
            raise PreconditionError(f"query {name!r} is not pending")
        self._component_hint = {}
        # Control lane: the freeze rule guarantees a migrating
        # component is idle, so releasing it between two component
        # evaluations is safe — and a rebalance under load must not
        # park the router behind a grinding evaluate frame.
        reply = self._control_request({"op": "release", "name": name})
        released: List[QueryHandle] = []
        for member in reply["names"]:
            handle = self._handles.pop(member, None)
            if handle is None:
                raise ConcurrencyError(
                    f"shard {self.index} released unknown query {member!r} "
                    "(router and worker handle tables desynced)"
                )
            released.append(handle)
        return released

    def adopt(self, handles: Sequence[QueryHandle]) -> None:
        """Migration phase 2: re-home released handles onto this shard."""
        if not handles:
            return
        self._component_hint = {}
        # Control lane, like release: adopted components are idle by
        # the freeze rule, and their replica rows sync lazily at the
        # next evaluate's plan phase.
        self._control_request(
            {
                "op": "adopt",
                "queries": [wire.encode_query(h.entangled) for h in handles],
            }
        )
        for handle in handles:
            self._handles[handle.query] = handle

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _request(self, message: dict, sync: bool = False) -> dict:
        """One framed request/reply round trip (serialized per shard)."""
        failure: Optional[BaseException] = None
        reply: dict = {}
        with self._io:
            self._check_alive()
            if sync:
                # Token before stamp walk (a write landing mid-build
                # leaves the recorded token stale, so the next command
                # re-syncs — never the reverse).
                token = self._token
                if token != self._synced_token:
                    payload, self._stamps = wire.build_sync(self.db, self._stamps)
                    if payload is not None:
                        message["sync"] = payload
                    self._synced_token = token
            try:
                reply = wire.loads(self._transact(wire.dumps(message)))
            except (EOFError, OSError) as error:
                failure = error
        if failure is not None:
            self._fail(failure)
        self._apply_reply(reply)
        self._raise_reply_error(reply)
        return reply

    def _control_request(self, message: dict) -> dict:
        """One round trip on the control lane (falls back to main).

        Serialized by its own mutex, so a probe/admit never waits behind
        an in-flight ``evaluate`` frame on the main lane — the latency
        decoupling the control lane exists for.  Control replies carry
        no resolutions (control commands cannot resolve handles), so
        there is nothing to apply.
        """
        if not self._has_control:
            return self._request(message)
        failure: Optional[BaseException] = None
        reply: dict = {}
        with self._control_io:
            self._check_alive()
            try:
                reply = wire.loads(self._transact(wire.dumps(message), control=True))
            except (EOFError, OSError) as error:
                failure = error
        if failure is not None:
            self._fail(failure)
        self._raise_reply_error(reply)
        return reply

    def _raise_reply_error(self, reply: dict) -> None:
        error = reply.get("error")
        if error is not None:
            if error["kind"] == "precondition":
                raise PreconditionError(error["message"])
            if error["kind"] == "repro":
                raise ReproError(error["message"])
            raise ConcurrencyError(
                f"shard {self.index} worker command failed:\n{error['message']}"
            )

    def _apply_reply(self, reply: dict) -> None:
        """Mirror the worker's outcomes and resolutions onto proxy handles.

        Outcomes first (the engine records an admitted handle's outcome
        before retiring its coordinating set), then resolutions in the
        worker's resolution order.  Handle state transitions run the
        ordinary :class:`QueryHandle` resolution path, so ``wait``,
        callbacks and the dispatcher seam behave exactly as in-process.
        """
        for record in reply.get("outcomes", ()):
            handle = self._handles.get(record["query"])
            if handle is not None:
                handle.outcome = ArrivalOutcome(
                    record["query"],
                    tuple(record["component"]),
                    wire.decode_result(record["result"]),
                    tuple(record["satisfied"]),
                )
        for record in reply.get("resolutions", ()):
            handle = self._handles.pop(record["query"], None)
            if handle is None:
                continue
            apply_resolution(handle, record)
            for callback in list(self._callbacks):
                callback(handle)

    def _check_alive(self) -> None:
        if self._stopped:
            raise ConcurrencyError(f"shard {self.index} worker is stopped")
        if self._dead is not None:
            raise ConcurrencyError(self._dead)

    def _fail(self, error: BaseException) -> None:
        """Handle worker death: hand off or reject orphans, raise loudly.

        Called outside the lane mutexes so handle callbacks (which may
        re-enter the service in serial mode) cannot deadlock against an
        in-flight request.  Idempotent under races: the death
        transition is mutex-guarded, so of several threads observing
        the broken transport at once exactly one runs the
        :attr:`on_death` hook / rejects the orphaned handles (callbacks
        fire once per handle); the rest re-raise.
        """
        first = False
        orphans: List[QueryHandle] = []
        with self._fail_mutex:
            if self._dead is None:
                first = True
                self._dead = self._describe_death(error)
                orphans = list(self._handles.values())
                self._handles.clear()
                self._component_hint = {}
        if first:
            handled = False
            hook = self.on_death
            if hook is not None:
                try:
                    handled = bool(hook(self, orphans))
                except Exception:  # noqa: BLE001 - fall back to rejection
                    handled = False
            if not handled:
                for handle in orphans:
                    try:
                        handle._resolve(QueryState.REJECTED, reason=self._dead)
                    except RuntimeError:  # pragma: no cover - already resolved
                        continue
                    for callback in list(self._callbacks):
                        callback(handle)
        raise ConcurrencyError(self._dead) from error
