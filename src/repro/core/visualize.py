"""Graphviz (dot) export for coordination structures.

The paper communicates its algorithms through graph drawings
(Figures 2, 3 and 9).  These helpers emit the same pictures in dot
syntax so `dot -Tpng` regenerates them from live objects:

* :func:`coordination_graph_dot` — the collapsed coordination graph
  (Figure 2's right-hand rendering / Figure 3 left);
* :func:`extended_graph_dot` — the labelled multigraph, edges annotated
  with the postcondition/head atom pair;
* :func:`condensation_dot` — the components graph of Section 4, nodes
  labelled with their member queries;
* :func:`pruned_graph_dot` — the Consistent algorithm's pruned graph
  (Figure 3 right), optionally highlighting one value's subgraph.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..graphs import Condensation, DiGraph
from .coordination_graph import CoordinationGraph


def _quote(text: object) -> str:
    escaped = str(text).replace('"', '\\"')
    return f'"{escaped}"'


def _header(name: str) -> list:
    return [
        f"digraph {_quote(name)} {{",
        "  rankdir=LR;",
        '  node [shape=circle, fontsize=11];',
    ]


def coordination_graph_dot(
    graph: CoordinationGraph, name: str = "coordination"
) -> str:
    """The collapsed coordination graph as a dot digraph."""
    lines = _header(name)
    for node in sorted(graph.names()):
        lines.append(f"  {_quote(node)};")
    for source in sorted(graph.names()):
        for target in sorted(graph.graph.successors(source)):
            lines.append(f"  {_quote(source)} -> {_quote(target)};")
    lines.append("}")
    return "\n".join(lines)


def extended_graph_dot(
    graph: CoordinationGraph, name: str = "extended"
) -> str:
    """The extended coordination graph with atom-pair edge labels."""
    lines = _header(name)
    for node in sorted(graph.names()):
        lines.append(f"  {_quote(node)};")
    for edge in graph.extended_edges:
        post = graph.post_atom(edge)
        head = graph.head_atom(edge)
        label = f"{post} ⇒ {head}"
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.target)} "
            f"[label={_quote(label)}, fontsize=9];"
        )
    lines.append("}")
    return "\n".join(lines)


def condensation_dot(
    condensation: Condensation, name: str = "components"
) -> str:
    """The components graph, each node labelled with its SCC members."""
    lines = _header(name)
    lines[-1] = '  node [shape=box, fontsize=11];'
    for component in range(condensation.component_count):
        members = " + ".join(sorted(str(m) for m in condensation.members(component)))
        lines.append(f"  c{component} [label={_quote(members)}];")
    for source, target in sorted(condensation.dag.edges()):
        lines.append(f"  c{source} -> c{target};")
    lines.append("}")
    return "\n".join(lines)


def pruned_graph_dot(
    graph: DiGraph,
    name: str = "pruned",
    highlight: Optional[Iterable[str]] = None,
) -> str:
    """The Consistent algorithm's pruned coordination graph.

    ``highlight`` marks the members of one value's subgraph ``G_v``
    (filled nodes), as the paper's Figure 3 discussion walks through.
    """
    marked: Set[str] = set(highlight or ())
    lines = _header(name)
    for node in sorted(graph.nodes(), key=str):
        if node in marked:
            lines.append(
                f"  {_quote(node)} [style=filled, fillcolor=lightgrey];"
            )
        else:
            lines.append(f"  {_quote(node)};")
    for source, target in sorted(graph.edges(), key=str):
        lines.append(f"  {_quote(source)} -> {_quote(target)};")
    lines.append("}")
    return "\n".join(lines)
