"""The paper's core contribution: entangled queries and coordination.

Public surface:

* :class:`EntangledQuery` and the textual :func:`parse_query` /
  :func:`parse_queries` syntax;
* coordination graphs and structural properties (safety, uniqueness,
  single-connectedness);
* Definition-1 semantics (:func:`verify_coordinating_set`) and the
  exponential exact solvers (test oracle);
* the Gupta et al. baseline (safe + unique sets);
* the SCC Coordination Algorithm (safe sets, Section 4);
* the Consistent Coordination Algorithm (A-consistent sets, Section 5);
* the single-connected solver (Theorem 3);
* an online :class:`CoordinationEngine` facade in the Youtopia style,
  with a query-lifecycle API (:class:`QueryHandle` / :class:`QueryState`)
  and a component-sharded :class:`ShardedCoordinationService` router
  (configured by :class:`ServiceConfig`) whose shards can live
  in-process, in worker processes (:class:`ProcessShardExecutor`), or
  on remote :class:`ShardHost` workers over TCP
  (:class:`RemoteShardTransport`), all behind the one
  :class:`ShardProxy` transport seam.
"""

from .bruteforce import (
    coordinating_set_exists,
    enumerate_coordinating_sets,
    find_coordinating_set,
    find_maximum_coordinating_set,
)
from .consistent import (
    ConsistentCandidate,
    ConsistentCoordinator,
    ConsistentOutcome,
    ConsistentQuery,
    ConsistentResult,
    ConsistentSetup,
    FriendSlot,
    NamedPartner,
    consistent_coordinate,
    largest_consistent_candidate,
)
from .consistent_analysis import analyze_consistent, analyze_program
from .consistent_lowering import (
    classify_attributes,
    is_a_consistent,
    lower_all,
    outcome_witness,
    to_entangled,
)
from .coordination_graph import ArrivalProbe, CoordinationGraph, ExtendedEdge
from .engine import ArrivalOutcome, CoordinationEngine
from .executor import CallbackDispatcher, ShardWorker
from .gateway import Gateway, GatewayClient, GatewayError
from .gupta import gupta_coordinate
from .lifecycle import QueryHandle, QueryState
from .procexec import ProcessShardExecutor
from .remote import RemoteShardTransport, ShardHost, parse_address
from .service import ServiceConfig, ShardedCoordinationService
from .transport import ShardProxy, WorkerSession
from .parallel import consistent_coordinate_parallel, partition_values
from .parser import parse_queries, parse_query
from .properties import (
    SafetyReport,
    is_safe,
    is_safe_and_unique,
    is_single_connected,
    is_unique,
    postcondition_fanout,
    safety_report,
)
from .query import EntangledQuery, check_distinct_names, validate_query_set
from .result import CoordinatingSet, CoordinationResult, GroundedView
from .scc_coordination import (
    PreprocessResult,
    containing_query,
    largest_candidate,
    preprocess,
    scc_coordinate,
    scc_coordinate_on_graph,
)
from .semantics import (
    VerificationReport,
    complete_assignment,
    grounded_view,
    verify_coordinating_set,
    verify_result_set,
)
from .single_connected import single_connected_coordinate
from .trace import (
    ComponentProcessed,
    PreprocessingRemoved,
    SelectionMade,
    Trace,
    ValueExamined,
    render_trace,
)
from .visualize import (
    condensation_dot,
    coordination_graph_dot,
    extended_graph_dot,
    pruned_graph_dot,
)

__all__ = [
    "ArrivalOutcome",
    "ArrivalProbe",
    "ComponentProcessed",
    "PreprocessingRemoved",
    "SelectionMade",
    "Trace",
    "ValueExamined",
    "condensation_dot",
    "coordination_graph_dot",
    "extended_graph_dot",
    "pruned_graph_dot",
    "render_trace",
    "ConsistentCandidate",
    "ConsistentCoordinator",
    "ConsistentOutcome",
    "ConsistentQuery",
    "ConsistentResult",
    "ConsistentSetup",
    "CallbackDispatcher",
    "CoordinatingSet",
    "CoordinationEngine",
    "CoordinationGraph",
    "CoordinationResult",
    "EntangledQuery",
    "ExtendedEdge",
    "FriendSlot",
    "Gateway",
    "GatewayClient",
    "GatewayError",
    "GroundedView",
    "NamedPartner",
    "PreprocessResult",
    "ProcessShardExecutor",
    "QueryHandle",
    "QueryState",
    "RemoteShardTransport",
    "SafetyReport",
    "ServiceConfig",
    "ShardHost",
    "ShardProxy",
    "ShardWorker",
    "ShardedCoordinationService",
    "WorkerSession",
    "VerificationReport",
    "analyze_consistent",
    "analyze_program",
    "check_distinct_names",
    "classify_attributes",
    "complete_assignment",
    "consistent_coordinate",
    "consistent_coordinate_parallel",
    "containing_query",
    "partition_values",
    "coordinating_set_exists",
    "enumerate_coordinating_sets",
    "find_coordinating_set",
    "find_maximum_coordinating_set",
    "grounded_view",
    "gupta_coordinate",
    "is_a_consistent",
    "is_safe",
    "is_safe_and_unique",
    "is_single_connected",
    "is_unique",
    "largest_candidate",
    "largest_consistent_candidate",
    "lower_all",
    "outcome_witness",
    "parse_address",
    "parse_queries",
    "parse_query",
    "postcondition_fanout",
    "preprocess",
    "safety_report",
    "scc_coordinate",
    "scc_coordinate_on_graph",
    "single_connected_coordinate",
    "to_entangled",
    "validate_query_set",
    "verify_coordinating_set",
    "verify_result_set",
]
