"""Process-based shard transport: one engine shard per worker *process*.

The worker-thread executor (:mod:`repro.core.executor`) decouples the
accept path from evaluation, and the replicated storage backend
(:mod:`repro.db.backend`) makes the evaluation phase lock-free — but on
GIL builds the data plane still shares one interpreter.  This module
moves each shard across a process boundary, the way a parallel DBMS
scales its data plane.

Both halves are thin wrappers over the transport seam
(:mod:`repro.core.transport`), which owns the shard-proxy protocol,
the two-lane architecture and the worker-side command dispatch:

* :func:`_host_main` — the worker process.  It builds one
  :class:`~repro.core.transport.WorkerSession` (a private lock-free
  :class:`~repro.db.Database` replica plus a full
  :class:`~repro.core.engine.CoordinationEngine`) and serves framed
  commands (:mod:`repro.db.wire`) off a duplex pipe; with
  ``control_lane=True`` a dedicated daemon thread
  (:func:`_control_main`) services a second pipe so probes are
  answered mid-``evaluate`` — one GIL switch interval plus a short
  critical section, not a whole component evaluation.

* :class:`ProcessShardExecutor` — the router-side
  :class:`~repro.core.transport.ShardProxy` whose transport is a pair
  of multiprocessing pipes.  It adds only what is pipe-specific:
  process spawning, ``process_alive``, an exit-code-bearing death
  message, and the graceful stop → ``terminate`` → ``kill`` ladder
  (budgeted by :data:`repro.concurrency.SHUTDOWN_GRACE` by default).

Worker death is a first-class failure: a broken pipe marks the shard
dead, rejects its pending handles with a reason naming the crash (so
``wait`` returns and callbacks fire instead of hanging), and raises
:class:`~repro.errors.ConcurrencyError` from the in-flight call —
``drain``/``submit``/``retract`` surface the error, they never hang.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
from typing import Optional

from ..concurrency import SHUTDOWN_GRACE, Deadline
from ..db import Database, wire
from .transport import (
    CONTROL_OPS,
    CONTROL_SWITCH_INTERVAL,
    ShardProxy,
    WorkerSession,
    error_reply,
)

#: Environment override for the multiprocessing start method (testing /
#: platform quirks).  Default: ``forkserver`` where available (cheap
#: per-worker startup, safe with the router's threads), else ``spawn``.
START_METHOD_ENV = "REPRO_PROCEXEC_START_METHOD"

#: Backwards-compatible aliases; the definitions live on the seam.
_CONTROL_OPS = CONTROL_OPS
_CONTROL_SWITCH_INTERVAL = CONTROL_SWITCH_INTERVAL


def _mp_context():
    method = os.environ.get(START_METHOD_ENV)
    if not method:
        method = (
            "forkserver"
            if "forkserver" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
    return multiprocessing.get_context(method)


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------
def _control_main(control, session: WorkerSession) -> None:
    """Control-lane service loop: one daemon thread per worker process.

    Each frame executes under the engine lock, contending only with
    the short plan/commit critical sections of a phased ``evaluate``
    (and with replica sync writes) — never with the expensive unlocked
    run phase.  A broken control pipe retires the lane silently: the
    main lane and its ``stop`` protocol keep working, and process exit
    reaps this daemon thread.
    """
    while True:
        try:
            frame = control.recv_bytes()
        except (EOFError, OSError):
            return
        try:
            reply = session.handle_control(wire.loads(frame))
        except BaseException as error:  # noqa: BLE001 - undecodable frame
            reply = error_reply(error)
        try:
            control.send_bytes(wire.dumps(reply))
        except (EOFError, OSError):
            return


def _host_main(connection, control, options: dict) -> None:
    """Entry point of one shard worker process.

    Builds the session (private lock-free replica + engine), then
    serves framed commands until a ``stop`` command or EOF (router
    gone).  Every main-lane reply carries the resolution records the
    command produced, in resolution order, so the router's handle
    states never lag.  With a ``control`` pipe the worker mirrors the
    thread executor's two-lane split *internally* — see
    :mod:`repro.core.transport` for the architecture and the
    equivalence argument.
    """
    session = WorkerSession(
        check_safety=options["check_safety"],
        reuse_groundings=options["reuse_groundings"],
        reuse_component_states=options["reuse_component_states"],
        plan_cache=options.get("plan_cache", True),
        composite_indexes=options.get("composite_indexes", True),
    )
    if control is not None:
        session.phased = True
        sys.setswitchinterval(CONTROL_SWITCH_INTERVAL)
        threading.Thread(
            target=_control_main,
            args=(control, session),
            name="repro-procexec-control",
            daemon=True,
        ).start()

    while True:
        try:
            frame = connection.recv_bytes()
        except (EOFError, OSError):
            return
        stop = False
        try:
            message = wire.loads(frame)
            reply = session.handle_main(message)
            stop = message.get("op") == "stop"
        except BaseException as error:  # noqa: BLE001 - undecodable frame
            reply = error_reply(error)
        try:
            connection.send_bytes(wire.dumps(reply))
        except (EOFError, OSError):
            return
        if stop:
            return


# ---------------------------------------------------------------------------
# Router side
# ---------------------------------------------------------------------------
class ProcessShardExecutor(ShardProxy):
    """Router-side proxy for one shard engine hosted in a child process.

    The generic proxy protocol — engine surface, two-lane request
    serialization, write-token-gated replica sync, handle mirroring,
    death handling — lives in :class:`~repro.core.transport.ShardProxy`;
    this class supplies the pipe transport and the process lifecycle.
    """

    def __init__(
        self,
        db: Database,
        index: int,
        check_safety: bool = True,
        reuse_groundings: bool = False,
        reuse_component_states: bool = True,
        control_lane: bool = True,
        plan_cache: bool = True,
        composite_indexes: bool = True,
    ) -> None:
        ctx = _mp_context()
        parent_end, child_end = ctx.Pipe(duplex=True)
        if control_lane:
            control_parent, control_child = ctx.Pipe(duplex=True)
        else:
            control_parent = control_child = None
        self._conn = parent_end
        self._control_conn = control_parent
        self._process = ctx.Process(
            target=_host_main,
            args=(
                child_end,
                control_child,
                {
                    "check_safety": check_safety,
                    "reuse_groundings": reuse_groundings,
                    "reuse_component_states": reuse_component_states,
                    "plan_cache": plan_cache,
                    "composite_indexes": composite_indexes,
                },
            ),
            name=f"repro-shard-proc-{index}",
            daemon=True,
        )
        self._process.start()
        child_end.close()
        if control_child is not None:
            control_child.close()
        # Register the write listener only after the spawn succeeded.
        super().__init__(db, index, control_lane=control_lane)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _transact(self, frame: bytes, control: bool = False) -> bytes:
        conn = self._control_conn if control else self._conn
        conn.send_bytes(frame)
        return conn.recv_bytes()

    @property
    def _has_control(self) -> bool:
        return self._control_conn is not None

    def _describe_death(self, error: BaseException) -> str:
        return (
            f"shard {self.index} worker process died "
            f"(exitcode {self._process.exitcode}): {error!r}"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def process_alive(self) -> bool:
        """Whether the shard's worker process is still running."""
        return self._process.is_alive()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def stop(self, timeout: Optional[float] = SHUTDOWN_GRACE) -> bool:
        """Stop the worker process; best-effort within ``timeout``.

        Graceful first (a ``stop`` command, so the worker exits its
        loop cleanly), then ``terminate``, then ``kill`` — the call
        never hangs on a wedged or dead child, and it is idempotent and
        safe to run after a crash.  The default budget is
        :data:`repro.concurrency.SHUTDOWN_GRACE`; pass ``None`` for an
        unbounded wait.  Returns ``True`` when the process is gone on
        return.
        """
        self.db.remove_write_listener(self._listener)
        deadline = Deadline(timeout)
        if not self._stopped and self._dead is None and self._process.is_alive():
            remaining = deadline.remaining()
            acquired = (
                self._io.acquire()
                if remaining is None
                else self._io.acquire(timeout=remaining)
            )
            if acquired:
                try:
                    self._conn.send_bytes(wire.dumps({"op": "stop"}))
                    if self._conn.poll(deadline.remaining()):
                        self._conn.recv_bytes()
                except (EOFError, OSError, ValueError):
                    pass
                finally:
                    self._io.release()
        self._stopped = True
        self._process.join(deadline.remaining())
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(deadline.remaining())
        if self._process.is_alive():  # pragma: no cover - last resort
            self._process.kill()
            self._process.join(deadline.remaining())
        gone = not self._process.is_alive()
        if gone:
            self._conn.close()
            if self._control_conn is not None:
                self._control_conn.close()
        return gone

    def __repr__(self) -> str:
        state = (
            "stopped"
            if self._stopped
            else ("dead" if self._dead else f"pid {self._process.pid}")
        )
        return (
            f"ProcessShardExecutor(shard {self.index}, {state}, "
            f"{len(self._handles)} pending)"
        )
