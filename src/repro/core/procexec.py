"""Process-based shard executor: one engine shard per worker *process*.

The worker-thread executor (:mod:`repro.core.executor`) decouples the
accept path from evaluation, and the replicated storage backend
(:mod:`repro.db.backend`) makes the evaluation phase lock-free — but on
GIL builds the data plane still shares one interpreter.  This module
moves each shard across a process boundary, the way a parallel DBMS
scales its data plane:

* :func:`_host_main` — the worker process.  It owns a private,
  lock-free :class:`~repro.db.Database` replica and a full
  :class:`~repro.core.engine.CoordinationEngine` over it, and serves
  framed commands (:mod:`repro.db.wire`) off a duplex pipe: admission
  deltas, evaluation/flush commands, retraction, component probes, and
  the release/adopt halves of component migration.  Replica sync rides
  the command stream — an evaluation command carries the changed
  relations' serialized row tails, keyed by the same per-relation
  ``data_versions`` stamps the in-process replicated backend diffs.

* :class:`ProcessShardExecutor` — the router-side proxy.  It presents
  the exact engine surface :class:`~repro.core.service.ShardedCoordinationService`
  drives (``admit``/``incident_pending``/``component_of``/``retract``/
  ``evaluate_admitted_phased``/``flush``/``release_component``/
  ``adopt``/…), so the service's routing, component-freeze rule,
  migration, and journal linearization apply unchanged — which is the
  whole equivalence argument: the process run is byte-identical to the
  worker-thread run, which is byte-identical to the serial service and
  the single engine.  Query handles stay **router-side proxy objects**:
  the worker resolves its private handle and ships a *resolution
  record* (:func:`~repro.core.lifecycle.encode_resolution`) back with
  the command reply; the proxy applies it to the caller's handle, so
  ``wait``/callbacks/``status`` — and handle identity across
  migrations — work exactly as in-process.

One command is in flight per worker *per lane* at a time (each pipe is
a strict request/reply channel guarded by a router-side mutex).  Two
lanes exist because their latency profiles must not couple:

* the **main lane** carries the data plane (``evaluate``/``flush``) and
  every command that produces resolution records, in router order;
* the **control lane** (a second duplex pipe, ``control_lane=True``)
  carries cheap control commands — routing probes, ``component_of``,
  ``components``, ``pending``, ``admit`` bookkeeping, and the
  ``release``/``adopt`` halves of migration.  A dedicated worker-side
  thread (:func:`_control_main`) services it under the engine lock,
  while main-lane ``evaluate`` runs the engine's phased plan/run/commit
  split with the lock free during the expensive run phase — the thread
  executor's two-lane architecture, mirrored inside the worker process.
  A probe is therefore answered mid-component (one GIL switch interval
  plus a short critical section), not at the next component boundary.
  Control commands never resolve handles and — by the service's
  component-freeze rule — never touch a component under evaluation, so
  the byte-identical equivalence argument is unchanged.  With
  ``control_lane=False`` the worker stays a single-threaded, lock-free
  request/reply loop: the pre-control-lane blocking path the latency
  benchmark measures against.

Worker death is a first-class failure: a broken pipe marks the shard
dead, rejects its pending handles with a reason naming the crash (so
``wait`` returns and callbacks fire instead of hanging), and raises
:class:`~repro.errors.ConcurrencyError` from the in-flight call —
``drain``/``submit``/``retract`` surface the error, they never hang.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from ..concurrency import Deadline, OwnedLock
from ..db import Database, wire
from ..errors import ConcurrencyError, PreconditionError, ReproError
from .engine import ArrivalOutcome, CoordinationEngine
from .lifecycle import (
    QueryHandle,
    QueryState,
    ResolutionCallback,
    apply_resolution,
    encode_resolution,
)
from .query import EntangledQuery

#: Environment override for the multiprocessing start method (testing /
#: platform quirks).  Default: ``forkserver`` where available (cheap
#: per-worker startup, safe with the router's threads), else ``spawn``.
START_METHOD_ENV = "REPRO_PROCEXEC_START_METHOD"


def _mp_context():
    method = os.environ.get(START_METHOD_ENV)
    if not method:
        method = (
            "forkserver"
            if "forkserver" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
    return multiprocessing.get_context(method)


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------
#: Commands the worker accepts on the control lane.  All are either
#: read-only probes or mutations the component-freeze rule keeps
#: disjoint from any component under evaluation (``admit`` of a new
#: arrival, ``release``/``adopt`` of an *idle* migrating component),
#: and none can resolve handles — control replies never carry
#: resolutions, so resolution ordering stays a main-lane property.
_CONTROL_OPS = frozenset(
    {
        "admit",
        "incident",
        "component_of",
        "components",
        "pending",
        "release",
        "adopt",
    }
)

#: GIL switch interval inside a worker that runs a control thread.
#: The control thread wakes mid-``evaluate`` only at a switch point of
#: the CPU-bound run phase, so the default 5 ms interval would be the
#: floor of every control-lane round trip.
_CONTROL_SWITCH_INTERVAL = 0.001


def _control_main(control, engine: CoordinationEngine) -> None:
    """Control-lane service loop: one daemon thread per worker process.

    Each frame executes under the engine lock, contending only with
    the short plan/commit critical sections of a phased ``evaluate``
    (and with replica sync writes) — never with the expensive unlocked
    run phase.  That bounds a control round trip by one GIL switch
    interval plus one critical section, where boundary polling bounded
    it by a whole component evaluation.  A broken control pipe retires
    the lane silently: the main lane and its ``stop`` protocol keep
    working, and process exit reaps this daemon thread.
    """
    while True:
        try:
            frame = control.recv_bytes()
        except (EOFError, OSError):
            return
        try:
            message = wire.loads(frame)
            op = message.get("op")
            if op not in _CONTROL_OPS:
                raise PreconditionError(
                    f"op {op!r} is not a control-lane command"
                )
            with engine.lock:
                reply = _execute(engine, message)
        except PreconditionError as error:
            reply = {"error": {"kind": "precondition", "message": str(error)}}
        except ReproError as error:
            reply = {"error": {"kind": "repro", "message": str(error)}}
        except BaseException:  # noqa: BLE001 - forwarded to the router
            reply = {
                "error": {"kind": "internal", "message": traceback.format_exc()}
            }
        try:
            control.send_bytes(wire.dumps(reply))
        except (EOFError, OSError):
            return


def _host_main(connection, control, options: dict) -> None:
    """Entry point of one shard worker process.

    Builds the private lock-free replica and its engine, then serves
    framed commands until a ``stop`` command or EOF (router gone).
    Every main-lane reply carries the resolution records the command
    produced, in resolution order, so the router's handle states never
    lag.

    With a ``control`` pipe the worker mirrors the thread executor's
    two-lane split *internally*: a daemon thread (:func:`_control_main`)
    answers control frames under the engine lock, and main-lane
    ``evaluate`` runs through
    :meth:`~repro.core.engine.CoordinationEngine.evaluate_admitted_phased`,
    whose expensive run phase leaves the lock free — so a probe is
    answered mid-frame, mid-component, instead of queueing until the
    next component boundary.  The equivalence argument is the thread
    executor's own: the service's freeze rule keeps everything a
    control command may touch disjoint from the components under
    evaluation, and control commands never resolve handles.  Without a
    control pipe the worker is the original single-threaded blocking
    loop, unchanged.
    """
    replica = Database(synchronized=False)
    engine = CoordinationEngine(
        replica,
        check_safety=options["check_safety"],
        reuse_groundings=options["reuse_groundings"],
        reuse_component_states=options["reuse_component_states"],
    )
    resolutions: List[dict] = []
    engine.on_resolved(lambda handle: resolutions.append(encode_resolution(handle)))

    phased = control is not None
    if phased:
        sys.setswitchinterval(_CONTROL_SWITCH_INTERVAL)
        threading.Thread(
            target=_control_main,
            args=(control, engine),
            name="repro-procexec-control",
            daemon=True,
        ).start()

    while True:
        try:
            frame = connection.recv_bytes()
        except (EOFError, OSError):
            return
        stop = False
        try:
            message = wire.loads(frame)
            sync = message.get("sync")
            if sync is not None:
                # The replica is written only by this thread, but the
                # control thread reads it (admission probes), so writes
                # serialize through the engine lock like any mutation.
                with engine.lock:
                    wire.apply_sync(replica, sync)
            if phased and message.get("op") == "evaluate":
                reply = _evaluate_phased(engine, message)
            else:
                with engine.lock:
                    reply = _execute(engine, message)
            stop = message.get("op") == "stop"
        except PreconditionError as error:
            reply = {"error": {"kind": "precondition", "message": str(error)}}
        except ReproError as error:
            reply = {"error": {"kind": "repro", "message": str(error)}}
        except BaseException:  # noqa: BLE001 - forwarded to the router
            reply = {
                "error": {"kind": "internal", "message": traceback.format_exc()}
            }
        reply["resolutions"] = list(resolutions)
        resolutions.clear()
        try:
            connection.send_bytes(wire.dumps(reply))
        except (EOFError, OSError):
            return
        if stop:
            return


def _evaluate_phased(engine: CoordinationEngine, message: dict) -> dict:
    """Main-lane ``evaluate`` while a control thread is live.

    Handle lookup and the reply build bracket the engine lock; the run
    phase inside ``evaluate_admitted_phased`` leaves it free, which is
    what lets the control thread answer mid-frame.  Outcomes are
    byte-identical to the plain ``evaluate_admitted`` path — the freeze
    rule keeps the evaluated components untouched between plan and
    commit (see the engine docstring).
    """
    with engine.lock:
        handles = [
            handle
            for name in message["names"]
            if (handle := engine.handle(name)) is not None
        ]
    engine.evaluate_admitted_phased(handles)
    with engine.lock:
        return {
            "outcomes": [
                {
                    "query": handle.query,
                    "component": list(handle.outcome.component),
                    "result": wire.encode_result(handle.outcome.result),
                    "satisfied": list(handle.outcome.satisfied),
                }
                for handle in handles
                if handle.outcome is not None
            ]
        }


def _execute(engine: CoordinationEngine, message: dict) -> dict:
    """Run one router command against the worker's private engine.

    Callers hold the engine lock (main thread and control thread share
    the engine once a control thread exists)."""
    op = message["op"]
    if op == "admit":
        query = wire.decode_query(message["query"])
        engine.admit(query)
        return {"component": list(engine.component_of(query.name))}
    if op == "incident":
        query = wire.decode_query(message["query"])
        return {"names": list(engine.incident_pending(query))}
    if op == "component_of":
        return {"names": list(engine.component_of(message["name"]))}
    if op == "components":
        return {"components": [list(c) for c in engine.components()]}
    if op == "evaluate":
        handles = [
            handle
            for name in message["names"]
            if (handle := engine.handle(name)) is not None
        ]
        engine.evaluate_admitted(handles)
        return {
            "outcomes": [
                {
                    "query": handle.query,
                    "component": list(handle.outcome.component),
                    "result": wire.encode_result(handle.outcome.result),
                    "satisfied": list(handle.outcome.satisfied),
                }
                for handle in handles
                if handle.outcome is not None
            ]
        }
    if op == "flush":
        return {"result": wire.encode_result(engine.flush())}
    if op == "retract":
        engine.retract(message["name"])
        return {}
    if op == "release":
        released = engine.release_component(message["name"])
        return {"names": [handle.query for handle in released]}
    if op == "adopt":
        queries = [wire.decode_query(q) for q in message["queries"]]
        engine.adopt([QueryHandle(query) for query in queries])
        return {}
    if op == "pending":
        return {"names": list(engine.pending())}
    if op == "stop":
        return {}
    raise PreconditionError(f"unknown worker command {op!r}")


# ---------------------------------------------------------------------------
# Router side
# ---------------------------------------------------------------------------
class ProcessShardExecutor:
    """Router-side proxy for one shard engine hosted in a child process.

    Duck-types the :class:`~repro.core.engine.CoordinationEngine`
    surface the sharded service drives, so the service's control plane
    — routing probes, admission, the component-freeze rule, two-phase
    migration, journaling — is executor-agnostic.  All caller-visible
    :class:`~repro.core.lifecycle.QueryHandle` objects live on this
    side; the worker's private handles never cross the boundary (their
    resolutions do, as records).

    Replica sync is write-token gated exactly like the in-process
    replicated backend: a listener on the authoritative database bumps
    the token on every facade write, and the next ``evaluate``/``flush``
    command whose token moved carries a :func:`repro.db.wire.build_sync`
    payload of the changed relations' row tails.
    """

    def __init__(
        self,
        db: Database,
        index: int,
        check_safety: bool = True,
        reuse_groundings: bool = False,
        reuse_component_states: bool = True,
        control_lane: bool = True,
    ) -> None:
        self.db = db
        self.index = index
        #: Whether this shard has the second (control) pipe.  ``False``
        #: is the pre-control-lane blocking path, kept for the latency
        #: benchmark's before/after comparison.
        self.control_lane = control_lane
        #: Structure-lock parity with :class:`CoordinationEngine`: the
        #: service brackets engine calls in ``with engine.lock``; for a
        #: proxy the pipe mutexes below do the real serialization.
        self.lock = OwnedLock()
        self._io = threading.Lock()
        self._control_io = threading.Lock()
        self._handles: Dict[str, QueryHandle] = {}
        self._callbacks: List[ResolutionCallback] = []
        #: Component memo from the last ``admit`` reply — valid only
        #: until the next state-changing command (components can merge).
        self._component_hint: Dict[str, Tuple[str, ...]] = {}
        self._stamps: Dict[str, int] = {}
        self._token = 0
        self._synced_token = -1
        self._token_mutex = threading.Lock()
        self._dead: Optional[str] = None
        self._stopped = False
        # Serializes the death transition: several threads can observe
        # a broken pipe at once, but only the first may reject the
        # orphaned handles (callbacks must fire exactly once).
        self._fail_mutex = threading.Lock()

        ctx = _mp_context()
        parent_end, child_end = ctx.Pipe(duplex=True)
        if control_lane:
            control_parent, control_child = ctx.Pipe(duplex=True)
        else:
            control_parent = control_child = None
        self._conn = parent_end
        self._control_conn = control_parent
        self._process = ctx.Process(
            target=_host_main,
            args=(
                child_end,
                control_child,
                {
                    "check_safety": check_safety,
                    "reuse_groundings": reuse_groundings,
                    "reuse_component_states": reuse_component_states,
                },
            ),
            name=f"repro-shard-proc-{index}",
            daemon=True,
        )
        self._process.start()
        child_end.close()
        if control_child is not None:
            control_child.close()
        self._listener = self._note_write
        db.add_write_listener(self._listener)

    # ------------------------------------------------------------------
    # Invalidation (authoritative-store write listener)
    # ------------------------------------------------------------------
    def _note_write(self) -> None:
        with self._token_mutex:
            self._token += 1

    # ------------------------------------------------------------------
    # Introspection / local state
    # ------------------------------------------------------------------
    @property
    def process_alive(self) -> bool:
        """Whether the shard's worker process is still running."""
        return self._process.is_alive()

    def pending(self) -> Tuple[str, ...]:
        """Names of queries currently pending on this shard."""
        return tuple(self._handles)

    def handle(self, name: str) -> Optional[QueryHandle]:
        """The live (router-side) handle of a pending query."""
        return self._handles.get(name)

    def probe_pending(self) -> Tuple[str, ...]:
        """Pending names read on the *worker*, over the control lane.

        Unlike :meth:`pending` (a local table read), this is a real
        IPC round trip — the service's control-lane latency probe.
        """
        reply = self._control_request({"op": "pending"})
        return tuple(reply["names"])

    def on_resolved(self, callback: ResolutionCallback) -> ResolutionCallback:
        """Register a proxy-level resolution callback (service hook)."""
        self._callbacks.append(callback)
        return callback

    # ------------------------------------------------------------------
    # Engine surface (IPC-backed)
    # ------------------------------------------------------------------
    def admit(self, query: EntangledQuery) -> QueryHandle:
        """Admit one arrival on the worker; returns the proxy handle.

        Rides the control lane: admission bookkeeping must not queue
        behind an in-flight ``evaluate`` frame.  Safe mid-evaluation
        because the service's freeze rule guarantees the arrival touches
        no component under evaluation, and the worker only services the
        lane at engine-consistent points.
        """
        reply = self._control_request(
            {"op": "admit", "query": wire.encode_query(query)}
        )
        handle = QueryHandle(query)
        self._handles[query.name] = handle
        self._component_hint = {query.name: tuple(reply["component"])}
        return handle

    def incident_pending(self, query: EntangledQuery) -> Tuple[str, ...]:
        """Read-only probe: pending queries the arrival would touch."""
        reply = self._control_request(
            {"op": "incident", "query": wire.encode_query(query)}
        )
        return tuple(reply["names"])

    def component_of(self, name: str) -> Tuple[str, ...]:
        """The weak component of a pending query, sorted by name."""
        if name not in self._handles:
            raise PreconditionError(f"query {name!r} is not pending")
        hint = self._component_hint.get(name)
        if hint is not None:
            return hint
        reply = self._control_request({"op": "component_of", "name": name})
        return tuple(reply["names"])

    def components(self) -> List[Tuple[str, ...]]:
        """All weak components of this shard's pending pool."""
        reply = self._control_request({"op": "components"})
        return [tuple(component) for component in reply["components"]]

    def retract(self, name: str) -> QueryHandle:
        """Withdraw one pending query; resolves its proxy handle."""
        if name not in self._handles:
            raise PreconditionError(f"query {name!r} is not pending")
        handle = self._handles[name]
        self._component_hint = {}
        self._request({"op": "retract", "name": name})
        return handle

    def evaluate_admitted(
        self, admitted: Sequence[QueryHandle], between=None
    ) -> None:
        """Evaluate the admitted handles' components on the worker.

        ``between`` (the thread executor's control-lane yield hook) is
        accepted for surface parity and ignored: the worker *process*
        services its own control pipe from a dedicated thread, and the
        router-side mailbox thread is already free while it blocks on
        the reply.
        """
        if not admitted:
            return
        self._component_hint = {}
        self._request(
            {"op": "evaluate", "names": [h.query for h in admitted]},
            sync=True,
        )

    # The worker process is single-owner, so there is no phased/unlocked
    # variant to speak of — the shard worker thread blocks on the reply
    # while the expensive work runs in the other *process*.
    evaluate_admitted_phased = evaluate_admitted

    def flush(self):
        """One global evaluation run on the worker's pending pool."""
        self._component_hint = {}
        reply = self._request({"op": "flush"}, sync=True)
        return wire.decode_result(reply["result"])

    def release_component(self, name: str) -> List[QueryHandle]:
        """Migration phase 1: detach a component, handles stay pending."""
        if name not in self._handles:
            raise PreconditionError(f"query {name!r} is not pending")
        self._component_hint = {}
        # Control lane: the freeze rule guarantees a migrating
        # component is idle, so releasing it between two component
        # evaluations is safe — and a rebalance under load must not
        # park the router behind a grinding evaluate frame.
        reply = self._control_request({"op": "release", "name": name})
        released: List[QueryHandle] = []
        for member in reply["names"]:
            handle = self._handles.pop(member, None)
            if handle is None:
                raise ConcurrencyError(
                    f"shard {self.index} released unknown query {member!r} "
                    "(router and worker handle tables desynced)"
                )
            released.append(handle)
        return released

    def adopt(self, handles: Sequence[QueryHandle]) -> None:
        """Migration phase 2: re-home released handles onto this shard."""
        if not handles:
            return
        self._component_hint = {}
        # Control lane, like release: adopted components are idle by
        # the freeze rule, and their replica rows sync lazily at the
        # next evaluate's plan phase.
        self._control_request(
            {
                "op": "adopt",
                "queries": [wire.encode_query(h.entangled) for h in handles],
            }
        )
        for handle in handles:
            self._handles[handle.query] = handle

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, message: dict, sync: bool = False) -> dict:
        """One framed request/reply round trip (serialized per shard)."""
        failure: Optional[BaseException] = None
        reply: dict = {}
        with self._io:
            self._check_alive()
            if sync:
                # Token before stamp walk (a write landing mid-build
                # leaves the recorded token stale, so the next command
                # re-syncs — never the reverse).
                token = self._token
                if token != self._synced_token:
                    payload, self._stamps = wire.build_sync(self.db, self._stamps)
                    if payload is not None:
                        message["sync"] = payload
                    self._synced_token = token
            try:
                self._conn.send_bytes(wire.dumps(message))
                reply = wire.loads(self._conn.recv_bytes())
            except (EOFError, OSError) as error:
                failure = error
        if failure is not None:
            self._fail(failure)
        self._apply_reply(reply)
        self._raise_reply_error(reply)
        return reply

    def _control_request(self, message: dict) -> dict:
        """One round trip on the control lane (falls back to the main pipe).

        Serialized by its own mutex, so a probe/admit never waits behind
        an in-flight ``evaluate`` frame on the main lane — the latency
        decoupling this executor's control lane exists for.  Control
        replies carry no resolutions (control commands cannot resolve
        handles), so there is nothing to apply.
        """
        if self._control_conn is None:
            return self._request(message)
        failure: Optional[BaseException] = None
        reply: dict = {}
        with self._control_io:
            self._check_alive()
            try:
                self._control_conn.send_bytes(wire.dumps(message))
                reply = wire.loads(self._control_conn.recv_bytes())
            except (EOFError, OSError) as error:
                failure = error
        if failure is not None:
            self._fail(failure)
        self._raise_reply_error(reply)
        return reply

    def _raise_reply_error(self, reply: dict) -> None:
        error = reply.get("error")
        if error is not None:
            if error["kind"] == "precondition":
                raise PreconditionError(error["message"])
            if error["kind"] == "repro":
                raise ReproError(error["message"])
            raise ConcurrencyError(
                f"shard {self.index} worker command failed:\n{error['message']}"
            )

    def _apply_reply(self, reply: dict) -> None:
        """Mirror the worker's outcomes and resolutions onto proxy handles.

        Outcomes first (the engine records an admitted handle's outcome
        before retiring its coordinating set), then resolutions in the
        worker's resolution order.  Handle state transitions run the
        ordinary :class:`QueryHandle` resolution path, so ``wait``,
        callbacks and the dispatcher seam behave exactly as in-process.
        """
        for record in reply.get("outcomes", ()):
            handle = self._handles.get(record["query"])
            if handle is not None:
                handle.outcome = ArrivalOutcome(
                    record["query"],
                    tuple(record["component"]),
                    wire.decode_result(record["result"]),
                    tuple(record["satisfied"]),
                )
        for record in reply.get("resolutions", ()):
            handle = self._handles.pop(record["query"], None)
            if handle is None:
                continue
            apply_resolution(handle, record)
            for callback in list(self._callbacks):
                callback(handle)

    def _check_alive(self) -> None:
        if self._stopped:
            raise ConcurrencyError(
                f"shard {self.index} worker process is stopped"
            )
        if self._dead is not None:
            raise ConcurrencyError(self._dead)

    def _fail(self, error: BaseException) -> None:
        """Handle worker death: reject pending handles, raise loudly.

        Called outside the pipe mutex so handle callbacks (which may
        re-enter the service in serial mode) cannot deadlock against an
        in-flight request.  Idempotent under races: the death
        transition is mutex-guarded, so of several threads observing
        the broken pipe at once exactly one rejects the orphaned
        handles (callbacks fire once per handle); the rest re-raise.
        """
        orphans: List[QueryHandle] = []
        with self._fail_mutex:
            if self._dead is None:
                exitcode = self._process.exitcode
                self._dead = (
                    f"shard {self.index} worker process died "
                    f"(exitcode {exitcode}): {error!r}"
                )
                orphans = list(self._handles.values())
                self._handles.clear()
                self._component_hint = {}
        for handle in orphans:
            try:
                handle._resolve(QueryState.REJECTED, reason=self._dead)
            except RuntimeError:  # pragma: no cover - already resolved
                continue
            for callback in list(self._callbacks):
                callback(handle)
        raise ConcurrencyError(self._dead) from error

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def stop(self, timeout: Optional[float] = None) -> bool:
        """Stop the worker process; best-effort within ``timeout``.

        Graceful first (a ``stop`` command, so the worker exits its
        loop cleanly), then ``terminate``, then ``kill`` — the call
        never hangs on a wedged or dead child, and it is idempotent and
        safe to run after a crash.  Returns ``True`` when the process
        is gone on return.
        """
        self.db.remove_write_listener(self._listener)
        deadline = Deadline(timeout)
        if not self._stopped and self._dead is None and self._process.is_alive():
            remaining = deadline.remaining()
            acquired = (
                self._io.acquire()
                if remaining is None
                else self._io.acquire(timeout=remaining)
            )
            if acquired:
                try:
                    self._conn.send_bytes(wire.dumps({"op": "stop"}))
                    if self._conn.poll(deadline.remaining()):
                        self._conn.recv_bytes()
                except (EOFError, OSError, ValueError):
                    pass
                finally:
                    self._io.release()
        self._stopped = True
        self._process.join(deadline.remaining())
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(deadline.remaining())
        if self._process.is_alive():  # pragma: no cover - last resort
            self._process.kill()
            self._process.join(deadline.remaining())
        gone = not self._process.is_alive()
        if gone:
            self._conn.close()
            if self._control_conn is not None:
                self._control_conn.close()
        return gone

    def __repr__(self) -> str:
        state = (
            "stopped"
            if self._stopped
            else ("dead" if self._dead else f"pid {self._process.pid}")
        )
        return (
            f"ProcessShardExecutor(shard {self.index}, {state}, "
            f"{len(self._handles)} pending)"
        )
