"""The SCC Coordination Algorithm (Section 4 of the paper).

For a *safe* set of entangled queries — uniqueness **not** required —
the algorithm finds a coordinating set whenever one exists:

1. (Preprocessing, per the implementation notes of Section 6.1)
   iteratively remove every query with a postcondition that no
   remaining head can satisfy.
2. Build the coordination graph, contract its strongly connected
   components, and obtain the components DAG ``G'``.
3. Process ``G'`` in reverse topological order.  For each component:
   fail if any successor failed; otherwise unify the component's
   queries with the combined queries of its successors (by safety every
   postcondition has exactly one matching head).  Issue the combined
   conjunctive query to the database; on success record the candidate
   coordinating set ``R(q)`` (all queries in components reachable from
   this one) with its grounding.
4. Return the largest recorded candidate (or apply a caller-supplied
   selection criterion).

Guarantee (paper, end of Section 4): the algorithm returns a maximum
size coordinating set among ``{R(q) | q ∈ Q}``.  Finding the overall
maximum is NP-hard (Theorem 2), so this is the strongest tractable
guarantee available.

Cost model: at most one database query per component (≤ ``|Q|``), one
unification per extended edge, and quadratic graph bookkeeping —
asserted by tests via :class:`~repro.db.CoordinationStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from ..db import ConjunctiveQuery, CoordinationStats, Database
from ..errors import PreconditionError
from ..graphs import condensation
from ..logic import Atom, Substitution, Variable, apply_substitution_all
from .coordination_graph import CoordinationGraph
from .properties import safety_report
from .query import EntangledQuery
from .result import CoordinatingSet, CoordinationResult
from .semantics import complete_assignment
from .trace import ComponentProcessed, PreprocessingRemoved, SelectionMade, Trace

SelectionCriterion = Callable[[Sequence[CoordinatingSet]], Optional[CoordinatingSet]]


def largest_candidate(
    candidates: Sequence[CoordinatingSet],
) -> Optional[CoordinatingSet]:
    """Default selection criterion: maximum size, ties broken by name order.

    The paper notes applications may prefer other criteria (most gold
    status passengers, contains a VIP query, ...); pass any callable of
    the same shape as ``choose`` to :func:`scc_coordinate`.
    """
    if not candidates:
        return None
    return max(candidates, key=lambda c: (c.size, tuple(sorted(c.members))))


def containing_query(name: str) -> SelectionCriterion:
    """Selection criterion factory: prefer sets containing ``name``.

    Falls back to the largest candidate when no candidate contains the
    given query (mirroring the paper's VIP example).
    """

    def choose(candidates: Sequence[CoordinatingSet]) -> Optional[CoordinatingSet]:
        vip = [c for c in candidates if name in c]
        return largest_candidate(vip if vip else candidates)

    return choose


@dataclass
class PreprocessResult:
    """Outcome of the postcondition-satisfiability preprocessing."""

    graph: CoordinationGraph
    removed: Tuple[str, ...]


def preprocess(graph: CoordinationGraph) -> PreprocessResult:
    """Iteratively remove queries with an unsatisfiable postcondition.

    A postcondition atom is unsatisfiable when no head atom of the
    *remaining* set unifies with it.  Removal cascades: dropping a query
    removes its heads, which may orphan other queries' postconditions.
    """
    alive: Set[str] = set(graph.queries)
    # Count, per postcondition, how many live heads it can use.
    edge_count: Dict[Tuple[str, int], int] = {}
    incoming: Dict[str, List[Tuple[str, int]]] = {name: [] for name in alive}
    for edge in graph.extended_edges:
        edge_count[(edge.source, edge.post_index)] = (
            edge_count.get((edge.source, edge.post_index), 0) + 1
        )
        incoming[edge.target].append((edge.source, edge.post_index))

    worklist: List[str] = []
    for name, query in graph.queries.items():
        for pi in range(len(query.postconditions)):
            if edge_count.get((name, pi), 0) == 0:
                worklist.append(name)
                break

    removed: List[str] = []
    while worklist:
        name = worklist.pop()
        if name not in alive:
            continue
        alive.discard(name)
        removed.append(name)
        for source, post_index in incoming[name]:
            if source not in alive:
                continue
            edge_count[(source, post_index)] -= 1
            if edge_count[(source, post_index)] == 0:
                worklist.append(source)

    if not removed:
        return PreprocessResult(graph, ())
    return PreprocessResult(graph.restricted_to(alive), tuple(removed))


@dataclass
class _ComponentState:
    """Per-component bookkeeping during the reverse-topological pass."""

    failed: bool = False
    substitution: Optional[Substitution] = None
    involved: Tuple[str, ...] = ()
    solution: Optional[Dict[Variable, Hashable]] = None
    assignment: Optional[Dict[Variable, Hashable]] = None
    # Outcome tag for trace narration when this state is reused from the
    # cross-arrival cache: 'ok' | 'unification-failed' | 'db-failed'.
    status: str = ""
    # True when ``assignment`` contains active-domain filler values
    # (free variables completed with min(domain)) — directly or
    # inherited from a successor's assignment.  Such an assignment
    # depends on the WHOLE database, not just the closure's body
    # relations: any insert can change the domain minimum, so the
    # engine's per-relation cache eviction must treat the entry as
    # touching every relation (see _StateCache in repro.core.engine).
    domain_filled: bool = False


# Cache for memoizing component states across engine arrivals, keyed by
# the SCC's member set; the entry stores the reachable closure R(q) it
# was computed under, and a hit requires the closure to match exactly.
# Soundness: arrivals only ever add edges incident to newcomers (two
# existing queries never gain a new edge), so an unchanged (members,
# closure) pair implies an unchanged induced closure subgraph — except
# across *deletions*.  A satisfied set is a downward-closed closure, and
# its removal can kill edges out of surviving SCCs; the engine therefore
# evicts every entry whose stored closure intersects a deleted set
# (:meth:`CoordinationEngine._forget_states`), and stamps the cache
# against :meth:`~repro.db.Database.data_version`.  Keying by members
# alone also bounds the cache: a component whose closure grows replaces
# its entry in place, so entries accumulate only when SCC member-sets
# themselves change (e.g. a newcomer merging into a cycle leaves the old
# singleton keys behind until a deletion evicts them or the engine's
# size cap clears the cache) — bounded by the distinct SCC member-sets
# seen since the last invalidation, not by the arrival count.
ComponentKey = frozenset
ComponentCache = Dict[ComponentKey, Tuple[Tuple[str, ...], _ComponentState]]


def scc_coordinate(
    db: Database,
    queries: Iterable[EntangledQuery],
    choose: SelectionCriterion = largest_candidate,
    check_safety: bool = True,
    run_preprocessing: bool = True,
    trace: Optional[Trace] = None,
    reuse_groundings: bool = False,
) -> CoordinationResult:
    """Run the SCC Coordination Algorithm on a safe query set.

    Parameters
    ----------
    db:
        Database instance.
    queries:
        The query set (must be safe; uniqueness not required).
    choose:
        Selection criterion applied to the recorded candidate sets.
    check_safety:
        Verify Definition 2 up front and raise
        :class:`~repro.errors.PreconditionError` on violation.  The
        reverse-topological pass silently uses the first matching head
        if disabled, which loses the algorithm's guarantee.
    run_preprocessing:
        Enable the iterative unsatisfiable-postcondition removal (kept
        switchable for the ablation benchmark).
    trace:
        Optional :class:`~repro.core.trace.Trace` receiving structured
        events (the paper-style narration of the run).
    reuse_groundings:
        Fast path: seed each component's combined query with its
        successors' existing groundings, evaluating only the
        component's own body atoms.  When the seed conflicts (new
        unifications force different values than the successors chose)
        the full combined query is issued instead, so the guarantee is
        unchanged; at most one extra database query per component is
        paid in the worst case.  This mirrors the cost profile of the
        paper's implementation, where per-query round-trip latency (not
        join size) dominated.
    """
    graph = CoordinationGraph.build(queries)
    if check_safety:
        report = safety_report(graph)
        if not report.is_safe:
            raise PreconditionError(
                f"query set is not safe (unsafe: {report.unsafe_queries()})"
            )
    return scc_coordinate_on_graph(
        db,
        graph,
        choose=choose,
        run_preprocessing=run_preprocessing,
        trace=trace,
        reuse_groundings=reuse_groundings,
    )


def scc_coordinate_on_graph(
    db: Database,
    graph: CoordinationGraph,
    choose: SelectionCriterion = largest_candidate,
    run_preprocessing: bool = True,
    trace: Optional[Trace] = None,
    reuse_groundings: bool = False,
    component_cache: Optional[ComponentCache] = None,
) -> CoordinationResult:
    """The algorithm proper, on an already-built coordination graph.

    Split out so the benchmark for Figure 6 can time graph construction
    and preprocessing separately from evaluation.

    ``component_cache`` (optional) memoizes per-SCC states *across*
    calls: a component whose members and reachable closure are unchanged
    since a previous run reuses its substitution, grounding, and
    success/failure verdict without re-unifying or re-querying the
    database.  The caller owns invalidation — the online engine keys
    its cache by a database version stamp and drops entries whose
    closure intersects a satisfied (deleted) coordinating set.  Results
    are identical to an uncached run on the same graph and database.
    """
    stats = CoordinationStats(
        graph_nodes=graph.graph.node_count(),
        graph_edges=graph.graph.edge_count(),
    )
    if run_preprocessing:
        pre = preprocess(graph)
        graph = pre.graph
        stats.preprocessing_removed = len(pre.removed)
        if trace is not None:
            trace.add(PreprocessingRemoved(pre.removed))
    if not graph.queries:
        return CoordinationResult(None, [], stats)

    cond = condensation(graph.graph)
    stats.scc_count = cond.component_count

    states: List[_ComponentState] = [
        _ComponentState() for _ in range(cond.component_count)
    ]
    candidates: List[CoordinatingSet] = []

    for component in cond.reverse_topological_order():
        state = states[component]
        members = cond.members(component)
        successors = sorted(cond.dag.successors(component))
        if any(states[s].failed for s in successors):
            state.failed = True
            if trace is not None:
                trace.add(
                    ComponentProcessed(
                        component, tuple(members), (), "successor-failed"
                    )
                )
            continue

        involved = tuple(sorted(cond.reachable_nodes(component), key=str))
        cache_key: Optional[ComponentKey] = None
        if component_cache is not None:
            cache_key = frozenset(members)
            entry = component_cache.get(cache_key)
            if entry is not None and entry[0] == involved:
                cached = entry[1]
                states[component] = cached
                stats.extra["component_cache_hits"] = (
                    stats.extra.get("component_cache_hits", 0) + 1
                )
                if not cached.failed and cached.assignment is not None:
                    candidates.append(
                        CoordinatingSet(cached.involved, cached.assignment)
                    )
                    if trace is not None:
                        trace.add(
                            ComponentProcessed(
                                component,
                                tuple(members),
                                cached.involved,
                                "cached:ok",
                                0,
                            )
                        )
                elif cached.failed and trace is not None:
                    trace.add(
                        ComponentProcessed(
                            component,
                            tuple(members),
                            (),
                            f"cached:{cached.status or 'db-failed'}",
                        )
                    )
                # A non-failed state with no assignment emitted no event
                # in the original run either; stay silent to match.
                continue

        # Merge the symbolic substitutions of all successors.  Shared
        # grand-successors contribute identical constraints twice, which
        # the union–find merge absorbs.
        substitution = Substitution()
        merge_ok = True
        for successor in successors:
            successor_sub = states[successor].substitution
            assert successor_sub is not None
            if not substitution.merge(successor_sub):
                merge_ok = False
                break
        if not merge_ok:
            state.failed = True
            continue

        # Unify this component's queries into the combined substitution:
        # every postcondition of a member follows its unique (safety!)
        # extended edge to a head inside R(component).
        unified = True
        for name in members:
            query = graph.standardized[name]
            for pi in range(len(query.postconditions)):
                edges = graph.edges_from_postcondition(name, pi)
                if not edges:
                    unified = False
                    break
                edge = edges[0]
                stats.unifications += 1
                post = graph.post_atom(edge)
                head = graph.head_atom(edge)
                for pt, ht in zip(post.terms, head.terms):
                    if not substitution.unify_terms(pt, ht):
                        stats.unification_failures += 1
                        unified = False
                        break
                if not unified:
                    break
            if not unified:
                break
        if not unified:
            state.failed = True
            state.status = "unification-failed"
            if cache_key is not None:
                component_cache[cache_key] = (involved, state)
            if trace is not None:
                trace.add(
                    ComponentProcessed(
                        component, tuple(members), (), "unification-failed"
                    )
                )
            continue

        assignment: Optional[Dict[Variable, Hashable]] = None
        solution: Optional[Dict[Variable, Hashable]] = None
        domain_filled = False
        if reuse_groundings and successors:
            assignment, domain_filled = _seeded_assignment(
                db,
                graph,
                members,
                involved,
                substitution,
                [states[s] for s in successors],
                stats,
            )
        if assignment is None:
            combined_body: List[Atom] = []
            for name in involved:
                combined_body.extend(graph.standardized[name].body)
            rewritten = apply_substitution_all(combined_body, substitution)
            stats.db_queries += 1
            solution = db.first_solution(ConjunctiveQuery(tuple(rewritten)))
            if solution is None:
                state.failed = True
                state.status = "db-failed"
                if cache_key is not None:
                    component_cache[cache_key] = (involved, state)
                if trace is not None:
                    trace.add(
                        ComponentProcessed(
                            component, tuple(members), involved, "db-failed", 1
                        )
                    )
                continue
            assignment, domain_filled = _assignment_for(
                db, graph, involved, substitution, solution
            )

        state.substitution = substitution
        state.involved = involved
        state.solution = solution
        state.assignment = assignment
        state.domain_filled = assignment is not None and domain_filled
        if cache_key is not None:
            component_cache[cache_key] = (involved, state)
        if assignment is not None:
            candidates.append(CoordinatingSet(involved, assignment))
            if trace is not None:
                trace.add(
                    ComponentProcessed(
                        component, tuple(members), involved, "ok", 1
                    )
                )

    stats.candidate_sets = len(candidates)
    chosen = choose(candidates)
    if trace is not None:
        if chosen is None:
            trace.add(SelectionMade("no coordinating set exists"))
        else:
            trace.add(
                SelectionMade(
                    f"largest of {len(candidates)} candidate(s): "
                    f"{chosen} (size {chosen.size})"
                )
            )
    return CoordinationResult(chosen, candidates, stats)


def _seeded_assignment(
    db: Database,
    graph: CoordinationGraph,
    members: Sequence[str],
    involved: Tuple[str, ...],
    substitution: Substitution,
    successor_states: Sequence[_ComponentState],
    stats: CoordinationStats,
) -> Tuple[Optional[Dict[Variable, Hashable]], bool]:
    """Grounding-reuse fast path for one component.

    Merges the successors' stored assignments into a seed, checks it
    against the (possibly newly merged) unification classes, and
    evaluates only the component members' own body atoms under the
    seed.  Returns ``(assignment, domain_filled)``: a total assignment
    over ``involved`` (or ``None`` when the seed conflicts or the
    members' atoms cannot be satisfied under it — in which case the
    caller falls back to the full combined query, preserving the
    algorithm's guarantee) plus whether it contains active-domain
    filler values, its own or inherited from a successor.
    """
    seed: Dict[Variable, Hashable] = {}
    for state in successor_states:
        if state.assignment is None:
            return None, False
        for variable, value in state.assignment.items():
            if seed.get(variable, value) != value:
                return None, False  # two successors grounded a shared query differently
            seed[variable] = value

    # Project the seed onto current unification representatives.
    bound: Dict[Variable, Hashable] = {}
    for variable, value in seed.items():
        representative = substitution.resolve(variable)
        if isinstance(representative, Variable):
            if bound.get(representative, value) != value:
                return None, False  # a new unification merged differently-grounded classes
            bound[representative] = value
        elif representative.value != value:
            return None, False  # a new unification pinned a constant the seed contradicts

    member_atoms: List[Atom] = []
    for name in members:
        member_atoms.extend(graph.standardized[name].body)
    rewritten = apply_substitution_all(member_atoms, substitution)
    stats.db_queries += 1
    stats.extra["seeded_queries"] = stats.extra.get("seeded_queries", 0) + 1
    solution = db.first_solution(ConjunctiveQuery(tuple(rewritten)), initial=bound)
    if solution is None:
        return None, False

    partial: Dict[Variable, Hashable] = dict(seed)
    for name in members:
        for variable in graph.standardized[name].variables():
            representative = substitution.resolve(variable)
            if isinstance(representative, Variable):
                if representative in solution:
                    partial[variable] = solution[representative]
            else:
                partial[variable] = representative.value
    domain_filled = any(s.domain_filled for s in successor_states) or _has_gaps(
        graph, involved, partial
    )
    return complete_assignment(db, graph.queries, involved, partial), domain_filled


def _has_gaps(
    graph: CoordinationGraph,
    involved: Tuple[str, ...],
    partial: Dict[Variable, Hashable],
) -> bool:
    """Whether ``partial`` leaves variables for the domain filler."""
    return any(
        variable not in partial
        for name in involved
        for variable in graph.standardized[name].variables()
    )


def _assignment_for(
    db: Database,
    graph: CoordinationGraph,
    involved: Tuple[str, ...],
    substitution: Substitution,
    solution: Dict[Variable, Hashable],
) -> Tuple[Optional[Dict[Variable, Hashable]], bool]:
    """Total assignment over ``involved`` from MGU + body grounding,
    plus whether the domain filler had to complete it."""
    partial: Dict[Variable, Hashable] = {}
    for name in involved:
        for variable in graph.standardized[name].variables():
            representative = substitution.resolve(variable)
            if isinstance(representative, Variable):
                if representative in solution:
                    partial[variable] = solution[representative]
            else:
                partial[variable] = representative.value
    domain_filled = _has_gaps(graph, involved, partial)
    return complete_assignment(db, graph.queries, involved, partial), domain_filled
