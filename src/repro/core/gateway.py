"""Async network gateway: the service's low-latency serving front.

:class:`Gateway` puts a real network edge in front of a
:class:`~repro.core.service.ShardedCoordinationService`: an
``asyncio`` socket server speaking length-prefixed
:mod:`repro.db.wire` frames (the same versioned, CRC-checked,
pickle-free codec the process executor uses on its pipes — a 4-byte
big-endian length prefix is all the stream transport adds).  Clients
submit entangled queries, retract, insert facts, and flush; the
gateway translates request bursts into
:meth:`~repro.core.service.ShardedCoordinationService.submit_many_nowait`
batches and streams **resolution records**
(:func:`~repro.core.lifecycle.encode_resolution`) back as handles
resolve, via the handles' ordinary ``on_resolved`` callbacks.

Latency model
-------------
The admission reply is sent as soon as the service admits the query —
routing, migration, safety — never after its evaluation: arrival-to-
admission latency is decoupled from evaluation latency end to end
(the per-worker control lane keeps it so inside the executors; this
module keeps it so at the edge).  Resolution arrives later as an
*event frame* carrying the resolution record.

Backpressure
------------
Bounded everywhere, by construction:

* each connection's **admission queue** is bounded (``max_inflight``);
  when a client has that many admissions in flight the reader task
  stops reading its socket — TCP backpressure reaches the client, the
  gateway never buffers an unbounded request backlog;
* admissions run on a small shared thread pool (the event loop never
  blocks on the service's freeze-rule waits or mailbox bounds);
* the **outbound queue** holds only admission replies (≤ in-flight
  cap) plus resolution events for this connection's still-unresolved
  submissions — a count the client controls, never other clients'
  traffic.  The writer task awaits ``drain()`` after every frame, so a
  slow reader throttles its own stream and nobody else's.

A client that disconnects mid-stream leaks nothing: its handles keep
resolving inside the service (resolution is a service-side fact, not a
delivery), its event callbacks become no-ops, and its tasks and socket
are torn down — asserted by the test suite's leaked-socket/task
fixture.

Protocol
--------
Requests are frames ``{"op": ..., "id": N, ...}``; every request gets
exactly one reply frame ``{"id": N, "ok": true/false, ...}`` (errors
carry ``{"error": {"kind", "message"}}`` with the same kinds the
process executor uses), and event frames ``{"event": "resolution",
"record": ...}`` arrive interleaved, unordered relative to *other*
requests' replies.  Ops: ``ping``, ``status``, ``pending``, ``stats``,
``probe``, ``submit``, ``submit_many``, ``retract``, ``insert``,
``delete``, ``flush``, ``flush_drain``, and (when enabled)
``shutdown``.

:class:`GatewayClient` is the small synchronous client the CLI and
benchmarks drive; it pipelines requests and buffers event frames.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from ..client import MAX_FRAME, FramedEndpoint, checked_length, pack_frame
from ..concurrency import SHUTDOWN_GRACE
from ..db import wire
from ..errors import PreconditionError, ReproError
from .lifecycle import QueryHandle, encode_resolution
from .query import EntangledQuery

__all__ = [
    "Gateway",
    "GatewayClient",
    "GatewayError",
    "MAX_FRAME",
    "pack_frame",
]


class GatewayError(ReproError):
    """A gateway request failed (transport, protocol, or remote error)."""


def _checked_length(prefix: bytes) -> int:
    return checked_length(prefix, GatewayError)


# ---------------------------------------------------------------------------
# Server side
# ---------------------------------------------------------------------------
class _Connection:
    """One client connection's tasks and queues (server side)."""

    def __init__(self, gateway: "Gateway", reader, writer) -> None:
        self.gateway = gateway
        self.reader = reader
        self.writer = writer
        self.closed = False
        self.loop = asyncio.get_running_loop()
        #: Bounded: a full queue stops the reader task — the gateway's
        #: in-flight admission cap and the client's TCP backpressure.
        self.admissions: "asyncio.Queue[Optional[dict]]" = asyncio.Queue(
            maxsize=gateway.max_inflight
        )
        #: Outbound frames.  Unbounded as a queue, bounded in fact: it
        #: only ever holds ≤ max_inflight admission replies plus one
        #: resolution event per still-unresolved submission.
        self.outbound: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()

    # -- event push (called from service/dispatcher threads) ------------
    def push_event(self, payload: dict) -> None:
        if self.closed:
            return
        try:
            self.loop.call_soon_threadsafe(self._enqueue_event, payload)
        except RuntimeError:
            # Loop already closed (gateway shutting down) — the client
            # is gone; dropping the event leaks nothing.
            pass

    def _enqueue_event(self, payload: dict) -> None:
        if not self.closed:
            self.outbound.put_nowait(payload)

    def stream_resolutions(self, handles: Iterable[QueryHandle]) -> None:
        """Stream each handle's resolution record when it resolves.

        ``on_resolved`` fires immediately for already-resolved handles
        (batch rejections), so the client always gets its record.
        """
        for handle in handles:
            handle.on_resolved(
                lambda resolved: self.push_event(
                    {"event": "resolution", "record": encode_resolution(resolved)}
                )
            )

    # -- tasks -----------------------------------------------------------
    async def run(self) -> None:
        admission_task = asyncio.ensure_future(self._admission_loop())
        writer_task = asyncio.ensure_future(self._writer_loop())
        try:
            await self._reader_loop()
        finally:
            self.closed = True
            await self.admissions.put(None)
            await admission_task
            self.outbound.put_nowait(None)
            await writer_task
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _reader_loop(self) -> None:
        while not self.closed:
            try:
                prefix = await self.reader.readexactly(4)
                frame = await self.reader.readexactly(_checked_length(prefix))
            except (asyncio.IncompleteReadError, OSError, ConnectionError):
                return
            try:
                message = wire.loads(frame)
            except ReproError as error:
                await self.outbound.put(
                    {
                        "id": None,
                        "ok": False,
                        "error": {"kind": "protocol", "message": str(error)},
                    }
                )
                return
            op = message.get("op")
            if op in ("ping", "status", "pending", "stats"):
                # Cheap introspection answered on the loop: these only
                # take brief table locks, never freeze-rule waits.
                await self.outbound.put(self._inline_reply(message))
            else:
                await self.admissions.put(message)

    def _inline_reply(self, message: dict) -> dict:
        service = self.gateway.service
        rid = message.get("id")
        op = message["op"]
        try:
            if op == "ping":
                return {"id": rid, "ok": True, "pong": True}
            if op == "status":
                state = service.status(message["name"])
                return {
                    "id": rid,
                    "ok": True,
                    "state": None if state is None else state.value,
                }
            if op == "pending":
                return {"id": rid, "ok": True, "names": list(service.pending())}
            if op == "stats":
                return {
                    "id": rid,
                    "ok": True,
                    "pending_per_shard": list(service.shard_pending_counts()),
                    "cost_scores": list(service.shard_cost_scores()),
                    "migrations": service.migrations,
                    "rebalances": service.rebalances,
                }
            return _error_reply(rid, "precondition", f"unknown op {op!r}")
        except ReproError as error:
            return _error_reply(rid, "repro", str(error))

    async def _admission_loop(self) -> None:
        pushback: Optional[dict] = None
        while True:
            message = pushback if pushback is not None else await self.admissions.get()
            pushback = None
            if message is None:
                return
            if message.get("op") == "submit":
                # Coalesce the burst: every consecutively queued submit
                # joins one submit_many_nowait call — one router pass,
                # one evaluation job per affected component.
                batch = [message]
                stopping = False
                while len(batch) < self.gateway.max_batch:
                    try:
                        nxt = self.admissions.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if nxt is None:
                        # Shutdown sentinel mid-coalesce: flush this
                        # batch's replies, then retire the loop.
                        stopping = True
                        break
                    if nxt.get("op") != "submit":
                        pushback = nxt
                        break
                    batch.append(nxt)
                replies = await self._run_blocking(self._admit_batch, batch)
                for reply in replies:
                    await self.outbound.put(reply)
                if stopping:
                    return
                continue
            if message.get("op") == "shutdown":
                await self._handle_shutdown(message)
                continue
            reply = await self._run_blocking(self._execute, message)
            await self.outbound.put(reply)

    async def _handle_shutdown(self, message: dict) -> None:
        """Reply first, *flush* the reply, then signal shutdown — the
        client must see its acknowledgement before the loop tears the
        connection down."""
        rid = message.get("id")
        if not self.gateway.allow_shutdown:
            await self.outbound.put(
                _error_reply(rid, "precondition", "shutdown is not enabled")
            )
            return
        await self.outbound.put({"id": rid, "ok": True})
        try:
            await asyncio.wait_for(self.outbound.join(), timeout=SHUTDOWN_GRACE)
        except asyncio.TimeoutError:  # pragma: no cover - dead writer
            pass
        self.gateway._request_shutdown()

    async def _run_blocking(self, fn, *args):
        return await self.loop.run_in_executor(self.gateway._pool, fn, *args)

    def _admit_batch(self, batch: List[dict]) -> List[dict]:
        """Admission for a coalesced submit burst (worker thread)."""
        service = self.gateway.service
        try:
            queries = [wire.decode_query(m["query"]) for m in batch]
        except Exception as error:  # malformed payload shapes raise KeyError &c.
            return [
                _error_reply(m.get("id"), "protocol", repr(error)) for m in batch
            ]
        try:
            handles = service.submit_many_nowait(queries)
        except ReproError as error:
            return [
                _error_reply(m.get("id"), "repro", str(error)) for m in batch
            ]
        except BaseException as error:  # noqa: BLE001 - forwarded to client
            return [
                _error_reply(m.get("id"), "internal", repr(error)) for m in batch
            ]
        self.stream_resolutions(handles)
        return [
            {
                "id": message.get("id"),
                "ok": True,
                "name": handle.query,
                "state": handle.state.value,
            }
            for message, handle in zip(batch, handles)
        ]

    def _execute(self, message: dict) -> dict:
        """One non-submit request against the service (worker thread)."""
        service = self.gateway.service
        rid = message.get("id")
        op = message.get("op")
        try:
            if op == "submit_many":
                queries = [wire.decode_query(q) for q in message["queries"]]
                handles = service.submit_many_nowait(queries)
                self.stream_resolutions(handles)
                return {
                    "id": rid,
                    "ok": True,
                    "admissions": [
                        {"name": h.query, "state": h.state.value}
                        for h in handles
                    ],
                }
            if op == "retract":
                handle = service.retract(message["name"])
                return {"id": rid, "ok": True, "state": handle.state.value}
            if op == "insert":
                row = wire.decode_rows(message["row"])[0]
                inserted = service.insert(message["relation"], row)
                return {"id": rid, "ok": True, "inserted": inserted}
            if op == "delete":
                row = wire.decode_rows(message["row"])[0]
                deleted = service.delete(message["relation"], row)
                return {"id": rid, "ok": True, "deleted": deleted}
            if op == "flush":
                results = service.flush()
                return {
                    "id": rid,
                    "ok": True,
                    "results": [wire.encode_result(r) for r in results],
                }
            if op == "flush_drain":
                results = service.flush_drain()
                return {
                    "id": rid,
                    "ok": True,
                    "results": [wire.encode_result(r) for r in results],
                }
            if op == "probe":
                names = service.probe(int(message["shard"]))
                return {"id": rid, "ok": True, "names": list(names)}
            return _error_reply(rid, "precondition", f"unknown op {op!r}")
        except PreconditionError as error:
            return _error_reply(rid, "precondition", str(error))
        except ReproError as error:
            return _error_reply(rid, "repro", str(error))
        except BaseException as error:  # noqa: BLE001 - forwarded to client
            return _error_reply(rid, "internal", repr(error))

    async def _writer_loop(self) -> None:
        while True:
            item = await self.outbound.get()
            try:
                if item is None:
                    return
                try:
                    self.writer.write(pack_frame(item))
                    # Drain after every frame: a slow client throttles
                    # its own stream here instead of growing a server
                    # buffer.
                    await self.writer.drain()
                except (OSError, ConnectionError):
                    self.closed = True
                    return
            finally:
                # Keeps outbound.join() truthful (the shutdown path
                # waits on it to flush the acknowledgement).
                self.outbound.task_done()


def _error_reply(rid, kind: str, message: str) -> dict:
    return {"id": rid, "ok": False, "error": {"kind": kind, "message": message}}


class Gateway:
    """Serve a sharded coordination service over a TCP socket.

    Runs its own event loop on a daemon thread, so synchronous code
    (the CLI, tests) can :meth:`start`/:meth:`close` it directly; use
    it as a context manager for scoped serving.  ``port=0`` binds an
    ephemeral port — read the bound address from :attr:`address`.

    ``max_inflight`` bounds each connection's in-flight admissions
    (its reader stops consuming at the cap — backpressure, not
    buffering); ``max_batch`` caps how many queued submits coalesce
    into one ``submit_many_nowait`` call; ``allow_shutdown`` enables
    the remote ``shutdown`` op (off by default — a client must not be
    able to stop a shared server unless the operator opted in).
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        max_batch: int = 32,
        allow_shutdown: bool = False,
        admission_threads: int = 4,
    ) -> None:
        if max_inflight < 1 or max_batch < 1:
            raise PreconditionError(
                "max_inflight and max_batch must be at least 1"
            )
        self.service = service
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.max_batch = max_batch
        self.allow_shutdown = allow_shutdown
        self._pool = ThreadPoolExecutor(
            max_workers=admission_threads, thread_name_prefix="repro-gateway"
        )
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._address: Optional[Tuple[str, int]] = None
        self._conns: set = set()
        self._conn_tasks: set = set()

    # -- lifecycle -------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._address is None:
            raise PreconditionError("gateway is not started")
        return self._address

    def start(self) -> Tuple[str, int]:
        """Bind, start serving on a background thread, return the address."""
        if self._thread is not None:
            raise PreconditionError("gateway already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        assert self._address is not None
        return self._address

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the serving loop exits (remote ``shutdown`` op
        or :meth:`close` from another thread); ``True`` when it has."""
        thread = self._thread
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()

    def close(self, timeout: Optional[float] = SHUTDOWN_GRACE) -> None:
        """Stop serving: close the listener and every live connection.

        Idempotent.  The default budget is
        :data:`repro.concurrency.SHUTDOWN_GRACE` (shared with every
        other teardown ladder).  The service itself is untouched — it
        belongs to the caller (pending handles keep resolving after
        the edge is gone).
        """
        if self._thread is None:
            return
        self._request_shutdown()
        self._thread.join(timeout)
        self._thread = None
        self._pool.shutdown(wait=False)

    def _request_shutdown(self) -> None:
        loop, shutdown = self._loop, self._shutdown
        if loop is None or shutdown is None:
            return
        try:
            loop.call_soon_threadsafe(shutdown.set)
        except RuntimeError:  # pragma: no cover - loop already gone
            pass

    def __enter__(self) -> "Gateway":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- event loop ------------------------------------------------------
    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - surfaced via start()
            if not self._started.is_set():
                self._startup_error = error
                self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        self._address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._shutdown.wait()
            for conn in list(self._conns):
                conn.closed = True
                conn.writer.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=SHUTDOWN_GRACE)

    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(self, reader, writer)
        self._conns.add(conn)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await conn.run()
        finally:
            self._conns.discard(conn)
            if task is not None:
                self._conn_tasks.discard(task)

    @property
    def connection_count(self) -> int:
        """Live client connections (leak assertion hook for tests)."""
        return len(self._conns)


# ---------------------------------------------------------------------------
# Client side
# ---------------------------------------------------------------------------
class GatewayClient:
    """Small synchronous client for :class:`Gateway` (CLI / tests / bench).

    One socket, pipelined: :meth:`request` assigns a request id, sends
    the frame, and reads until that id's reply arrives, buffering any
    event frames seen on the way into :attr:`events`; the
    ``*_nowait``/:meth:`read_reply` pair pipelines several requests
    before collecting replies (how the latency benchmark keeps the
    admission lane saturated).  Not thread-safe — one client per
    thread.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        retries: int = 0,
    ) -> None:
        self._conn = FramedEndpoint(
            host, port, timeout=timeout, retries=retries, error=GatewayError
        )
        self._next_id = 0
        self._replies: Dict[int, dict] = {}
        #: Event frames (resolution records) in arrival order.
        self.events: Deque[dict] = deque()
        #: Resolution records by query name (drained from events).
        self.resolutions: Dict[str, dict] = {}

    # -- transport -------------------------------------------------------
    def _recv_frame(self) -> dict:
        return self._conn.recv_message()

    def _pump_one(self) -> None:
        message = self._recv_frame()
        if message.get("event") is not None:
            self.events.append(message)
            record = message.get("record")
            if message["event"] == "resolution" and record is not None:
                self.resolutions[record["query"]] = record
        else:
            rid = message.get("id")
            if rid is None:
                raise GatewayError(
                    f"gateway protocol error: {message.get('error')}"
                )
            self._replies[rid] = message

    # -- request plumbing ------------------------------------------------
    def request_nowait(self, op: str, **fields: Any) -> int:
        """Send one request without waiting; returns its request id."""
        rid = self._next_id
        self._next_id += 1
        self._conn.send_message({"op": op, "id": rid, **fields})
        return rid

    def read_reply(self, rid: int) -> dict:
        """Block for one pipelined request's reply; raises on error."""
        while rid not in self._replies:
            self._pump_one()
        reply = self._replies.pop(rid)
        if not reply.get("ok"):
            error = reply.get("error") or {}
            kind = error.get("kind", "internal")
            message = error.get("message", "gateway request failed")
            if kind == "precondition":
                raise PreconditionError(message)
            raise GatewayError(f"{kind}: {message}")
        return reply

    def request(self, op: str, **fields: Any) -> dict:
        """One request/reply round trip (events buffered on the way)."""
        return self.read_reply(self.request_nowait(op, **fields))

    # -- ops -------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request("ping")["pong"])

    def submit(self, query: EntangledQuery) -> dict:
        """Admit one query; returns the admission reply (fast path).

        The reply's ``state`` is ``pending`` (or ``rejected`` for a
        failed admission); the resolution record streams later — see
        :meth:`wait_resolved`.
        """
        return self.request("submit", query=wire.encode_query(query))

    def submit_many(self, queries: Iterable[EntangledQuery]) -> List[dict]:
        reply = self.request(
            "submit_many",
            queries=[wire.encode_query(q) for q in queries],
        )
        return list(reply["admissions"])

    def retract(self, name: str) -> dict:
        return self.request("retract", name=name)

    def insert(self, relation: str, row: Iterable) -> bool:
        return bool(
            self.request(
                "insert", relation=relation, row=wire.encode_rows([tuple(row)])
            )["inserted"]
        )

    def delete(self, relation: str, row: Iterable) -> bool:
        return bool(
            self.request(
                "delete", relation=relation, row=wire.encode_rows([tuple(row)])
            )["deleted"]
        )

    def flush(self) -> List:
        reply = self.request("flush")
        return [wire.decode_result(r) for r in reply["results"]]

    def flush_drain(self) -> List:
        reply = self.request("flush_drain")
        return [wire.decode_result(r) for r in reply["results"]]

    def status(self, name: str) -> Optional[str]:
        return self.request("status", name=name)["state"]

    def pending(self) -> Tuple[str, ...]:
        return tuple(self.request("pending")["names"])

    def stats(self) -> dict:
        return self.request("stats")

    def probe(self, shard: int) -> Tuple[str, ...]:
        return tuple(self.request("probe", shard=shard)["names"])

    def shutdown(self) -> None:
        self.request("shutdown")

    def wait_resolved(self, name: str, timeout: Optional[float] = None) -> dict:
        """Block until ``name``'s resolution record arrives; return it.

        Reads (and buffers) frames until the record shows up; a
        ``timeout`` bounds each socket read, so a record that never
        comes surfaces as ``socket.timeout`` rather than a hang.
        """
        if timeout is not None:
            self._conn.set_timeout(timeout)
        while name not in self.resolutions:
            self._pump_one()
        return self.resolutions.pop(name)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
