"""The Consistent Coordination Algorithm (Section 5 of the paper).

The algorithm targets the common coordination pattern in which safety
fails — "go to a party at least one friend attends", "fly to a
conference with some colleague" — but every user coordinates on the
*same* attribute set ``A`` of one relation ``S`` (flights, concerts,
classes).  For such *A-consistent* query sets (Definitions 7–9),
Proposition 1 guarantees that a coordinating set exists iff one exists
in which all chosen tuples agree on ``A``, which the algorithm exploits:

1. For every query ``q`` compute the option list ``V(q)``: all value
   tuples for the coordination attributes that make ``q``'s own
   requirements satisfiable (Definition 10).  One database query each.
2. Build the **pruned coordination graph** over queries with non-empty
   ``V(q)``: an edge ``q_i → q_j`` iff ``q_i`` named ``q_j``'s user as a
   coordination partner, or ``q_j``'s user is a friend of ``q_i``'s user
   (per the friendship relation) and ``q_i`` has an open friend slot.
3. For every candidate value ``v ∈ V(Q) = ∪ V(q)``, take the subgraph
   ``G_v`` of queries with ``v ∈ V(q)`` and run a **cleaning phase**:
   iteratively remove queries whose coordination requirements cannot
   hold in ``G_v`` (a named partner missing, or no friend present).
   A non-empty ``G_v`` is a coordinating set for value ``v``.
4. Choose among the recorded candidates (largest by default) and ground
   it: one final database query per member retrieves a concrete tuple
   key, producing the user → key mapping the paper's prototype outputs.

Generalisations implemented (paper's Discussion subsection): partner
slots may require ``k ≥ 1`` friends (not expressible in entangled-query
syntax, as the paper notes), several friendship relations may coexist,
and named partners may demand the *same tuple* (``y_i = x``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..db import ConjunctiveQuery, CoordinationStats, Database
from ..errors import MalformedQueryError, PreconditionError
from ..graphs import DiGraph
from ..logic import Atom, Variable
from .trace import SelectionMade, Trace, ValueExamined

Value = Tuple[Hashable, ...]


# ---------------------------------------------------------------------------
# Query model
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class NamedPartner:
    """A coordination partner given by constant (``c_i`` in the paper).

    ``same_tuple`` encodes the paper's ``y_i = x`` option: the partner
    must receive the *same* tuple (e.g. the same flight), not merely a
    tuple agreeing on the coordination attributes.
    """

    user: str
    same_tuple: bool = False


@dataclass(frozen=True)
class FriendSlot:
    """A coordination partner chosen from a friendship relation.

    ``f_1`` in the paper's general form: any user ``w`` with
    ``F(user, w)`` may fill the slot.  ``count`` generalises to "at
    least ``count`` friends" (Discussion subsection); ``relation``
    allows multiple friendship relations in one workload.
    """

    relation: str = "Friends"
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise MalformedQueryError("friend slot count must be >= 1")


Partner = Union[NamedPartner, FriendSlot]


@dataclass(frozen=True)
class ConsistentQuery:
    """One user's A-consistent coordination request.

    ``constraints`` maps attributes of the coordination relation ``S``
    to required constants for the *user's own* tuple; attributes absent
    from the mapping are "don't care".  Constraints on coordination
    attributes restrict the whole group (by A-consistency everyone gets
    the same values); constraints on other attributes are private.
    """

    user: str
    constraints: Tuple[Tuple[str, Hashable], ...] = ()
    partners: Tuple[Partner, ...] = ()

    def __init__(
        self,
        user: str,
        constraints: Union[Mapping[str, Hashable], Iterable[Tuple[str, Hashable]]] = (),
        partners: Iterable[Partner] = (),
    ) -> None:
        if not user:
            raise MalformedQueryError("consistent query must name a user")
        if isinstance(constraints, Mapping):
            constraint_items = tuple(sorted(constraints.items()))
        else:
            constraint_items = tuple(sorted(constraints))
        names = [attr for attr, _ in constraint_items]
        if len(set(names)) != len(names):
            raise MalformedQueryError(
                f"query of user {user!r} constrains an attribute twice"
            )
        object.__setattr__(self, "user", user)
        object.__setattr__(self, "constraints", constraint_items)
        object.__setattr__(self, "partners", tuple(partners))

    def constraint_map(self) -> Dict[str, Hashable]:
        """Constraints as a plain dict."""
        return dict(self.constraints)

    def named_partners(self) -> Tuple[NamedPartner, ...]:
        """Partners given by constant."""
        return tuple(p for p in self.partners if isinstance(p, NamedPartner))

    def friend_slots(self) -> Tuple[FriendSlot, ...]:
        """Partners to be filled from a friendship relation."""
        return tuple(p for p in self.partners if isinstance(p, FriendSlot))

    def __str__(self) -> str:
        parts = [f"user={self.user}"]
        if self.constraints:
            inner = ", ".join(f"{a}={v!r}" for a, v in self.constraints)
            parts.append(f"constraints({inner})")
        for partner in self.partners:
            parts.append(str(partner))
        return f"ConsistentQuery({'; '.join(parts)})"


@dataclass(frozen=True)
class ConsistentSetup:
    """Application knowledge the algorithm is parameterised by.

    ``table`` is the coordination relation ``S`` (its declared key is
    used for output); ``coordination_attributes`` is the set ``A``;
    ``friend_relations`` lists the binary relations partner slots may
    reference (all of the form ``(user, friend)``).
    """

    table: str
    coordination_attributes: Tuple[str, ...]
    friend_relations: Tuple[str, ...] = ("Friends",)

    def __init__(
        self,
        table: str,
        coordination_attributes: Iterable[str],
        friend_relations: Iterable[str] = ("Friends",),
    ) -> None:
        coordination_attributes = tuple(coordination_attributes)
        if not coordination_attributes:
            raise PreconditionError("at least one coordination attribute required")
        object.__setattr__(self, "table", table)
        object.__setattr__(
            self, "coordination_attributes", coordination_attributes
        )
        object.__setattr__(self, "friend_relations", tuple(friend_relations))

    def validate(self, db: Database, queries: Sequence[ConsistentQuery]) -> None:
        """Check the setup and queries against the database schema."""
        table_schema = db.schema.get(self.table)
        for attribute in self.coordination_attributes:
            table_schema.position_of(attribute)
        if table_schema.key is None:
            raise PreconditionError(
                f"coordination table {self.table!r} must declare a key"
            )
        if table_schema.key in self.coordination_attributes:
            raise PreconditionError("the key cannot be a coordination attribute")
        for relation in self.friend_relations:
            friend_schema = db.schema.get(relation)
            if friend_schema.arity != 2:
                raise PreconditionError(
                    f"friendship relation {relation!r} must be binary"
                )
        seen_users: Set[str] = set()
        for query in queries:
            if query.user in seen_users:
                raise PreconditionError(
                    f"user {query.user!r} submitted more than one query"
                )
            seen_users.add(query.user)
            for attribute, _ in query.constraints:
                table_schema.position_of(attribute)
                if attribute == table_schema.key:
                    raise PreconditionError(
                        f"user {query.user!r} constrains the key attribute"
                    )
            for slot in query.friend_slots():
                if slot.relation not in self.friend_relations:
                    raise PreconditionError(
                        f"user {query.user!r} references friendship relation "
                        f"{slot.relation!r} outside the setup"
                    )


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ConsistentCandidate:
    """A surviving subgraph ``G_v``: a coordinating set for value ``v``."""

    value: Value
    users: Tuple[str, ...]

    @property
    def size(self) -> int:
        """Number of users in the set."""
        return len(self.users)


@dataclass(frozen=True)
class ConsistentOutcome:
    """The grounded output: per-user tuple keys plus partner witnesses."""

    value: Value
    selections: Dict[str, Hashable]
    friend_witnesses: Dict[str, Tuple[str, ...]]

    @property
    def users(self) -> Tuple[str, ...]:
        """Users in the coordinating set."""
        return tuple(self.selections)


@dataclass
class ConsistentResult:
    """Outcome of a Consistent Coordination Algorithm run."""

    chosen: Optional[ConsistentOutcome]
    candidates: List[ConsistentCandidate] = field(default_factory=list)
    option_lists: Dict[str, FrozenSet[Value]] = field(default_factory=dict)
    stats: CoordinationStats = field(default_factory=CoordinationStats)

    @property
    def found(self) -> bool:
        """``True`` when a coordinating set was found."""
        return self.chosen is not None


CandidateCriterion = Callable[
    [Sequence[ConsistentCandidate]], Optional[ConsistentCandidate]
]


def largest_consistent_candidate(
    candidates: Sequence[ConsistentCandidate],
) -> Optional[ConsistentCandidate]:
    """Default criterion: largest set; ties broken by value order."""
    if not candidates:
        return None
    return max(candidates, key=lambda c: (c.size, tuple(repr(x) for x in c.value)))


# ---------------------------------------------------------------------------
# The algorithm
# ---------------------------------------------------------------------------
class ConsistentCoordinator:
    """Runs the Consistent Coordination Algorithm over one database.

    Instances cache schema positions; call :meth:`coordinate` per batch
    of queries (the paper's prototype buffers queries and processes them
    in batches).
    """

    def __init__(self, db: Database, setup: ConsistentSetup) -> None:
        self.db = db
        self.setup = setup
        self._table_schema = db.schema.get(setup.table)
        self._key = self._table_schema.key
        self._coord_positions = self._table_schema.positions_of(
            setup.coordination_attributes
        )

    # -- step 1: option lists -------------------------------------------
    def option_list(self, query: ConsistentQuery) -> FrozenSet[Value]:
        """``V(q)``: coordination-attribute values satisfying ``q``'s body."""
        body, coord_vars, _ = self._own_atom(query)
        values = self.db.distinct_bindings(
            ConjunctiveQuery((body,)), tuple(coord_vars)
        )
        return frozenset(values)

    def _own_atom(
        self, query: ConsistentQuery
    ) -> Tuple[Atom, List[Variable], Variable]:
        """The user's ``S(x, ...)`` body atom, its coordination variables
        and its key variable."""
        constraints = query.constraint_map()
        terms: List[object] = []
        coord_vars: List[Variable] = []
        key_var = Variable("x", query.user)
        for attribute in self._table_schema.attributes:
            if attribute == self._key:
                terms.append(key_var)
            elif attribute in constraints:
                terms.append(constraints[attribute])
            else:
                terms.append(Variable(f"a_{attribute}", query.user))
        for attribute, position in zip(
            self.setup.coordination_attributes, self._coord_positions
        ):
            term = terms[position]
            if isinstance(term, Variable):
                coord_vars.append(term)
            else:
                # Constant constraint on a coordination attribute: bind a
                # variable equal to it so projections stay uniform.
                pinned = Variable(f"a_{attribute}", query.user)
                terms[position] = pinned
                coord_vars.append(pinned)
                # Re-add the constant restriction via a second atom would
                # be wasteful; instead remember it for filtering below.
        atom = Atom(self.setup.table, terms)
        return atom, coord_vars, key_var

    def _constrained_option_list(self, query: ConsistentQuery) -> FrozenSet[Value]:
        """Option list honouring constant coordination constraints."""
        constraints = query.constraint_map()
        values = self.option_list(query)
        pinned = [
            (i, constraints[attribute])
            for i, attribute in enumerate(self.setup.coordination_attributes)
            if attribute in constraints
        ]
        if not pinned:
            return values
        return frozenset(
            v for v in values if all(v[i] == c for i, c in pinned)
        )

    # -- step 2: pruned coordination graph ------------------------------
    def _friends_of(self, user: str, relation: str) -> FrozenSet[str]:
        """All ``w`` with ``relation(user, w)`` — one database query.

        Materializing entry point (``distinct_bindings``) rather than
        the stepwise ``solutions`` iterator: one read-lock acquisition
        and one consistent snapshot for the whole enumeration.
        """
        friend = Variable("f", user)
        query = ConjunctiveQuery((Atom(relation, [user, friend]),))
        return frozenset(
            row[0] for row in self.db.distinct_bindings(query, (friend,))
        )

    def pruned_graph(
        self,
        queries: Sequence[ConsistentQuery],
        option_lists: Mapping[str, FrozenSet[Value]],
        stats: CoordinationStats,
    ) -> Tuple[DiGraph, Dict[Tuple[str, str], FrozenSet[str]]]:
        """Build the pruned coordination graph.

        Nodes: users whose option list is non-empty.  Edge ``u → w``
        when ``u`` named ``w`` as a partner or ``w`` is a friend of
        ``u`` (for some open friend slot's relation).  Also returns the
        friends cache for the cleaning phase.
        """
        alive = [q for q in queries if option_lists[q.user]]
        users_present = {q.user for q in alive}
        graph = DiGraph()
        graph.add_nodes(users_present)
        friends: Dict[Tuple[str, str], FrozenSet[str]] = {}
        for query in alive:
            for partner in query.named_partners():
                if partner.user in users_present:
                    graph.add_edge(query.user, partner.user)
            for slot in query.friend_slots():
                cache_key = (query.user, slot.relation)
                if cache_key not in friends:
                    stats.db_queries += 1
                    friends[cache_key] = self._friends_of(query.user, slot.relation)
                for friend in friends[cache_key]:
                    if friend in users_present:
                        graph.add_edge(query.user, friend)
        return graph, friends

    # -- step 4: cleaning phase ------------------------------------------
    def _clean(
        self,
        members: Set[str],
        by_user: Mapping[str, ConsistentQuery],
        friends: Mapping[Tuple[str, str], FrozenSet[str]],
        value: Value,
        stats: CoordinationStats,
        removals: Optional[List[Tuple[str, str]]] = None,
    ) -> Set[str]:
        """Iteratively remove users whose requirements fail in ``G_v``.

        ``removals`` (when given) collects ``(user, reason)`` pairs for
        tracing — the paper-style narration "remove q_w from the graph;
        now Jonny's coordination requirements are also unsatisfied".
        """
        changed = True
        while changed:
            changed = False
            stats.cleaning_rounds += 1
            for user in sorted(members):
                query = by_user[user]
                failure = self._requirement_failure(query, members, friends, value)
                if failure is not None:
                    members.discard(user)
                    changed = True
                    if removals is not None:
                        removals.append((user, failure))
        return members

    def _requirement_failure(
        self,
        query: ConsistentQuery,
        members: Set[str],
        friends: Mapping[Tuple[str, str], FrozenSet[str]],
        value: Value,
    ) -> Optional[str]:
        """``None`` when all requirements hold, else a human reason."""
        for partner in query.named_partners():
            if partner.user not in members:
                return f"named partner {partner.user} is not available here"
            if partner.same_tuple and not self._common_tuple_exists(
                query, partner.user, value
            ):
                return (
                    f"no single tuple satisfies both {query.user} and "
                    f"{partner.user} for this value"
                )
        for slot in query.friend_slots():
            present = friends.get((query.user, slot.relation), frozenset())
            live = sum(1 for w in present if w in members and w != query.user)
            if live < slot.count:
                needed = (
                    "no friend" if slot.count == 1 else f"fewer than {slot.count} friends"
                )
                return f"{needed} (via {slot.relation}) present in the subgraph"
        return None

    def _common_tuple_exists(
        self, query: ConsistentQuery, other_user: str, value: Value
    ) -> bool:
        """Same-tuple check: one tuple with value ``v`` satisfying both."""
        # Merged constraints: conflict => unsatisfiable.
        merged = query.constraint_map()
        # The other user's query is guaranteed to exist by validate().
        other = self._by_user[other_user]
        for attribute, constant in other.constraints:
            if attribute in merged and merged[attribute] != constant:
                return False
            merged[attribute] = constant
        return self._tuple_exists(merged, value)

    def _tuple_exists(
        self, constraints: Mapping[str, Hashable], value: Value
    ) -> bool:
        terms: List[object] = []
        for attribute in self._table_schema.attributes:
            if attribute in self.setup.coordination_attributes:
                index = self.setup.coordination_attributes.index(attribute)
                if attribute in constraints and constraints[attribute] != value[index]:
                    return False
                terms.append(value[index])
            elif attribute in constraints:
                terms.append(constraints[attribute])
            else:
                terms.append(Variable(f"w_{attribute}"))
        return self.db.is_satisfiable(
            ConjunctiveQuery((Atom(self.setup.table, terms),))
        )

    # -- step 5: grounding -------------------------------------------------
    def _ground(
        self,
        candidate: ConsistentCandidate,
        by_user: Mapping[str, ConsistentQuery],
        friends: Mapping[Tuple[str, str], FrozenSet[str]],
        stats: CoordinationStats,
    ) -> Optional[ConsistentOutcome]:
        """Pick a concrete tuple key for every member (one query each).

        Users linked by same-tuple constraints are grouped (union–find)
        and each group resolved by a single query over the merged
        constraints, so chains ``a = b = c`` receive one common tuple.
        """
        members = set(candidate.users)
        parent: Dict[str, str] = {user: user for user in members}

        def find(user: str) -> str:
            while parent[user] != user:
                parent[user] = parent[parent[user]]
                user = parent[user]
            return user

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for user in members:
            for partner in by_user[user].named_partners():
                if partner.same_tuple and partner.user in members:
                    union(user, partner.user)

        groups: Dict[str, List[str]] = {}
        for user in members:
            groups.setdefault(find(user), []).append(user)

        selections: Dict[str, Hashable] = {}
        for group in groups.values():
            merged: Dict[str, Hashable] = {}
            for user in group:
                for attribute, constant in by_user[user].constraints:
                    if attribute in merged and merged[attribute] != constant:
                        return None
                    merged[attribute] = constant
            key = self._select_key(merged, candidate.value, stats)
            if key is None:
                return None
            for user in group:
                selections[user] = key

        witnesses: Dict[str, Tuple[str, ...]] = {}
        for user in sorted(members):
            found: List[str] = []
            for slot in by_user[user].friend_slots():
                present = friends.get((user, slot.relation), frozenset())
                live = sorted(w for w in present if w in members and w != user)
                found.extend(live[: slot.count])
            if found:
                witnesses[user] = tuple(found)
        return ConsistentOutcome(candidate.value, selections, witnesses)

    def _select_key(
        self,
        constraints: Mapping[str, Hashable],
        value: Value,
        stats: CoordinationStats,
    ) -> Optional[Hashable]:
        terms: List[object] = []
        key_var = Variable("x")
        for attribute in self._table_schema.attributes:
            if attribute == self._key:
                terms.append(key_var)
            elif attribute in self.setup.coordination_attributes:
                index = self.setup.coordination_attributes.index(attribute)
                if attribute in constraints and constraints[attribute] != value[index]:
                    return None
                terms.append(value[index])
            elif attribute in constraints:
                terms.append(constraints[attribute])
            else:
                terms.append(Variable(f"w_{attribute}"))
        stats.db_queries += 1
        solution = self.db.first_solution(
            ConjunctiveQuery((Atom(self.setup.table, terms),))
        )
        if solution is None:
            return None
        return solution[key_var]

    # -- the full pipeline ----------------------------------------------
    def coordinate(
        self,
        queries: Sequence[ConsistentQuery],
        choose: CandidateCriterion = largest_consistent_candidate,
        stop_at_first: bool = False,
        trace: Optional["Trace"] = None,
    ) -> ConsistentResult:
        """Run all five steps and return the grounded outcome.

        ``stop_at_first`` returns as soon as some value yields a
        non-empty cleaned subgraph (the paper notes the loop over values
        "can keep going ... till it finds the one for which the
        coordinating set is maximal, or until another appropriate
        criterion ... is satisfied").
        """
        queries = tuple(queries)
        self.setup.validate(self.db, queries)
        by_user = {q.user: q for q in queries}
        self._by_user = by_user
        stats = CoordinationStats()

        # Step 1: option lists (one DB query per entangled query).
        option_lists: Dict[str, FrozenSet[Value]] = {}
        for query in queries:
            stats.db_queries += 1
            option_lists[query.user] = self._constrained_option_list(query)

        # Step 2: pruned coordination graph.
        graph, friends = self.pruned_graph(queries, option_lists, stats)
        stats.graph_nodes = graph.node_count()
        stats.graph_edges = graph.edge_count()

        # Step 3: the union of all option lists.
        all_values: Set[Value] = set()
        for values in option_lists.values():
            all_values.update(values)
        ordered_values = sorted(all_values, key=repr)
        stats.candidate_values = len(ordered_values)

        # Step 4: per-value subgraph + cleaning phase.
        candidates: List[ConsistentCandidate] = []
        for value in ordered_values:
            members = {
                user
                for user in graph.nodes()
                if value in option_lists[user]
            }
            initial = tuple(sorted(members))
            removals: Optional[List[Tuple[str, str]]] = (
                [] if trace is not None else None
            )
            members = self._clean(
                members, by_user, friends, value, stats, removals
            )
            if trace is not None:
                trace.add(
                    ValueExamined(
                        value,
                        initial,
                        tuple(sorted(members)),
                        tuple(removals or ()),
                    )
                )
            if members:
                candidates.append(
                    ConsistentCandidate(value, tuple(sorted(members)))
                )
                if stop_at_first:
                    break
        stats.candidate_sets = len(candidates)

        # Step 5: choose and ground.  A candidate can fail to ground in
        # rare same-tuple cases (a chain of same-tuple constraints whose
        # merged constraints admit no common tuple for this value); fall
        # back to the next-preferred candidate rather than giving up.
        remaining = list(candidates)
        chosen_candidate = None
        outcome = None
        while remaining:
            chosen_candidate = choose(remaining)
            if chosen_candidate is None:
                break
            outcome = self._ground(chosen_candidate, by_user, friends, stats)
            if outcome is not None:
                break
            remaining.remove(chosen_candidate)
            chosen_candidate = None
        if trace is not None:
            if chosen_candidate is None:
                trace.add(SelectionMade("no value admits a coordinating set"))
            else:
                trace.add(
                    SelectionMade(
                        f"value {chosen_candidate.value} with "
                        f"{chosen_candidate.size} users"
                    )
                )
        return ConsistentResult(outcome, candidates, option_lists, stats)


def consistent_coordinate(
    db: Database,
    setup: ConsistentSetup,
    queries: Sequence[ConsistentQuery],
    choose: CandidateCriterion = largest_consistent_candidate,
) -> ConsistentResult:
    """Convenience one-shot entry point for the algorithm."""
    return ConsistentCoordinator(db, setup).coordinate(queries, choose=choose)
