"""The database facade: schema + relations + evaluator + counters.

This is the component the coordination algorithms talk to.  It plays the
role MySQL/JDBC played in the paper's implementation (Section 6): the
algorithms submit conjunctive queries and receive one grounding
(choose-1 semantics) or enumerate projections for option lists.

Concurrency: under the shared storage backend one database instance is
shared by every engine shard, so
the facade guards itself with a :class:`~repro.concurrency.RWLock` —
evaluation (reads) from any number of shard workers proceeds
concurrently, inserts take the lock exclusively.  Locking lives at the
facade boundary only: the hot per-atom loops inside
:class:`~repro.db.evaluator.Evaluator` and
:class:`~repro.db.storage.Relation` run lock-free under the read lock
already held by their entry point (lazy index builds are benign under
concurrent readers — see the storage module).  The per-relation
``write_epoch`` stamps complete the picture: readers that cache derived
state (the engine's component-state cache) validate against
:meth:`data_versions` instead of serializing behind writers.

Under the *replicated* backend (:mod:`repro.db.backend`) each shard
evaluates against a private, lock-free replica instance
(``synchronized=False``) that the backend lazily syncs from this
authoritative store by diffing the same per-relation stamps, so the
evaluation phase touches no cross-shard lock at all.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..concurrency import NullRWLock, RWLock
from ..errors import UnknownRelationError
from ..logic import Atom, Variable
from .evaluator import Assignment, Evaluator
from .query import ConjunctiveQuery
from .schema import RelationSchema, Schema
from .stats import EngineStats
from .storage import Relation, Row

#: One structured mutation event handed to mutation listeners:
#: ``("create_relation", RelationSchema)`` for DDL,
#: ``("insert", relation_name, (row, ...))`` with the tuple of rows a
#: facade write actually added (duplicates excluded), or
#: ``("delete", relation_name, (row, ...))`` with the rows a facade
#: delete actually removed (absent rows excluded).
MutationEvent = Tuple


class Database:
    """An in-memory relational database instance.

    Parameters
    ----------
    schema:
        The database schema.  Relations are materialised lazily on first
        insert/use; all relations declared in the schema exist (empty)
        from the start.
    synchronized:
        ``True`` (default) guards the instance with a reader–writer
        lock.  ``False`` installs the no-op
        :class:`~repro.concurrency.NullRWLock` — for single-owner
        instances such as the per-shard replicas of
        :class:`~repro.db.backend.ReplicatedBackend`, whose readers
        never race a writer by construction.
    """

    def __init__(
        self, schema: Optional[Schema] = None, synchronized: bool = True
    ) -> None:
        self.schema = schema if schema is not None else Schema()
        self._relations: Dict[str, Relation] = {
            rs.name: Relation(rs) for rs in self.schema
        }
        self.stats = EngineStats()
        # Relations report storage-level counters (index probes,
        # composite-index builds) into the facade's stats object.
        for store in self._relations.values():
            store.stats = self.stats
        self._evaluator = Evaluator(self._relations, self.stats)
        # Ablation toggles (see :meth:`configure`).  Mirrored onto every
        # relation / the planner so the hot paths read a local flag.
        self.plan_cache_enabled = True
        self.composite_indexes_enabled = True
        #: Readers–writer lock over the instance: reads (evaluation,
        #: scans, stamps) share, writes (inserts, DDL) exclude.  The
        #: engine counters in :attr:`stats` are deliberately outside
        #: it — under concurrent readers they are best-effort tallies.
        self.rw = RWLock() if synchronized else NullRWLock()
        # Write listeners: called (outside the lock) after every
        # facade-level mutation — inserts that changed data and DDL.
        # Replicated backends register here so a write anywhere
        # invalidates every replica's fast path; mutations performed
        # directly on a Relation handle bypass them, exactly as they
        # bypass the facade's counters.
        self._write_listeners: List[Callable[[], None]] = []
        # Mutation listeners: like write listeners, but called with a
        # structured MutationEvent describing *what* changed — the
        # durability subsystem's WAL tap.  Kept separate so the
        # zero-argument invalidation path stays allocation-free.
        self._mutation_listeners: List[Callable[[MutationEvent], None]] = []

    # ------------------------------------------------------------------
    # Schema / data definition
    # ------------------------------------------------------------------
    def create_relation(
        self,
        name: str,
        attributes: Iterable[str],
        key: Optional[str] = None,
    ) -> Relation:
        """Declare a relation and return its (empty) store."""
        return self.attach_relation(RelationSchema(name, attributes, key))

    def attach_relation(self, relation_schema: RelationSchema) -> Relation:
        """Register an existing (immutable) relation schema.

        Also the replica-sync path: a replica mirrors the authoritative
        store's relations by attaching the *same*
        :class:`~repro.db.schema.RelationSchema` objects (they are
        frozen, so sharing is safe) instead of re-validating a copy.
        Fires write listeners like any DDL — a new relation must reach
        the replicated backend's invalidation token no matter which
        declaration path created it (on a replica the notify is a
        no-op: replicas have no listeners).
        """
        with self.rw.write():
            self.schema.add(relation_schema)
            store = Relation(relation_schema)
            store.stats = self.stats
            store.composites_enabled = self.composite_indexes_enabled
            self._relations[relation_schema.name] = store
        self._notify_write()
        self._notify_mutation(("create_relation", relation_schema))
        return store

    def relation(self, name: str) -> Relation:
        """The tuple store for ``name``; raises if undeclared.

        The returned handle is *not* lock-guarded: callers that mutate
        it directly in a threaded context own the synchronization
        (``with db.rw.write(): ...``).
        """
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(f"unknown relation {name!r}") from None

    def insert(self, name: str, row: Iterable[Hashable]) -> bool:
        """Insert one tuple into relation ``name``."""
        row = tuple(row)
        with self.rw.write():
            inserted = self.relation(name).insert(row)
        if inserted:
            self.stats.inserts += 1
            self._notify_write()
            self._notify_mutation(("insert", name, (row,)))
        return inserted

    def insert_many(self, name: str, rows: Iterable[Iterable[Hashable]]) -> int:
        """Insert many tuples into relation ``name``."""
        if self._mutation_listeners:
            # The WAL tap needs the rows actually added (duplicates
            # excluded), so take the slightly slower collecting path.
            with self.rw.write():
                store = self.relation(name)
                added = tuple(
                    row for row in map(tuple, rows) if store.insert(row)
                )
            count = len(added)
        else:
            added = ()
            with self.rw.write():
                count = self.relation(name).insert_many(rows)
        self.stats.inserts += count
        if count:
            self._notify_write()
            if added:
                self._notify_mutation(("insert", name, added))
        return count

    def delete(self, name: str, row: Iterable[Hashable]) -> bool:
        """Delete one tuple from relation ``name``.

        Set semantics mirror :meth:`insert`: deleting an absent row is
        an idempotent no-op that fires no listeners.  A successful
        delete notifies write listeners (replica invalidation) and
        mutation listeners (the WAL tap) with a
        ``("delete", name, (row,))`` event, exactly like an insert.
        """
        row = tuple(row)
        with self.rw.write():
            deleted = self.relation(name).delete(row)
        if deleted:
            self._notify_write()
            self._notify_mutation(("delete", name, (row,)))
        return deleted

    def add_write_listener(self, listener: Callable[[], None]) -> None:
        """Register a zero-argument callable fired after facade writes.

        Fired after :meth:`insert`/:meth:`insert_many` calls that
        changed data and after :meth:`create_relation`, outside the
        instance lock.  Listeners must be cheap and idempotent (a
        replicated backend bumps a write token); detach with
        :meth:`remove_write_listener` when the registrant's lifetime is
        shorter than the database's — a registered listener pins its
        closure until removed.
        """
        self._write_listeners.append(listener)

    def remove_write_listener(self, listener: Callable[[], None]) -> None:
        """Detach a write listener; a no-op when it is not registered."""
        try:
            self._write_listeners.remove(listener)
        except ValueError:
            pass

    def add_mutation_listener(
        self, listener: Callable[[MutationEvent], None]
    ) -> None:
        """Register a listener fired with a :data:`MutationEvent` after
        facade writes that changed data and after DDL.

        The structured sibling of :meth:`add_write_listener`: the
        durability subsystem registers here to journal every mutation's
        *content* (relation, rows, schemas), not merely the fact that
        one happened.  Fired outside the instance lock, after the write
        listeners; events are stream-ordered only while writes are
        serialized (single writer, or the service's router-linearized
        :meth:`~repro.core.service.ShardedCoordinationService.insert`).
        Detach with :meth:`remove_mutation_listener`.
        """
        self._mutation_listeners.append(listener)

    def remove_mutation_listener(
        self, listener: Callable[[MutationEvent], None]
    ) -> None:
        """Detach a mutation listener; a no-op when it is not registered."""
        try:
            self._mutation_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_write(self) -> None:
        if not self._write_listeners:
            return
        # Snapshot: a listener may detach itself mid-notification (the
        # replicated backend's self-pruning weakref stub does).
        for listener in list(self._write_listeners):
            listener()

    def _notify_mutation(self, event: MutationEvent) -> None:
        if not self._mutation_listeners:
            return
        for listener in list(self._mutation_listeners):
            listener(event)

    def configure(
        self,
        *,
        plan_cache: Optional[bool] = None,
        composite_indexes: Optional[bool] = None,
    ) -> None:
        """Apply ablation toggles in place (``None`` leaves one as-is).

        ``plan_cache=False`` makes every evaluation recompile its plan;
        ``composite_indexes=False`` routes multi-column probes through a
        single-column index plus residual filtering.  Both modes are
        result-identical to the defaults — compilation is a pure
        function of shape + statistics, and the storage fallback
        preserves row order — so flipping them changes cost only, which
        is exactly what the ablation harness measures.  Taken under the
        write lock so no evaluation observes a half-applied flip.
        """
        with self.rw.write():
            if plan_cache is not None:
                self.plan_cache_enabled = plan_cache
                self._evaluator.planner.set_cache_enabled(plan_cache)
            if composite_indexes is not None:
                self.composite_indexes_enabled = composite_indexes
                for store in self._relations.values():
                    store.set_composite_indexes(composite_indexes)

    def data_version(self) -> int:
        """A monotone stamp of the database contents.

        Sums the per-relation write epochs, so it observes *every*
        mutation path — including inserts performed directly on a
        :class:`~repro.db.storage.Relation` handle, which bypass this
        facade's counters — and is unaffected by
        :meth:`reset_stats`-style counter resets.  The online engine
        uses this value as its cheap did-anything-change gate, with
        :meth:`data_versions` localizing what changed.
        """
        with self.rw.read():
            return sum(r.write_epoch for r in self._relations.values())

    def data_versions(self) -> Dict[str, int]:
        """Per-relation write-epoch stamps, as a name → epoch dict.

        Epochs only ever increase (see
        :attr:`~repro.db.storage.Relation.write_epoch`), so comparing
        two stamp dicts identifies exactly which relations were written
        between them.  The online engine diffs these to evict only the
        cached component states whose bodies touch a mutated relation,
        instead of clearing its whole cache on any insert.
        """
        with self.rw.read():
            return {name: r.write_epoch for name, r in self._relations.items()}

    # ------------------------------------------------------------------
    # Query evaluation
    # ------------------------------------------------------------------
    def solutions(self, query: ConjunctiveQuery) -> Iterator[Assignment]:
        """Enumerate satisfying assignments of a conjunctive query.

        The returned iterator takes the read lock around each *step*,
        never across yields — so a half-consumed (or abandoned)
        iterator cannot block writers, and ``next(it)`` followed by
        ``db.insert(...)`` on one thread stays legal.  The price is
        per-step granularity: a concurrent insert may land between two
        steps of the enumeration (storage is append-only, so the
        iterator itself stays valid — exactly the pre-lock semantics).
        Prefer the materializing entry points when a consistent
        snapshot across the whole enumeration matters.
        """
        query.validate(self.schema)

        def stepwise() -> Iterator[Assignment]:
            inner = self._evaluator.solutions(query)
            while True:
                with self.rw.read():
                    try:
                        value = next(inner)
                    except StopIteration:
                        return
                yield value

        return stepwise()

    def first_solution(
        self,
        query: ConjunctiveQuery,
        initial: Optional[Assignment] = None,
    ) -> Optional[Assignment]:
        """One satisfying assignment or ``None`` (choose-1 semantics).

        ``initial`` pre-binds variables (see
        :meth:`repro.db.evaluator.Evaluator.solutions`).
        """
        query.validate(self.schema)
        with self.rw.read():
            return self._evaluator.first_solution(query, initial=initial)

    def is_satisfiable(self, query: ConjunctiveQuery) -> bool:
        """Decide whether the conjunction has any satisfying assignment."""
        query.validate(self.schema)
        with self.rw.read():
            return self._evaluator.is_satisfiable(query)

    def satisfiable_atoms(self, atoms: Iterable[Atom]) -> bool:
        """Convenience: satisfiability of a list of atoms."""
        return self.is_satisfiable(ConjunctiveQuery(tuple(atoms)))

    def first_solution_atoms(self, atoms: Iterable[Atom]) -> Optional[Assignment]:
        """Convenience: one assignment for a list of atoms."""
        return self.first_solution(ConjunctiveQuery(tuple(atoms)))

    def distinct_bindings(
        self, query: ConjunctiveQuery, variables: Tuple[Variable, ...]
    ) -> Set[Tuple[Hashable, ...]]:
        """All distinct value tuples for ``variables`` across solutions.

        Used by the Consistent Coordination Algorithm to compute option
        lists ``V(q)`` (Definition 10).  Materializing, so the whole
        enumeration runs under one read acquisition (one consistent
        snapshot, no per-row locking) rather than through the stepwise
        :meth:`solutions` iterator.
        """
        query.validate(self.schema)
        with self.rw.read():
            out: Set[Tuple[Hashable, ...]] = set()
            for assignment in self._evaluator.solutions(query):
                out.add(tuple(assignment[v] for v in variables))
            return out

    # ------------------------------------------------------------------
    # Instance inspection
    # ------------------------------------------------------------------
    def contains(self, name: str, row: Iterable[Hashable]) -> bool:
        """Ground-atom membership test."""
        with self.rw.read():
            return self.relation(name).contains(row)

    def domain(self) -> Set[Hashable]:
        """The active domain: every value in every relation."""
        with self.rw.read():
            out: Set[Hashable] = set()
            for store in self._relations.values():
                out.update(store.domain())
            return out

    def sizes(self) -> Dict[str, int]:
        """Tuple counts per relation."""
        with self.rw.read():
            return {name: len(store) for name, store in self._relations.items()}

    def rows(self, name: str) -> List[Row]:
        """Materialised list of all tuples of ``name``."""
        with self.rw.read():
            return list(self.relation(name).scan())

    def reset_stats(self) -> None:
        """Zero the engine counters (used between benchmark runs)."""
        self.stats.reset()

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}:{len(s)}" for n, s in self._relations.items())
        return f"Database({inner})"
