"""The database facade: schema + relations + evaluator + counters.

This is the component the coordination algorithms talk to.  It plays the
role MySQL/JDBC played in the paper's implementation (Section 6): the
algorithms submit conjunctive queries and receive one grounding
(choose-1 semantics) or enumerate projections for option lists.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import UnknownRelationError
from ..logic import Atom, Variable
from .evaluator import Assignment, Evaluator
from .query import ConjunctiveQuery
from .schema import RelationSchema, Schema
from .stats import EngineStats
from .storage import Relation, Row


class Database:
    """An in-memory relational database instance.

    Parameters
    ----------
    schema:
        The database schema.  Relations are materialised lazily on first
        insert/use; all relations declared in the schema exist (empty)
        from the start.
    """

    def __init__(self, schema: Optional[Schema] = None) -> None:
        self.schema = schema if schema is not None else Schema()
        self._relations: Dict[str, Relation] = {
            rs.name: Relation(rs) for rs in self.schema
        }
        self.stats = EngineStats()
        self._evaluator = Evaluator(self._relations, self.stats)

    # ------------------------------------------------------------------
    # Schema / data definition
    # ------------------------------------------------------------------
    def create_relation(
        self,
        name: str,
        attributes: Iterable[str],
        key: Optional[str] = None,
    ) -> Relation:
        """Declare a relation and return its (empty) store."""
        relation_schema = RelationSchema(name, attributes, key)
        self.schema.add(relation_schema)
        store = Relation(relation_schema)
        self._relations[name] = store
        return store

    def relation(self, name: str) -> Relation:
        """The tuple store for ``name``; raises if undeclared."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(f"unknown relation {name!r}") from None

    def insert(self, name: str, row: Iterable[Hashable]) -> bool:
        """Insert one tuple into relation ``name``."""
        inserted = self.relation(name).insert(row)
        if inserted:
            self.stats.inserts += 1
        return inserted

    def insert_many(self, name: str, rows: Iterable[Iterable[Hashable]]) -> int:
        """Insert many tuples into relation ``name``."""
        count = self.relation(name).insert_many(rows)
        self.stats.inserts += count
        return count

    def data_version(self) -> int:
        """A monotone stamp of the database contents.

        Sums the per-relation write epochs, so it observes *every*
        mutation path — including inserts performed directly on a
        :class:`~repro.db.storage.Relation` handle, which bypass this
        facade's counters — and is unaffected by
        :meth:`reset_stats`-style counter resets.  The online engine
        uses this value as its cheap did-anything-change gate, with
        :meth:`data_versions` localizing what changed.
        """
        return sum(r.write_epoch for r in self._relations.values())

    def data_versions(self) -> Dict[str, int]:
        """Per-relation write-epoch stamps, as a name → epoch dict.

        Epochs only ever increase (see
        :attr:`~repro.db.storage.Relation.write_epoch`), so comparing
        two stamp dicts identifies exactly which relations were written
        between them.  The online engine diffs these to evict only the
        cached component states whose bodies touch a mutated relation,
        instead of clearing its whole cache on any insert.
        """
        return {name: r.write_epoch for name, r in self._relations.items()}

    # ------------------------------------------------------------------
    # Query evaluation
    # ------------------------------------------------------------------
    def solutions(self, query: ConjunctiveQuery) -> Iterator[Assignment]:
        """Enumerate satisfying assignments of a conjunctive query."""
        query.validate(self.schema)
        return self._evaluator.solutions(query)

    def first_solution(
        self,
        query: ConjunctiveQuery,
        initial: Optional[Assignment] = None,
    ) -> Optional[Assignment]:
        """One satisfying assignment or ``None`` (choose-1 semantics).

        ``initial`` pre-binds variables (see
        :meth:`repro.db.evaluator.Evaluator.solutions`).
        """
        query.validate(self.schema)
        return self._evaluator.first_solution(query, initial=initial)

    def is_satisfiable(self, query: ConjunctiveQuery) -> bool:
        """Decide whether the conjunction has any satisfying assignment."""
        query.validate(self.schema)
        return self._evaluator.is_satisfiable(query)

    def satisfiable_atoms(self, atoms: Iterable[Atom]) -> bool:
        """Convenience: satisfiability of a list of atoms."""
        return self.is_satisfiable(ConjunctiveQuery(tuple(atoms)))

    def first_solution_atoms(self, atoms: Iterable[Atom]) -> Optional[Assignment]:
        """Convenience: one assignment for a list of atoms."""
        return self.first_solution(ConjunctiveQuery(tuple(atoms)))

    def distinct_bindings(
        self, query: ConjunctiveQuery, variables: Tuple[Variable, ...]
    ) -> Set[Tuple[Hashable, ...]]:
        """All distinct value tuples for ``variables`` across solutions.

        Used by the Consistent Coordination Algorithm to compute option
        lists ``V(q)`` (Definition 10).
        """
        out: Set[Tuple[Hashable, ...]] = set()
        for assignment in self.solutions(query):
            out.add(tuple(assignment[v] for v in variables))
        return out

    # ------------------------------------------------------------------
    # Instance inspection
    # ------------------------------------------------------------------
    def contains(self, name: str, row: Iterable[Hashable]) -> bool:
        """Ground-atom membership test."""
        return self.relation(name).contains(row)

    def domain(self) -> Set[Hashable]:
        """The active domain: every value in every relation."""
        out: Set[Hashable] = set()
        for store in self._relations.values():
            out.update(store.domain())
        return out

    def sizes(self) -> Dict[str, int]:
        """Tuple counts per relation."""
        return {name: len(store) for name, store in self._relations.items()}

    def rows(self, name: str) -> List[Row]:
        """Materialised list of all tuples of ``name``."""
        return list(self.relation(name).scan())

    def reset_stats(self) -> None:
        """Zero the engine counters (used between benchmark runs)."""
        self.stats.reset()

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}:{len(s)}" for n, s in self._relations.items())
        return f"Database({inner})"
