"""Instrumentation counters for the database engine.

The paper analyses its algorithms partly in machine-independent units:
*how many queries are issued to the database* (at most ``|Q|`` for the
SCC Coordination Algorithm, ``O(n)`` for the Consistent Coordination
Algorithm).  These counters let tests and benchmarks assert those bounds
directly instead of relying on wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EngineStats:
    """Mutable counters tracked by a :class:`~repro.db.database.Database`.

    Attributes
    ----------
    queries_issued:
        Number of conjunctive-query evaluations started (the unit the
        paper counts as "queries to the database").
    tuples_examined:
        Number of candidate tuples pulled from storage during evaluation
        (a proxy for I/O work).
    solutions_found:
        Number of satisfying assignments produced across all queries.
    inserts:
        Number of tuples inserted.
    index_probes:
        Number of bound :meth:`~repro.db.storage.Relation.match` calls
        answered from an index bucket (single-column or composite).
    plan_cache_hits:
        Evaluations served by a cached
        :class:`~repro.db.planner.CompiledPlan`.
    plan_cache_misses:
        Evaluations that (re)compiled a plan — first sight of a query
        shape, or a participating relation's statistics moved size
        class.
    composite_indexes_built:
        Composite (multi-column) hash indexes materialized across all
        relations.
    """

    queries_issued: int = 0
    tuples_examined: int = 0
    solutions_found: int = 0
    inserts: int = 0
    index_probes: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    composite_indexes_built: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.queries_issued = 0
        self.tuples_examined = 0
        self.solutions_found = 0
        self.inserts = 0
        self.index_probes = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.composite_indexes_built = 0

    def snapshot(self) -> "EngineStats":
        """Return an independent copy of the current counters."""
        return EngineStats(
            queries_issued=self.queries_issued,
            tuples_examined=self.tuples_examined,
            solutions_found=self.solutions_found,
            inserts=self.inserts,
            index_probes=self.index_probes,
            plan_cache_hits=self.plan_cache_hits,
            plan_cache_misses=self.plan_cache_misses,
            composite_indexes_built=self.composite_indexes_built,
        )

    def delta(self, earlier: "EngineStats") -> "EngineStats":
        """Counters accumulated since an earlier snapshot."""
        return EngineStats(
            queries_issued=self.queries_issued - earlier.queries_issued,
            tuples_examined=self.tuples_examined - earlier.tuples_examined,
            solutions_found=self.solutions_found - earlier.solutions_found,
            inserts=self.inserts - earlier.inserts,
            index_probes=self.index_probes - earlier.index_probes,
            plan_cache_hits=self.plan_cache_hits - earlier.plan_cache_hits,
            plan_cache_misses=self.plan_cache_misses - earlier.plan_cache_misses,
            composite_indexes_built=(
                self.composite_indexes_built - earlier.composite_indexes_built
            ),
        )


@dataclass
class CoordinationStats:
    """Counters reported by the coordination algorithms themselves.

    These mirror the cost model of Sections 4 and 6: database queries
    issued, unifications attempted, graph sizes, and cleaning rounds.
    """

    db_queries: int = 0
    unifications: int = 0
    unification_failures: int = 0
    graph_nodes: int = 0
    graph_edges: int = 0
    scc_count: int = 0
    cleaning_rounds: int = 0
    candidate_values: int = 0
    candidate_sets: int = 0
    preprocessing_removed: int = 0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict view for reporting."""
        out = {
            "db_queries": self.db_queries,
            "unifications": self.unifications,
            "unification_failures": self.unification_failures,
            "graph_nodes": self.graph_nodes,
            "graph_edges": self.graph_edges,
            "scc_count": self.scc_count,
            "cleaning_rounds": self.cleaning_rounds,
            "candidate_values": self.candidate_values,
            "candidate_sets": self.candidate_sets,
            "preprocessing_removed": self.preprocessing_removed,
        }
        out.update(self.extra)
        return out


# ---------------------------------------------------------------------------
# Cardinality classes (router cost model)
# ---------------------------------------------------------------------------
def size_class(rows: int) -> int:
    """Cardinality class of a row count: its ``bit_length`` bucket.

    The same quantization the plan cache keys on
    (:mod:`repro.db.planner`): class moves only when a relation roughly
    doubles, so scores built from it are stable under ordinary churn.
    """
    return rows.bit_length()


def evaluation_cost(db, query) -> int:
    """Evaluation-cost score of one entangled query against ``db``.

    ``1 +`` the sum of the cardinality classes of the query's body
    relations — a machine-independent proxy for how expensive this
    query makes every evaluation of its component (each body atom
    contributes a join against its relation; bigger relations cost
    more, logarithmically).  Undeclared relations contribute 0.  The
    sharded service's router sums these per shard (component size times
    body-relation weight falls out of the sum over members) to measure
    shard load by *work*, not pending count.
    """
    cost = 1
    for atom in query.body:
        if atom.relation in db:
            cost += size_class(len(db.relation(atom.relation)))
    return cost
