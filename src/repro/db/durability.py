"""Durability subsystem: write-ahead log, snapshots, log compaction.

Everything upstream of this module lives in process memory — a restart
loses every relation row, every pending handle, every coordination
decision.  This module is the persistence seam underneath it all, built
from pieces earlier layers already standardized on:

* **write-ahead log** (:class:`WriteAheadLog`) — an append-only file of
  length-prefixed :mod:`repro.db.wire` frames (each frame carries its
  own CRC-32).  Two record kinds ride it, in commit order: *database
  mutations* (``rows``/``del``/``ddl`` records, fed by
  :meth:`~repro.db.Database.add_mutation_listener`) and *service
  journal entries* (``j`` records wrapping the same
  :func:`~repro.db.wire.encode_journal` format the crash-replay tests
  ship over IPC).  The fsync policy is configurable:
  ``"always"`` fsyncs every append (survives power loss),
  ``"never"`` writes straight to the OS without fsync (survives
  ``kill -9`` — the kernel holds the bytes — but not a machine crash).
  Appends are a single unbuffered ``write()`` so a crash can only tear
  the *final* record, never interleave two.

* **snapshots** (:class:`SnapshotStore`) — a full wire-encoded image of
  the durable state: every relation's schema + rows + stamp vector
  (:func:`~repro.db.wire.build_sync` against an empty stamp vector *is*
  a full snapshot), the pending queries in arrival order, and the
  serialized handle resolutions (the service's final-state records).
  Two stores implement the protocol: :class:`FileSnapshotStore`
  (one frame per file, written temp-then-rename so a snapshot is never
  torn) and :class:`SQLiteSnapshotStore` (a ``snapshots`` table in WAL
  journal mode with ``synchronous=NORMAL`` and a busy timeout — the
  Paper-Scanner pragmas — so readers never block the writer).

* **log compaction** — :meth:`DurableStore.checkpoint` writes snapshot
  generation ``g+1``, rotates the WAL to a fresh ``wal-(g+1)`` file,
  and deletes generation ``g``'s files.  Every crash window is covered:
  a crash before the snapshot lands recovers from generation ``g``;
  a crash after the snapshot but before the new WAL exists recovers
  from ``g+1`` with a zero WAL suffix (the stale ``wal-g`` is ignored
  because recovery only ever replays the WAL *matching* the loaded
  snapshot's generation).

* **recovery** (:meth:`DurableStore.recover`) — open the directory,
  load the newest *valid* snapshot (a corrupt newest generation falls
  back to the previous one), replay the matching WAL suffix, and
  detect-and-discard a torn final record: the scan stops at the first
  record whose length prefix, frame magic, CRC, or payload fails to
  decode, and truncates the file there so later appends continue from
  the last durable byte.

The module is deliberately mechanism-only: it persists and recovers
*records*.  What the records mean — replaying journal entries through
the lifecycle API, re-admitting pending queries without re-evaluating
them — is the service's job
(:class:`~repro.core.service.ShardedCoordinationService`), keeping this
a ``repro.db`` layer with no core-layer imports (the query payloads it
decodes go through :mod:`repro.db.wire`, which already imports the core
lazily).
"""

from __future__ import annotations

import os
import sqlite3
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import PreconditionError, WireError
from . import wire
from .database import Database, MutationEvent

#: Upper bound on one WAL record's frame size; a length prefix above
#: this is treated as a torn/corrupt record, not an allocation request.
MAX_RECORD_BYTES = 1 << 30

#: Valid fsync policies for the WAL (see the module docstring).
FSYNC_POLICIES = ("always", "never")

#: Valid snapshot-store names.
SNAPSHOT_STORES = ("file", "sqlite")


@dataclass(frozen=True)
class DurabilityConfig:
    """How a service persists itself.

    Parameters
    ----------
    dir:
        The durability directory (created if missing).  One directory
        belongs to one service at a time.
    fsync:
        WAL fsync policy: ``"always"`` (default; survives power loss)
        or ``"never"`` (no fsync; survives process ``kill -9`` only).
    snapshot_store:
        ``"file"`` (default) or ``"sqlite"`` — see
        :class:`FileSnapshotStore` / :class:`SQLiteSnapshotStore`.
    snapshot_every:
        Auto-checkpoint after this many WAL records (``0`` disables
        automatic checkpoints; :meth:`DurableStore.checkpoint` — and
        the service's ``checkpoint()`` — still work on demand).
    """

    dir: Path
    fsync: str = "always"
    snapshot_store: str = "file"
    snapshot_every: int = 512

    def __post_init__(self) -> None:
        object.__setattr__(self, "dir", Path(self.dir))
        if self.fsync not in FSYNC_POLICIES:
            raise PreconditionError(
                f"unknown fsync policy {self.fsync!r} "
                f"(expected one of {FSYNC_POLICIES})"
            )
        if self.snapshot_store not in SNAPSHOT_STORES:
            raise PreconditionError(
                f"unknown snapshot store {self.snapshot_store!r} "
                f"(expected one of {SNAPSHOT_STORES})"
            )
        if self.snapshot_every < 0:
            raise PreconditionError("snapshot_every must be >= 0")


def resolve_durability(
    spec: "DurabilitySpec",
) -> Optional[DurabilityConfig]:
    """Normalize a durability spec: config, path-like, or ``None``."""
    if spec is None or isinstance(spec, DurabilityConfig):
        return spec
    return DurabilityConfig(dir=Path(spec))


DurabilitySpec = Optional[Any]  # DurabilityConfig | str | Path | None


# ---------------------------------------------------------------------------
# Write-ahead log
# ---------------------------------------------------------------------------
class WriteAheadLog:
    """An append-only log of length-prefixed wire frames.

    Record layout: ``u32 big-endian frame length + frame``, where the
    frame is a :func:`repro.db.wire.dumps` product (magic + version +
    CRC-32 + payload).  Appends are one unbuffered ``write()`` each, so
    a crash tears at most the final record; :func:`scan_wal` finds the
    longest valid prefix and the caller truncates there.
    """

    def __init__(self, path: Path, fsync: str = "always") -> None:
        self.path = Path(path)
        self.fsync = fsync
        # Unbuffered append: every write() reaches the kernel before
        # returning, which is what makes fsync="never" still durable
        # against kill -9 (only a machine crash can lose those bytes).
        self._file = open(self.path, "ab", buffering=0)
        self.records_appended = 0

    def append(self, message: Dict[str, Any]) -> None:
        """Durably append one record (one wire message)."""
        frame = wire.dumps(message)
        self._file.write(len(frame).to_bytes(4, "big") + frame)
        if self.fsync == "always":
            os.fsync(self._file.fileno())
        self.records_appended += 1

    def close(self) -> None:
        """Close the log file (idempotent)."""
        if not self._file.closed:
            self._file.close()

    @property
    def closed(self) -> bool:
        return self._file.closed

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.path.name}, fsync={self.fsync}, "
            f"{self.records_appended} appended)"
        )


def scan_wal(path: Path) -> Tuple[List[Dict[str, Any]], int, bool]:
    """Read a WAL file's longest valid record prefix.

    Returns ``(records, valid_bytes, torn)`` where ``records`` is every
    decodable record in order, ``valid_bytes`` is the offset the valid
    prefix ends at, and ``torn`` reports whether trailing bytes past it
    had to be discarded (a short length prefix, a short frame, or a
    frame whose magic/version/CRC/payload fails to decode).  Does not
    modify the file; recovery truncates to ``valid_bytes`` separately.
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0, False
    records: List[Dict[str, Any]] = []
    offset = 0
    while True:
        if offset + 4 > len(data):
            break
        length = int.from_bytes(data[offset:offset + 4], "big")
        if length > MAX_RECORD_BYTES or offset + 4 + length > len(data):
            break
        frame = data[offset + 4:offset + 4 + length]
        try:
            records.append(wire.loads(frame))
        except WireError:
            break
        offset += 4 + length
    return records, offset, offset < len(data)


# ---------------------------------------------------------------------------
# Snapshot stores
# ---------------------------------------------------------------------------
class SnapshotStore:
    """Protocol: persist one wire-encodable payload per generation.

    Implementations must make :meth:`save` atomic — a crash mid-save
    leaves the previous generation loadable and never a torn payload —
    and :meth:`load` must raise :class:`~repro.errors.WireError` for a
    corrupt snapshot so recovery can fall back a generation.
    """

    name = "abstract"

    def save(self, generation: int, payload: Dict[str, Any]) -> None:
        raise NotImplementedError

    def load(self, generation: int) -> Dict[str, Any]:
        raise NotImplementedError

    def generations(self) -> List[int]:
        raise NotImplementedError

    def delete(self, generation: int) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release file handles (idempotent)."""


class FileSnapshotStore(SnapshotStore):
    """One wire frame per ``snap-<generation>.wire`` file.

    Atomicity comes from the filesystem: the payload is written to a
    temp file, flushed and fsynced, then ``os.replace``-d into place —
    so a snapshot file either exists complete or not at all.  The frame
    CRC additionally catches at-rest corruption at load time.
    """

    name = "file"
    _PREFIX = "snap-"
    _SUFFIX = ".wire"

    def __init__(self, directory: Path) -> None:
        self.dir = Path(directory)

    def _path(self, generation: int) -> Path:
        return self.dir / f"{self._PREFIX}{generation:08d}{self._SUFFIX}"

    def save(self, generation: int, payload: Dict[str, Any]) -> None:
        frame = wire.dumps(payload)
        target = self._path(generation)
        temp = target.with_suffix(".tmp")
        with open(temp, "wb") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, target)
        _fsync_dir(self.dir)

    def load(self, generation: int) -> Dict[str, Any]:
        return wire.loads(self._path(generation).read_bytes())

    def generations(self) -> List[int]:
        found = []
        for path in self.dir.glob(f"{self._PREFIX}*{self._SUFFIX}"):
            stem = path.name[len(self._PREFIX):-len(self._SUFFIX)]
            if stem.isdigit():
                found.append(int(stem))
        return sorted(found)

    def delete(self, generation: int) -> None:
        try:
            self._path(generation).unlink()
        except FileNotFoundError:
            pass


class SQLiteSnapshotStore(SnapshotStore):
    """Snapshots in a ``snapshots`` table of one SQLite database.

    Configured the pragmatic way (the Paper-Scanner exemplar):
    ``journal_mode=WAL`` so concurrent readers never block the snapshot
    writer, ``synchronous=NORMAL`` (safe in WAL mode — a power loss
    rolls back to the last commit, never corrupts), and a busy timeout
    instead of immediate lock errors.  Each row stores the same wire
    frame the file store would write, so the CRC check travels with the
    payload regardless of the store.
    """

    name = "sqlite"
    FILENAME = "snapshots.sqlite"

    def __init__(self, directory: Path) -> None:
        self.dir = Path(directory)
        self.path = self.dir / self.FILENAME
        # The service serializes access under its router lock, but the
        # calls may come from different threads — permit that.
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, timeout=30.0
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS snapshots ("
            "generation INTEGER PRIMARY KEY, frame BLOB NOT NULL)"
        )
        self._conn.commit()

    def save(self, generation: int, payload: Dict[str, Any]) -> None:
        frame = wire.dumps(payload)
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO snapshots (generation, frame) "
                "VALUES (?, ?)",
                (generation, frame),
            )

    def load(self, generation: int) -> Dict[str, Any]:
        row = self._conn.execute(
            "SELECT frame FROM snapshots WHERE generation = ?", (generation,)
        ).fetchone()
        if row is None:
            raise WireError(f"no snapshot for generation {generation}")
        return wire.loads(bytes(row[0]))

    def generations(self) -> List[int]:
        return [
            row[0]
            for row in self._conn.execute(
                "SELECT generation FROM snapshots ORDER BY generation"
            )
        ]

    def delete(self, generation: int) -> None:
        with self._conn:
            self._conn.execute(
                "DELETE FROM snapshots WHERE generation = ?", (generation,)
            )

    def close(self) -> None:
        self._conn.close()


def _make_snapshot_store(config: DurabilityConfig) -> SnapshotStore:
    if config.snapshot_store == "sqlite":
        return SQLiteSnapshotStore(config.dir)
    return FileSnapshotStore(config.dir)


def _fsync_dir(directory: Path) -> None:
    """Fsync a directory so renames/creates inside it are durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform quirk
        pass
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# Snapshot payload codec
# ---------------------------------------------------------------------------
def build_snapshot_payload(
    db: Database,
    pending: Iterable,
    final_states: Iterable[Tuple[str, str]],
    journal_len: int,
) -> Dict[str, Any]:
    """Encode one full durable-state snapshot.

    ``pending`` is the service's pending queries in arrival order
    (:class:`~repro.core.query.EntangledQuery` objects);
    ``final_states`` the serialized handle resolutions as
    ``(name, state_value)`` pairs in insertion order; ``journal_len``
    the total journal entries the snapshot subsumes (recovery counts
    onward from it).  The database image reuses
    :func:`repro.db.wire.build_sync` against an empty stamp vector —
    a full snapshot is just a replica sync from zero.
    """
    db_payload, _ = wire.build_sync(db, {})
    return {
        "k": "snap",
        "journal_len": int(journal_len),
        "db": db_payload,
        "pending": [wire.encode_query(query) for query in pending],
        "finals": [[name, state] for name, state in final_states],
    }


@dataclass
class RecoveredState:
    """What :meth:`DurableStore.recover` reconstructed from disk.

    ``db_sync`` applies to an (empty) authoritative database via
    :func:`repro.db.wire.apply_sync`; ``pending`` re-admits in order
    (decoded :class:`~repro.core.query.EntangledQuery` objects);
    ``final_states`` are ``(name, state_value)`` pairs; ``records``
    are the WAL suffix's decoded records in commit order, each either
    ``("journal", entry)``, ``("rows", relation, rows)`` or
    ``("ddl", schema)``.
    """

    generation: int = 0
    db_sync: Optional[Dict[str, Any]] = None
    pending: List = field(default_factory=list)
    final_states: List[Tuple[str, str]] = field(default_factory=list)
    records: List[Tuple] = field(default_factory=list)
    snapshot_journal_len: int = 0
    torn_record_discarded: bool = False

    @property
    def journal_len(self) -> int:
        """Total journal entries durably recovered (snapshot + WAL)."""
        return self.snapshot_journal_len + sum(
            1 for record in self.records if record[0] == "journal"
        )

    @property
    def empty(self) -> bool:
        """``True`` when the directory held no durable state at all."""
        return (
            self.db_sync is None
            and not self.pending
            and not self.final_states
            and not self.records
        )


# ---------------------------------------------------------------------------
# The durable store: WAL + snapshots + compaction + recovery
# ---------------------------------------------------------------------------
class DurableStore:
    """One service's durability directory: recovery, appends, checkpoints.

    Lifecycle (driven by the service, serialized under its router
    lock):

    1. ``store = DurableStore(config)`` — opens the directory and the
       snapshot store; nothing is written yet.
    2. ``state = store.recover()`` — loads the newest valid snapshot,
       replays/truncates the matching WAL, returns the
       :class:`RecoveredState` for the service to apply.
    3. ``store.checkpoint(payload)`` — the service calls this right
       after applying recovery (collapsing the replayed WAL into a
       fresh generation) and whenever :attr:`checkpoint_due` says the
       WAL grew past ``snapshot_every`` records.
    4. ``store.append_journal(entry)`` / ``store.append_mutation(event)``
       — the steady-state taps.
    5. ``store.close()`` — releases the WAL file and the snapshot
       store's handles (idempotent; asserted leak-free in CI).
    """

    def __init__(self, config: DurabilityConfig) -> None:
        self.config = config
        self.dir = Path(config.dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.snapshots = _make_snapshot_store(config)
        self.generation = 0
        self.journal_len = 0
        self._wal: Optional[WriteAheadLog] = None
        self._recovered = False
        self._closed = False
        # Serializes appends against checkpoint's WAL rotation: the
        # service's router lock covers its own operations, but a direct
        # ``db.insert`` from another thread reaches append_mutation()
        # without it.
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveredState:
        """Load the newest valid snapshot + WAL suffix; truncate torn tail."""
        state = RecoveredState()
        for generation in reversed(self.snapshots.generations()):
            try:
                payload = self.snapshots.load(generation)
            except (WireError, OSError):
                # A corrupt newest snapshot must not strand the whole
                # directory: fall back to the previous generation,
                # whose WAL was only compacted *after* its successor
                # snapshot landed durably.
                continue
            state.generation = generation
            state.db_sync = payload.get("db")
            state.pending = [
                wire.decode_query(obj) for obj in payload.get("pending", ())
            ]
            state.final_states = [
                (name, value) for name, value in payload.get("finals", ())
            ]
            state.snapshot_journal_len = int(payload.get("journal_len", 0))
            break
        wal_path = self._wal_path(state.generation)
        raw_records, valid_bytes, torn = scan_wal(wal_path)
        if torn:
            with open(wal_path, "r+b") as handle:
                handle.truncate(valid_bytes)
            state.torn_record_discarded = True
        for record in raw_records:
            kind = record.get("k")
            if kind == "j":
                state.records.append(
                    ("journal", wire.decode_journal([record["e"]])[0])
                )
            elif kind == "rows":
                state.records.append(
                    ("rows", record["rel"], wire.decode_rows(record["rows"]))
                )
            elif kind == "del":
                state.records.append(
                    ("del", record["rel"], wire.decode_rows(record["rows"]))
                )
            elif kind == "ddl":
                state.records.append(
                    ("ddl", wire.decode_schema(record["schema"]))
                )
            else:
                raise WireError(f"unknown WAL record kind {kind!r}")
        self.generation = state.generation
        self.journal_len = state.journal_len
        self._recovered = True
        return state

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def append_journal(self, entry: Tuple) -> None:
        """WAL one service journal entry (submit/retract/insert/flush…)."""
        with self._mutex:
            self._active_wal().append(
                {"k": "j", "e": wire.encode_journal([entry])[0]}
            )
            self.journal_len += 1

    def append_mutation(self, event: MutationEvent) -> None:
        """WAL one database mutation event (the mutation-listener tap)."""
        kind = event[0]
        with self._mutex:
            if kind in ("insert", "delete"):
                _, relation, rows = event
                self._active_wal().append(
                    {"k": "rows" if kind == "insert" else "del",
                     "rel": relation,
                     "rows": wire.encode_rows(rows)}
                )
            elif kind == "create_relation":
                self._active_wal().append(
                    {"k": "ddl", "schema": wire.encode_schema(event[1])}
                )
            else:  # pragma: no cover - events come from the Database facade
                raise WireError(f"unknown mutation event {event!r}")

    @property
    def checkpoint_due(self) -> bool:
        """Whether the WAL grew past the configured snapshot interval."""
        if self.config.snapshot_every <= 0:
            return False
        wal = self._wal
        return (
            wal is not None
            and wal.records_appended >= self.config.snapshot_every
        )

    # ------------------------------------------------------------------
    # Checkpoint (snapshot + WAL rotation + compaction)
    # ------------------------------------------------------------------
    def checkpoint(self, payload: Dict[str, Any]) -> int:
        """Write the next snapshot generation and compact the log.

        The payload is a :func:`build_snapshot_payload` product
        describing the *current* state (it must subsume every record in
        the active WAL).  Ordering is the crash-safety argument: the
        snapshot lands durably first, then the new WAL is created, then
        the old generation's files are deleted — so at every
        instant there is one loadable snapshot whose matching WAL
        replays to the present.  Returns the new generation number.
        """
        with self._mutex:
            new_generation = self.generation + 1
            self.snapshots.save(new_generation, payload)
            if self._wal is not None:
                self._wal.close()
            self._wal = WriteAheadLog(
                self._wal_path(new_generation), fsync=self.config.fsync
            )
            _fsync_dir(self.dir)
            previous = self.generation
            self.generation = new_generation
            self._cleanup_before(new_generation, previous)
            return new_generation

    def _cleanup_before(self, keep: int, previous: int) -> None:
        """Best-effort deletion of generations older than ``keep``."""
        for generation in self.snapshots.generations():
            if generation < keep:
                self.snapshots.delete(generation)
        for path in self.dir.glob("wal-*.log"):
            stem = path.name[len("wal-"):-len(".log")]
            if stem.isdigit() and int(stem) < keep:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _wal_path(self, generation: int) -> Path:
        return self.dir / f"wal-{generation:08d}.log"

    def _active_wal(self) -> WriteAheadLog:
        if self._closed:
            raise PreconditionError("durable store is closed")
        if not self._recovered:
            raise PreconditionError(
                "recover() must run before appending to the WAL"
            )
        if self._wal is None:
            self._wal = WriteAheadLog(
                self._wal_path(self.generation), fsync=self.config.fsync
            )
        return self._wal

    @property
    def wal_records_appended(self) -> int:
        """Records appended to the active WAL since the last rotation."""
        return 0 if self._wal is None else self._wal.records_appended

    def close(self) -> None:
        """Close the WAL and snapshot store handles (idempotent)."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            if self._wal is not None:
                self._wal.close()
            self.snapshots.close()

    def __repr__(self) -> str:
        return (
            f"DurableStore({self.dir}, gen {self.generation}, "
            f"{self.journal_len} journal entries, "
            f"fsync={self.config.fsync}, {self.snapshots.name} snapshots)"
        )
