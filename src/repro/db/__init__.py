"""In-memory relational database engine.

This package replaces the MySQL + JDBC backend of the paper's
implementation with a pure-Python engine: schemas, indexed tuple
storage, a backtracking conjunctive-query evaluator, and
machine-independent instrumentation counters.
"""

from .backend import (
    Backend,
    BackendSpec,
    EvaluationReader,
    ReplicatedBackend,
    SharedBackend,
    resolve_backend,
)
from .builder import DatabaseBuilder, unary_boolean_database
from .database import Database, MutationEvent
from .durability import (
    DurabilityConfig,
    DurableStore,
    FileSnapshotStore,
    RecoveredState,
    SnapshotStore,
    SQLiteSnapshotStore,
    WriteAheadLog,
    resolve_durability,
)
from .evaluator import Assignment, Evaluator
from .io import (
    database_from_spec,
    database_to_spec,
    load_csv_table,
    load_database,
    save_csv_table,
    save_database,
)
from .planner import CompiledPlan, Planner, compile_plan
from .query import ConjunctiveQuery, QueryShape
from .schema import RelationSchema, Schema
from .stats import CoordinationStats, EngineStats
from .storage import Relation, Row
from . import wire

__all__ = [
    "Assignment",
    "Backend",
    "BackendSpec",
    "CompiledPlan",
    "ConjunctiveQuery",
    "CoordinationStats",
    "Planner",
    "QueryShape",
    "compile_plan",
    "Database",
    "DatabaseBuilder",
    "DurabilityConfig",
    "DurableStore",
    "EngineStats",
    "EvaluationReader",
    "Evaluator",
    "FileSnapshotStore",
    "MutationEvent",
    "RecoveredState",
    "Relation",
    "ReplicatedBackend",
    "SharedBackend",
    "RelationSchema",
    "Row",
    "Schema",
    "SnapshotStore",
    "SQLiteSnapshotStore",
    "WriteAheadLog",
    "resolve_durability",
    "database_from_spec",
    "database_to_spec",
    "load_csv_table",
    "load_database",
    "resolve_backend",
    "save_csv_table",
    "save_database",
    "unary_boolean_database",
    "wire",
]
