"""Loading and saving databases (JSON specs and CSV tables).

The paper's prototype read its tables from MySQL; a reusable library
needs file-based fixtures.  Two formats:

* **JSON spec** — one file describing schema *and* rows::

      {
        "tables": [
          {"name": "Flights",
           "attributes": ["flightId", "destination"],
           "key": "flightId",
           "rows": [[101, "Zurich"], [102, "Paris"]]}
        ]
      }

* **CSV** — one table per file, header row = attribute names; values
  are strings unless they parse as integers (conjunctive queries match
  values exactly, so the caller controls typing via ``coerce``).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Callable, Hashable, Optional, Union

from ..errors import SchemaError
from .database import Database

PathLike = Union[str, Path]


def _default_coerce(text: str) -> Hashable:
    """CSV cell coercion: int when possible, else the raw string."""
    try:
        return int(text)
    except ValueError:
        return text


# ---------------------------------------------------------------------------
# JSON specs
# ---------------------------------------------------------------------------
def database_to_spec(db: Database) -> dict:
    """Serialise a database (schema + rows) to a JSON-able dict."""
    tables = []
    for relation_schema in db.schema:
        tables.append(
            {
                "name": relation_schema.name,
                "attributes": list(relation_schema.attributes),
                "key": relation_schema.key,
                "rows": [list(row) for row in db.rows(relation_schema.name)],
            }
        )
    return {"tables": tables}


def database_from_spec(spec: dict) -> Database:
    """Build a database from a JSON-able dict (inverse of the above)."""
    if "tables" not in spec or not isinstance(spec["tables"], list):
        raise SchemaError("database spec must have a 'tables' list")
    db = Database()
    for table in spec["tables"]:
        try:
            name = table["name"]
            attributes = table["attributes"]
        except (TypeError, KeyError) as exc:
            raise SchemaError(f"malformed table entry: {table!r}") from exc
        db.create_relation(name, attributes, key=table.get("key"))
        rows = table.get("rows", [])
        db.insert_many(name, (tuple(row) for row in rows))
    return db


def save_database(db: Database, path: PathLike) -> None:
    """Write the database as a JSON spec file."""
    Path(path).write_text(
        json.dumps(database_to_spec(db), indent=2, default=str),
        encoding="utf-8",
    )


def load_database(path: PathLike) -> Database:
    """Read a database from a JSON spec file."""
    spec = json.loads(Path(path).read_text(encoding="utf-8"))
    return database_from_spec(spec)


# ---------------------------------------------------------------------------
# CSV tables
# ---------------------------------------------------------------------------
def load_csv_table(
    db: Database,
    name: str,
    path: PathLike,
    key: Optional[str] = None,
    coerce: Callable[[str], Hashable] = _default_coerce,
) -> int:
    """Load one CSV file as a new relation; returns rows inserted.

    The header row provides the attribute names.
    """
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path} is empty") from None
        db.create_relation(name, header, key=key)
        count = 0
        for row in reader:
            if not row:
                continue
            if len(row) != len(header):
                raise SchemaError(
                    f"CSV row {row!r} has {len(row)} cells, header has "
                    f"{len(header)}"
                )
            if db.insert(name, tuple(coerce(cell) for cell in row)):
                count += 1
    return count


def save_csv_table(db: Database, name: str, path: PathLike) -> int:
    """Write one relation to a CSV file; returns rows written."""
    relation_schema = db.schema.get(name)
    rows = db.rows(name)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation_schema.attributes)
        for row in rows:
            writer.writerow(row)
    return len(rows)
