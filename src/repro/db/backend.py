"""Pluggable storage backends: how engine shards see the database.

The coordination engines split every component evaluation into a locked
*plan* phase and an unlocked *run* phase (``evaluate_admitted_phased``).
The run phase is pure database reads — which makes the question "what
database object does a shard evaluate against?" a seam.  This module
makes the seam explicit:

* :class:`SharedBackend` — the status quo: every shard evaluates
  against the one authoritative :class:`~repro.db.Database`, whose
  reader–writer lock arbitrates between concurrently evaluating
  workers and writers.  Zero copies, but every evaluation step takes
  the shared read lock.

* :class:`ReplicatedBackend` — the snapshot/versioned-store pattern of
  disk-backed search engines: each shard owns a private, **lock-free**
  replica (:class:`~repro.db.Database` built with
  ``synchronized=False``) and lazily re-syncs it from the
  authoritative store at *plan* time, by diffing the per-relation
  :meth:`~repro.db.Database.data_versions` stamps.  Relations are
  append-only, so a changed relation catches up by copying only its
  new row tail (:meth:`~repro.db.storage.Relation.replicate_from`) —
  O(rows written since the last sync), amortized over evaluations.
  The *evaluation* phase then runs entirely against private state: no
  cross-shard lock is touched, which is what lets worker shards scale
  the data plane on free-threaded builds.  The process-based shard
  executor (:mod:`repro.core.procexec`) is the cross-*process*
  incarnation of the same protocol: the identical stamp diff, with the
  row tails serialized by :mod:`repro.db.wire` instead of copied
  in-memory (:meth:`~repro.db.storage.Relation.row_tail` feeds both).

Invalidation is a two-level protocol:

1. every facade-level write to the authoritative store bumps a backend
   **write token** (registered via
   :meth:`~repro.db.Database.add_write_listener`), so an untouched
   database costs a replica exactly one integer comparison per
   acquisition — no shared lock, no stamp walk;
2. when the token moved, the reader takes one shared read acquisition
   on the authoritative store, diffs the per-relation ``write_epoch``
   stamps against what its replica last saw, and copies the changed
   relations' new rows (creating relations the replica has never seen,
   so DDL propagates too).

Because the replica applies the authoritative row lists *in insertion
order*, scans — and therefore conjunctive-query evaluation, option
lists, and the active-domain filler — are byte-identical to evaluating
against the authoritative store.  Writes performed directly on a
:class:`~repro.db.storage.Relation` handle bypass the facade and
therefore the token (exactly as they bypass the facade's counters);
route writes through ``Database.insert``/``insert_many`` — as the
service's ``insert`` barrier already does — when replicas are in play.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, Dict, List, Optional, Protocol, Union

from ..errors import PreconditionError
from .database import Database


class EvaluationReader(Protocol):
    """One shard's view acquisition: hands out the database to evaluate on.

    :meth:`acquire` is called in the engine's *plan* phase (under the
    engine lock, never concurrently with itself for one reader); the
    returned instance must stay valid and internally consistent for the
    duration of the evaluation that follows.
    """

    def acquire(self) -> Database:
        """Return the database instance this shard evaluates against."""
        ...


class Backend(Protocol):
    """A storage backend: the authoritative store plus per-shard readers."""

    #: Identifier used by CLI/benchmark selection (``shared``/``replicated``).
    name: str
    #: The authoritative database — writes always land here.
    db: Database

    def reader(self, shard: int) -> EvaluationReader:
        """The evaluation reader for shard ``shard`` (stable per shard)."""
        ...

    def close(self) -> None:
        """Release any hooks on the authoritative store (idempotent)."""
        ...


class _SharedReader:
    """Reader of the shared backend: the authoritative store itself."""

    __slots__ = ("_db",)

    def __init__(self, db: Database) -> None:
        self._db = db

    def acquire(self) -> Database:
        return self._db


class SharedBackend:
    """All shards evaluate against the one locked authoritative store."""

    name = "shared"

    def __init__(self, db: Database) -> None:
        self.db = db
        self._reader = _SharedReader(db)

    def reader(self, shard: int) -> _SharedReader:
        return self._reader

    def close(self) -> None:
        """Nothing to release: the shared backend installs no hooks."""

    def __repr__(self) -> str:
        return f"SharedBackend({self.db!r})"


class _Replica:
    """One shard's private replica and its sync bookkeeping."""

    __slots__ = ("db", "stamps", "token", "syncs", "rows_copied")

    def __init__(self, source: Optional[Database] = None) -> None:
        #: Lock-free private instance; only the owning shard reads it.
        self.db = Database(synchronized=False)
        if source is not None:
            # Replicas evaluate in the authoritative store's stead, so
            # they inherit its ablation toggles (plan cache, composite
            # indexes) — otherwise a toggled-off feature would silently
            # stay on wherever evaluation actually runs.
            self.db.configure(
                plan_cache=source.plan_cache_enabled,
                composite_indexes=source.composite_indexes_enabled,
            )
        #: Authoritative per-relation stamps as of the last sync.
        self.stamps: Dict[str, int] = {}
        #: Backend write token as of the last sync.  Real tokens are
        #: ≥ 0 and monotone, so -1 doubles as the never-synced sentinel
        #: (the first acquisition always takes the sync path).
        self.token = -1
        #: Introspection: completed sync passes / rows copied in total.
        self.syncs = 0
        self.rows_copied = 0


class _ReplicaReader:
    """Reader of the replicated backend: sync-on-demand private replica."""

    __slots__ = ("_backend", "_replica")

    def __init__(self, backend: "ReplicatedBackend", replica: _Replica) -> None:
        self._backend = backend
        self._replica = replica

    def acquire(self) -> Database:
        return self._backend._acquire(self._replica)


class ReplicatedBackend:
    """Per-shard lock-free replicas with versioned invalidation.

    One instance serves one authoritative database and any number of
    shards; each shard's reader owns a private replica.  See the module
    docstring for the sync/invalidation protocol.
    """

    name = "replicated"

    def __init__(self, db: Database) -> None:
        self.db = db
        self._replicas: List[_Replica] = []
        # The token is bumped by database write listeners, which may
        # fire from any thread; a mutex keeps the increment lost-update
        # free on free-threaded builds (readers only compare values).
        self._token_mutex = threading.Lock()
        self._write_token = 0
        # The registered listener must not pin this backend (and its
        # replicas) for the lifetime of the database: register a
        # weakref stub that self-prunes from the listener list once the
        # backend is collected, and detach eagerly in :meth:`close`.
        self._listener = _weak_write_listener(db, weakref.ref(self))
        db.add_write_listener(self._listener)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def _note_write(self) -> None:
        """Database write listener: invalidate every replica's fast path."""
        with self._token_mutex:
            self._write_token += 1

    @property
    def write_token(self) -> int:
        """Monotone count of authoritative facade writes (introspection)."""
        return self._write_token

    def close(self) -> None:
        """Detach this backend's write listener (idempotent).

        After closing, replicas stop receiving invalidation, so the
        backend must not serve further evaluations; the service closes
        the backends it created itself (``backend="replicated"``) from
        its own ``close``.  Without an explicit close the weakref stub
        self-prunes once the backend is garbage collected — but only an
        eager detach stops the (tiny) per-write stub call immediately.
        """
        self.db.remove_write_listener(self._listener)

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------
    def reader(self, shard: int) -> _ReplicaReader:
        """The reader for shard ``shard``, creating replicas as needed.

        Shards index densely from 0; readers are stable (repeated calls
        return views over the same replica), so an engine keeps its
        replica across the service's component migrations.
        """
        while len(self._replicas) <= shard:
            self._replicas.append(_Replica(self.db))
        return _ReplicaReader(self, self._replicas[shard])

    def replica_stats(self) -> List[Dict[str, int]]:
        """Per-replica sync counters (introspection/benchmarks)."""
        return [
            {"syncs": r.syncs, "rows_copied": r.rows_copied}
            for r in self._replicas
        ]

    # ------------------------------------------------------------------
    # Sync protocol
    # ------------------------------------------------------------------
    def _acquire(self, replica: _Replica) -> Database:
        """Return ``replica.db``, synced to the current authoritative state.

        Fast path: the write token did not move since this replica's
        last sync — return immediately, no shared lock taken.  Slow
        path: under one shared read acquisition of the authoritative
        store, diff the per-relation stamps and copy the changed
        relations' new row tails.  Read the token *before* the stamp
        walk: a write landing mid-sync leaves the recorded token stale,
        so the next acquisition re-syncs — never the reverse.
        """
        token = self._write_token
        if token == replica.token:
            return replica.db
        source = self.db
        with source.rw.read():
            for name, relation in source._relations.items():
                epoch = relation.write_epoch
                if replica.stamps.get(name) == epoch and name in replica.db:
                    continue
                if name in replica.db:
                    mirror = replica.db.relation(name)
                else:
                    mirror = replica.db.attach_relation(relation.schema)
                replica.rows_copied += mirror.replicate_from(relation)
                replica.stamps[name] = epoch
        replica.token = token
        replica.syncs += 1
        return replica.db


def _weak_write_listener(
    db: Database, ref: "weakref.ref[ReplicatedBackend]"
) -> Callable[[], None]:
    """A write-listener stub holding only a weakref to its backend.

    Forwards to the live backend's token bump; once the backend has
    been collected, removes itself from the database's listener list
    (the snapshot in ``Database._notify_write`` makes mid-notification
    removal safe), so long-lived databases do not accumulate dead
    stubs across short-lived backends that were never ``close``d.
    """

    def stub() -> None:
        backend = ref()
        if backend is None:
            db.remove_write_listener(stub)
        else:
            backend._note_write()

    return stub


#: What service/CLI callers may pass to select a backend.
BackendSpec = Union[str, Backend]

_BACKENDS = {
    SharedBackend.name: SharedBackend,
    ReplicatedBackend.name: ReplicatedBackend,
}


def resolve_backend(spec: BackendSpec, db: Database) -> Backend:
    """Turn a backend spec into an instance bound to ``db``.

    ``spec`` is a name (``"shared"``/``"replicated"``), or an existing
    backend instance — which must already be bound to ``db`` (a backend
    syncs replicas from *its* authoritative store; silently accepting a
    mismatch would serve stale foreign data).
    """
    if isinstance(spec, str):
        try:
            factory = _BACKENDS[spec]
        except KeyError:
            raise PreconditionError(
                f"unknown storage backend {spec!r} "
                f"(expected one of {sorted(_BACKENDS)})"
            ) from None
        return factory(db)
    if getattr(spec, "db", None) is not db:
        raise PreconditionError(
            "backend instance is bound to a different database"
        )
    return spec
