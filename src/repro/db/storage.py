"""Tuple storage for a single relation, with hash indexes.

The paper's experiments issue two kinds of database work: conjunctive
query grounding ("is there a tuple matching these constants?") and
option-list scans ("all distinct values of these attributes").  Both are
served efficiently by hash indexes built lazily on first use: one per
probed column, plus **composite** indexes keyed by a position tuple for
multi-column binding patterns (the evaluator's join probes), so an
exact-match probe on any binding pattern is a single bucket lookup with
no residual filtering.

A :class:`Relation` stores tuples in insertion order (a list) alongside a
set for O(1) duplicate/membership checks, mirroring set semantics of the
relational model while keeping scans deterministic.

Concurrency: relations carry no lock of their own — the
:class:`~repro.db.Database` facade's reader–writer lock is the
synchronization boundary.  Under it the invariants are simple: writers
are exclusive, and concurrent *readers* are safe even through the lazy
index builds (:meth:`Relation._index_for`,
:meth:`Relation._composite_index_for`) and the projection caches,
because a build only reads the (frozen, under the read lock) row list
into a local dict and installs it with one atomic store — two readers
racing to build the same index each install a complete, identical
dict.  The :attr:`Relation.write_epoch` stamp is what lets readers
cache derived state across writes without holding any lock: epochs
only grow, so a stamp comparison is a race-free staleness check; the
:meth:`distinct_values`/:meth:`domain` caches below use exactly that
check, as does the plan cache in :mod:`repro.db.planner`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..errors import ArityError, PreconditionError
from .schema import RelationSchema
from .stats import EngineStats

Row = Tuple[Hashable, ...]


class Tombstone:
    """A deletion marker in a relation's mutation log.

    The replica-sync protocol ships mutation-log *tails*; with deletion
    in the model a tail entry is either a row (an insert) or one of
    these (a delete of ``row``).  Replicas replay entries in order, so
    a delete-then-reinsert of the same tuple lands correctly.
    """

    __slots__ = ("row",)

    def __init__(self, row: Row) -> None:
        self.row = row

    def __repr__(self) -> str:
        return f"Tombstone({self.row!r})"


#: One mutation-log entry: an inserted row, or a :class:`Tombstone`.
LogEntry = Union[Row, Tombstone]

#: Log entries kept behind the live set after compaction, so replicas
#: that are only slightly behind still catch up by tail instead of by
#: full reset.
_COMPACT_KEEP = 64


class Relation:
    """An indexed, in-memory tuple store for one relation."""

    __slots__ = (
        "schema",
        "_rows",
        "_row_set",
        "_indexes",
        "_composites",
        "composites_enabled",
        "_distinct_cache",
        "_domain_cache",
        "_log",
        "log_start",
        "write_epoch",
        "stats",
    )

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._rows: List[Row] = []
        self._row_set: Set[Row] = set()
        # position -> value -> list of row indexes
        self._indexes: Dict[int, Dict[Hashable, List[int]]] = {}
        # position tuple (sorted, len >= 2) -> value tuple -> row indexes
        self._composites: Dict[Tuple[int, ...], Dict[Tuple[Hashable, ...], List[int]]] = {}
        #: Ablation toggle (see :meth:`set_composite_indexes`): when
        #: ``False``, multi-column probes fall back to a single-column
        #: probe plus residual filtering instead of building composite
        #: indexes.  Results are identical either way; only the cost
        #: profile changes.
        self.composites_enabled = True
        # positions tuple -> (epoch, projection set); epoch-stamped so a
        # cached projection survives until the next insert.
        self._distinct_cache: Dict[Tuple[int, ...], Tuple[int, Set[Tuple[Hashable, ...]]]] = {}
        self._domain_cache: Optional[Tuple[int, Set[Hashable]]] = None
        # The mutation log: every successful insert appends its row,
        # every successful delete appends a Tombstone.  Entry i of the
        # conceptual full log carries the mutation that bumped the
        # epoch from i to i+1; only the suffix starting at ``log_start``
        # is retained (deletes trigger compaction), so the invariant is
        #     write_epoch == log_start + len(_log)
        # For append-only relations the log is exactly the row list and
        # ``log_start`` stays 0.
        self._log: List[LogEntry] = []
        self.log_start = 0
        # Monotone mutation counter; bumped on every successful insert
        # or delete, regardless of which facade performed it.  Caches
        # key their validity on this — globally via
        # Database.data_version and per relation via
        # Database.data_versions — so it must never be reset or
        # decremented.
        self.write_epoch = 0
        #: Engine counters this store reports into (``index_probes``,
        #: ``composite_indexes_built``).  Set by the owning
        #: :class:`~repro.db.Database`; ``None`` for standalone stores.
        self.stats: Optional[EngineStats] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: Iterable[Hashable]) -> bool:
        """Insert a tuple; returns ``False`` if it was already present."""
        row = tuple(row)
        if len(row) != self.schema.arity:
            raise ArityError(
                f"relation {self.schema.name!r} expects {self.schema.arity} "
                f"values, got {len(row)}"
            )
        if row in self._row_set:
            return False
        index = len(self._rows)
        self._rows.append(row)
        self._row_set.add(row)
        self._log.append(row)
        self.write_epoch += 1
        for position, bucket in self._indexes.items():
            bucket.setdefault(row[position], []).append(index)
        for positions, bucket in self._composites.items():
            key = tuple(row[p] for p in positions)
            bucket.setdefault(key, []).append(index)
        return True

    def insert_many(self, rows: Iterable[Iterable[Hashable]]) -> int:
        """Insert many tuples; returns the number actually inserted."""
        return sum(1 for row in rows if self.insert(row))

    def delete(self, row: Iterable[Hashable]) -> bool:
        """Delete a tuple; returns ``False`` if it was not present.

        Set semantics mirror :meth:`insert`: deleting an absent row is
        an idempotent no-op (no epoch bump, no log entry), which is
        what lenient crash-recovery replay relies on.  A successful
        delete logs a :class:`Tombstone`, bumps the epoch, and drops
        the positional indexes wholesale — row indexes shift when a row
        leaves the list, and the lazy builds recreate them on the next
        probe — then compacts the mutation log if tombstone churn has
        let it outgrow the live set.
        """
        row = tuple(row)
        if row not in self._row_set:
            return False
        self._rows.remove(row)
        self._row_set.discard(row)
        self._indexes.clear()
        self._composites.clear()
        self._log.append(Tombstone(row))
        self.write_epoch += 1
        if len(self._log) > 2 * len(self._rows) + _COMPACT_KEEP:
            del self._log[: len(self._log) - _COMPACT_KEEP]
            self.log_start = self.write_epoch - len(self._log)
        return True

    def replicate_from(self, source: "Relation") -> int:
        """Replay ``source``'s mutations this store has not seen yet.

        The replica-sync primitive: a replica whose epoch trails the
        source catches up by replaying the source's mutation-log tail
        starting at its own epoch — O(new mutations), never
        O(relation).  If the source has compacted that tail away (only
        possible with deletions), the replica falls back to a full
        :meth:`reset_to` of the source's live rows.  Either way the
        replica's row order ends up byte-identical to the source's, so
        scans (and therefore evaluation results) match exactly.
        Returns the number of mutations applied (rows on reset); the
        caller holds whatever lock protects ``source``.
        """
        try:
            tail = source.row_tail(self.write_epoch)
        except PreconditionError:
            rows = list(source.scan())
            self.reset_to(rows, source.write_epoch)
            return len(rows)
        applied = 0
        for entry in tail:
            if isinstance(entry, Tombstone):
                if self.delete(entry.row):
                    applied += 1
            elif self.insert(entry):
                applied += 1
        return applied

    def row_tail(self, start: int) -> List[LogEntry]:
        """The mutations applied at or after epoch ``start``, in order.

        The serializable face of :meth:`replicate_from`: an in-process
        replica replays the tail directly, while the wire codec
        (:func:`repro.db.wire.build_sync`) encodes the same tail into a
        sync payload shipped over the IPC/TCP boundary.  Entries are
        rows (inserts) or :class:`Tombstone` markers (deletes).  For an
        append-only relation this is exactly the rows inserted at or
        after row index ``start``.  Raises
        :class:`~repro.errors.PreconditionError` when ``start``
        predates the retained log (compaction discarded it) — callers
        fall back to a full snapshot.  The caller holds whatever lock
        protects this relation.
        """
        if start < self.log_start:
            raise PreconditionError(
                f"relation {self.schema.name!r} mutation log starts at "
                f"epoch {self.log_start}, tail from {start} was compacted "
                "away"
            )
        return self._log[start - self.log_start:]

    def reset_to(self, rows: Iterable[Row], epoch: int) -> None:
        """Replace all state with ``rows`` at mutation epoch ``epoch``.

        The full-snapshot fallback of the sync protocol: when a
        replica's acknowledged epoch predates the source's retained
        mutation log, the source ships its live rows plus its epoch and
        the replica adopts them wholesale.  The row list is loaded in
        the given order (so scans match the source), the mutation log
        restarts empty at ``epoch``, and — because epochs stay monotone
        (``epoch`` is the source's, always ahead of the replica's) —
        epoch-keyed caches stay sound.
        """
        self._rows = [tuple(row) for row in rows]
        self._row_set = set(self._rows)
        self._indexes.clear()
        self._composites.clear()
        self._distinct_cache.clear()
        self._domain_cache = None
        self._log = []
        self.log_start = epoch
        self.write_epoch = epoch

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _index_for(self, position: int) -> Dict[Hashable, List[int]]:
        """Return (building lazily) the hash index on ``position``.

        Safe under concurrent readers (who may race to build the same
        index): the build writes only a local dict over the frozen row
        list and publishes it with a single atomic store.
        """
        bucket = self._indexes.get(position)
        if bucket is None:
            bucket = {}
            for i, row in enumerate(self._rows):
                bucket.setdefault(row[position], []).append(i)
            self._indexes[position] = bucket
        return bucket

    def _composite_index_for(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple[Hashable, ...], List[int]]:
        """Return (building lazily) the composite index on ``positions``.

        ``positions`` must be sorted.  Built on the first probe of that
        binding pattern and maintained incrementally by :meth:`insert`
        from then on; the same atomic-publish discipline as
        :meth:`_index_for` makes the lazy build safe under concurrent
        readers.  Memory: one dict entry per distinct projection of the
        relation onto ``positions`` — bounded by the row count, paid
        only for patterns actually probed.
        """
        bucket = self._composites.get(positions)
        if bucket is None:
            bucket = {}
            for i, row in enumerate(self._rows):
                bucket.setdefault(tuple(row[p] for p in positions), []).append(i)
            self._composites[positions] = bucket
            if self.stats is not None:
                self.stats.composite_indexes_built += 1
        return bucket

    def distinct_count(self, position: int) -> int:
        """Number of distinct values in column ``position`` (O(1) once
        the column's index exists; builds it otherwise).  The planner's
        per-column statistic."""
        return len(self._index_for(position))

    def contains(self, row: Iterable[Hashable]) -> bool:
        """Membership test for a fully ground tuple."""
        return tuple(row) in self._row_set

    def scan(self) -> Iterator[Row]:
        """Iterate over all tuples in insertion order."""
        return iter(self._rows)

    def match(self, bindings: Dict[int, Hashable]) -> Iterator[Row]:
        """Iterate over tuples matching position→value equality bindings.

        Every bound pattern is a single exact-match bucket lookup: one
        column through the per-column index, several columns through the
        composite index on that position tuple — no residual filtering
        in either case.  With no bindings this is a full scan.  Rows
        come out in insertion order (buckets store row indexes in
        insertion order), so consumers see the same sequence a filtered
        scan would produce.
        """
        if not bindings:
            return iter(self._rows)
        stats = self.stats
        if stats is not None:
            stats.index_probes += 1
        hits = self._hits_for(bindings)
        if not hits:
            return iter(())
        # Lazy map over the index hits: consumers like
        # ``first_solution`` stop at the first row, so a large
        # bucket must not be materialized up front.
        return map(self._rows.__getitem__, hits)

    def _hits_for(self, bindings: Dict[int, Hashable]) -> Optional[List[int]]:
        """The index bucket for a non-empty binding pattern (or None)."""
        if len(bindings) == 1:
            ((position, value),) = bindings.items()
            return self._index_for(position).get(value)
        positions = sorted(bindings)
        if not self.composites_enabled:
            # Ablation fallback: probe the first column's index, then
            # residual-filter in index (= insertion) order so callers
            # observe exactly the rows, in exactly the order, the
            # composite bucket would have held.
            hits = self._index_for(positions[0]).get(bindings[positions[0]])
            if not hits:
                return None
            rest = [(p, bindings[p]) for p in positions[1:]]
            rows = self._rows
            out = [i for i in hits if all(rows[i][p] == v for p, v in rest)]
            return out or None
        key = tuple(bindings[p] for p in positions)
        return self._composite_index_for(tuple(positions)).get(key)

    def set_composite_indexes(self, enabled: bool) -> None:
        """Enable/disable composite indexes (the ablation toggle).

        Disabling drops any composite indexes already built and routes
        multi-column probes through the single-column fallback in
        :meth:`_hits_for`.  Match results (rows *and* their order) are
        unchanged in either mode, so flipping this cannot alter
        evaluation output — only its cost.  The caller owns
        synchronization (flip before serving, or under the facade's
        write lock).
        """
        self.composites_enabled = enabled
        if not enabled:
            self._composites.clear()

    def count_match(self, bindings: Dict[int, Hashable]) -> int:
        """Number of tuples matching the bindings.

        O(1) for any binding pattern: the answer is the length of the
        (single-column or composite) index bucket, never an iteration
        over the match stream.
        """
        if not bindings:
            return len(self._rows)
        hits = self._hits_for(bindings)
        return len(hits) if hits else 0

    def distinct_values(self, positions: Tuple[int, ...]) -> Set[Tuple[Hashable, ...]]:
        """All distinct projections of the relation onto ``positions``.

        Cached per position tuple, keyed by :attr:`write_epoch`: the
        option-list scans of the Consistent Coordination Algorithm ask
        for the same projections on every evaluation, and between
        inserts the answer cannot change.  The returned set is the
        cached instance — treat it as read-only.
        """
        positions = tuple(positions)
        epoch = self.write_epoch
        cached = self._distinct_cache.get(positions)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        out = {tuple(row[p] for p in positions) for row in self._rows}
        self._distinct_cache[positions] = (epoch, out)
        return out

    def domain(self) -> Set[Hashable]:
        """All values appearing anywhere in the relation.

        Epoch-cached like :meth:`distinct_values`; the returned set is
        the cached instance — treat it as read-only.
        """
        epoch = self.write_epoch
        cached = self._domain_cache
        if cached is not None and cached[0] == epoch:
            return cached[1]
        out: Set[Hashable] = set()
        for row in self._rows:
            out.update(row)
        self._domain_cache = (epoch, out)
        return out

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return self.scan()

    def __repr__(self) -> str:
        return f"Relation({self.schema}, {len(self)} rows)"
