"""Tuple storage for a single relation, with hash indexes.

The paper's experiments issue two kinds of database work: conjunctive
query grounding ("is there a tuple matching these constants?") and
option-list scans ("all distinct values of these attributes").  Both are
served efficiently by per-column hash indexes built lazily on first use.

A :class:`Relation` stores tuples in insertion order (a list) alongside a
set for O(1) duplicate/membership checks, mirroring set semantics of the
relational model while keeping scans deterministic.

Concurrency: relations carry no lock of their own — the
:class:`~repro.db.Database` facade's reader–writer lock is the
synchronization boundary.  Under it the invariants are simple: writers
are exclusive, and concurrent *readers* are safe even through the lazy
index build (:meth:`Relation._index_for`), because a build only reads
the (frozen, under the read lock) row list into a local dict and
installs it with one atomic store — two readers racing to build the
same index each install a complete, identical dict.  The
:attr:`Relation.write_epoch` stamp is what lets readers cache derived
state across writes without holding any lock: epochs only grow, so a
stamp comparison is a race-free staleness check.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import ArityError
from .schema import RelationSchema

Row = Tuple[Hashable, ...]


class Relation:
    """An indexed, in-memory tuple store for one relation."""

    __slots__ = ("schema", "_rows", "_row_set", "_indexes", "write_epoch")

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._rows: List[Row] = []
        self._row_set: Set[Row] = set()
        # position -> value -> list of row indexes
        self._indexes: Dict[int, Dict[Hashable, List[int]]] = {}
        # Monotone mutation counter; bumped on every successful insert,
        # regardless of which facade performed it.  Caches key their
        # validity on this — globally via Database.data_version and
        # per relation via Database.data_versions — so it must never
        # be reset or decremented.
        self.write_epoch = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: Iterable[Hashable]) -> bool:
        """Insert a tuple; returns ``False`` if it was already present."""
        row = tuple(row)
        if len(row) != self.schema.arity:
            raise ArityError(
                f"relation {self.schema.name!r} expects {self.schema.arity} "
                f"values, got {len(row)}"
            )
        if row in self._row_set:
            return False
        index = len(self._rows)
        self._rows.append(row)
        self._row_set.add(row)
        self.write_epoch += 1
        for position, bucket in self._indexes.items():
            bucket.setdefault(row[position], []).append(index)
        return True

    def insert_many(self, rows: Iterable[Iterable[Hashable]]) -> int:
        """Insert many tuples; returns the number actually inserted."""
        return sum(1 for row in rows if self.insert(row))

    def replicate_from(self, source: "Relation") -> int:
        """Append ``source``'s rows this store does not have yet.

        The replica-sync primitive: relations are append-only (rows are
        only ever added, in insertion order), so a replica that holds a
        prefix of the authoritative row list catches up by copying the
        tail — O(new rows), never O(relation).  Preserves insertion
        order exactly, so scans (and therefore evaluation results) on
        the replica are byte-identical to the source.  Returns the
        number of rows copied; the caller holds whatever lock protects
        ``source``.
        """
        copied = 0
        for row in source.row_tail(len(self._rows)):
            if self.insert(row):
                copied += 1
        return copied

    def row_tail(self, start: int) -> List[Row]:
        """The rows appended at or after index ``start``, in order.

        The serializable face of :meth:`replicate_from`: an in-process
        replica copies the tail directly, while the process executor's
        wire codec (:func:`repro.db.wire.build_sync`) encodes the same
        tail into a sync payload shipped over the IPC boundary.  The
        caller holds whatever lock protects this relation.
        """
        return self._rows[start:]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _index_for(self, position: int) -> Dict[Hashable, List[int]]:
        """Return (building lazily) the hash index on ``position``.

        Safe under concurrent readers (who may race to build the same
        index): the build writes only a local dict over the frozen row
        list and publishes it with a single atomic store.
        """
        bucket = self._indexes.get(position)
        if bucket is None:
            bucket = {}
            for i, row in enumerate(self._rows):
                bucket.setdefault(row[position], []).append(i)
            self._indexes[position] = bucket
        return bucket

    def contains(self, row: Iterable[Hashable]) -> bool:
        """Membership test for a fully ground tuple."""
        return tuple(row) in self._row_set

    def scan(self) -> Iterator[Row]:
        """Iterate over all tuples in insertion order."""
        return iter(self._rows)

    def match(self, bindings: Dict[int, Hashable]) -> Iterator[Row]:
        """Iterate over tuples matching position→value equality bindings.

        Uses the most selective available index among the bound
        positions, then filters on the rest.  With no bindings this is a
        full scan.  The one-bound-position case (the evaluator's common
        star-query probe) skips the residual-filter machinery entirely
        and returns a plain list iterator over the index hits.
        """
        if not bindings:
            return iter(self._rows)
        if len(bindings) == 1:
            ((position, value),) = bindings.items()
            hits = self._index_for(position).get(value)
            if not hits:
                return iter(())
            # Lazy map over the index hits: consumers like
            # ``first_solution`` stop at the first row, so a large
            # bucket must not be materialized up front.
            return map(self._rows.__getitem__, hits)
        return self._match_filtered(bindings)

    def _match_filtered(self, bindings: Dict[int, Hashable]) -> Iterator[Row]:
        """The multi-position case: best index probe + residual filter."""
        # Pick the bound position whose index bucket is smallest.
        best_position = None
        best_rows: Optional[List[int]] = None
        for position, value in bindings.items():
            bucket = self._index_for(position).get(value, [])
            if best_rows is None or len(bucket) < len(best_rows):
                best_position, best_rows = position, bucket
                if not bucket:
                    return
        assert best_rows is not None
        rest = [(p, v) for p, v in bindings.items() if p != best_position]
        for i in best_rows:
            row = self._rows[i]
            if all(row[p] == v for p, v in rest):
                yield row

    def count_match(self, bindings: Dict[int, Hashable]) -> int:
        """Number of tuples matching the bindings."""
        return sum(1 for _ in self.match(bindings))

    def distinct_values(self, positions: Tuple[int, ...]) -> Set[Tuple[Hashable, ...]]:
        """All distinct projections of the relation onto ``positions``."""
        return {tuple(row[p] for p in positions) for row in self._rows}

    def domain(self) -> Set[Hashable]:
        """All values appearing anywhere in the relation."""
        out: Set[Hashable] = set()
        for row in self._rows:
            out.update(row)
        return out

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return self.scan()

    def __repr__(self) -> str:
        return f"Relation({self.schema}, {len(self)} rows)"
