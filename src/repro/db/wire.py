"""Wire codec for the process-based shard executor.

The replicated storage backend (:mod:`repro.db.backend`) already made
replica sync an explicit copy-over-a-boundary: per-relation row tails
keyed by :meth:`~repro.db.Database.data_versions` stamps.  This module
makes the boundary a real one — a framed, versioned byte protocol the
:class:`~repro.core.procexec.ProcessShardExecutor` ships over a pipe
between the router process and its shard worker processes:

* **frames** — every message is ``MAGIC + version byte + CRC-32 +
  compact JSON`` (:func:`dumps` / :func:`loads`).  The explicit
  magic/version header means a mixed-version router/worker pair fails
  loudly at the first frame instead of mis-decoding payloads, and the
  payload checksum means a frame corrupted in transit *or at rest*
  (the durability subsystem journals these frames to disk —
  :mod:`repro.db.durability`) raises
  :class:`~repro.errors.WireError` instead of decoding garbage;
* **values** — database values (the hashables rows and assignments
  carry: ``None``/``bool``/``int``/``float``/``str`` and nested
  tuples) round-trip through a tagged encoding
  (:func:`encode_value` / :func:`decode_value`); non-finite floats are
  tagged because JSON cannot carry them natively, and unsupported
  types raise :class:`~repro.errors.WireError` rather than pickling
  arbitrary objects across the trust boundary;
* **replica sync** — :func:`build_sync` diffs a database against the
  per-relation stamp vector a replica last acknowledged and emits the
  changed relations' schemas + mutation-log tails — inserts as plain
  rows, deletes as tagged tombstone entries, and a full-rows *reset*
  record when the source compacted the tail away (:func:`apply_sync`
  replays them into the replica, verifying the mutation epochs line up
  before and after — a mismatch means desync);
* **queries, results, journal records** — entangled queries, chosen
  coordinating sets/assignments and the service's linearized journal
  entries (:func:`encode_journal` / :func:`decode_journal`) all have
  explicit codecs, so admission commands, resolution records and
  crash-replay streams travel as data, never as pickled code.

Layering note: this is a ``repro.db`` module, but journal records and
coordination results are core-layer values, so those codecs import
:mod:`repro.core.query` / :mod:`repro.core.result` lazily inside the
functions — ``repro.db`` itself stays importable without dragging the
coordination layer in (and no import cycle can form).
"""

from __future__ import annotations

import json
import math
import zlib
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..errors import PreconditionError, WireError
from ..logic import Atom, Constant, Variable
from .database import Database
from .schema import RelationSchema
from .storage import Tombstone

#: Frame header: magic + one version byte + CRC-32 of the payload
#: (4 bytes, big-endian).  Bump the version whenever the frame layout
#: or a payload shape changes incompatibly; a mismatched peer then
#: fails at the first frame with a :class:`~repro.errors.WireError`.
#: Version history: 1 = MAGIC+version+JSON, 2 = added the CRC-32,
#: 3 = deletion-aware sync (tombstone tail entries, reset records,
#: the ``delete`` journal op).
MAGIC = b"EQ"
VERSION = 3

#: Bytes before the payload: magic (2) + version (1) + CRC-32 (4).
HEADER_SIZE = 7

#: Reserved key marking a tagged (non-scalar) encoded value.
_TAG = "%"


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------
def dumps(message: Any) -> bytes:
    """Encode one message (already codec output) as a framed byte string."""
    try:
        payload = json.dumps(
            message, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise WireError(f"message is not wire-encodable: {error}") from None
    crc = zlib.crc32(payload).to_bytes(4, "big")
    return MAGIC + bytes((VERSION,)) + crc + payload


def loads(frame: bytes) -> Any:
    """Decode one framed byte string back into its message.

    Verifies the header *and* the payload CRC-32: a frame with any
    flipped byte — header, checksum, or payload — raises
    :class:`~repro.errors.WireError` rather than decoding to garbage.
    The WAL (:mod:`repro.db.durability`) leans on exactly this to turn
    a torn or bit-rotted record into a clean recovery boundary.
    """
    if len(frame) < HEADER_SIZE or frame[:2] != MAGIC:
        raise WireError("frame does not start with the wire magic")
    if frame[2] != VERSION:
        raise WireError(
            f"wire version mismatch: peer speaks {frame[2]}, we speak {VERSION}"
        )
    payload = frame[HEADER_SIZE:]
    expected = int.from_bytes(frame[3:HEADER_SIZE], "big")
    actual = zlib.crc32(payload)
    if actual != expected:
        raise WireError(
            f"wire frame CRC mismatch: header says {expected:#010x}, "
            f"payload hashes to {actual:#010x}"
        )
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"corrupt wire frame: {error}") from None


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------
def encode_value(value: Hashable) -> Any:
    """Encode one database value (row cell / assignment value)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        return {_TAG: "f", "v": repr(value)}  # 'nan' / 'inf' / '-inf'
    if isinstance(value, tuple):
        return {_TAG: "t", "v": [encode_value(item) for item in value]}
    raise WireError(
        f"unsupported wire value of type {type(value).__name__}: {value!r}"
    )


def decode_value(obj: Any) -> Hashable:
    """Invert :func:`encode_value`."""
    if isinstance(obj, dict):
        tag = obj.get(_TAG)
        if tag == "f":
            return float(obj["v"])
        if tag == "t":
            return tuple(decode_value(item) for item in obj["v"])
        raise WireError(f"unknown value tag {tag!r}")
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise WireError(f"undecodable wire value: {obj!r}")


# ---------------------------------------------------------------------------
# Schemas, row tails, stamp vectors
# ---------------------------------------------------------------------------
def encode_schema(schema: RelationSchema) -> Dict[str, Any]:
    """Encode one relation schema."""
    return {
        "name": schema.name,
        "attributes": list(schema.attributes),
        "key": schema.key,
    }


def decode_schema(obj: Dict[str, Any]) -> RelationSchema:
    """Invert :func:`encode_schema`."""
    return RelationSchema(obj["name"], obj["attributes"], obj.get("key"))


def encode_rows(rows) -> List[List[Any]]:
    """Encode an iterable of rows (tuples of values)."""
    return [[encode_value(value) for value in row] for row in rows]


def decode_rows(obj: List[List[Any]]) -> List[Tuple[Hashable, ...]]:
    """Invert :func:`encode_rows`."""
    return [tuple(decode_value(value) for value in row) for row in obj]


def encode_tail(entries) -> List[Any]:
    """Encode a mutation-log tail (:meth:`Relation.row_tail` output).

    Inserts travel as plain row lists; deletes as tagged tombstone
    records — mixed in order, because a delete-then-reinsert of the
    same tuple within one tail must replay in sequence.
    """
    out: List[Any] = []
    for entry in entries:
        if isinstance(entry, Tombstone):
            out.append(
                {_TAG: "d", "v": [encode_value(v) for v in entry.row]}
            )
        else:
            out.append([encode_value(value) for value in entry])
    return out


def decode_tail(obj: List[Any]) -> List[Any]:
    """Invert :func:`encode_tail` into rows and ``Tombstone`` entries."""
    entries: List[Any] = []
    for item in obj:
        if isinstance(item, dict):
            if item.get(_TAG) != "d":
                raise WireError(
                    f"unknown sync tail entry tag {item.get(_TAG)!r}"
                )
            entries.append(
                Tombstone(tuple(decode_value(v) for v in item["v"]))
            )
        else:
            entries.append(tuple(decode_value(value) for value in item))
    return entries


def encode_stamps(stamps: Dict[str, int]) -> Dict[str, int]:
    """Encode a per-relation stamp vector (name → write epoch)."""
    return {str(name): int(epoch) for name, epoch in stamps.items()}


def decode_stamps(obj: Dict[str, int]) -> Dict[str, int]:
    """Invert :func:`encode_stamps`."""
    return {str(name): int(epoch) for name, epoch in obj.items()}


def build_sync(
    db: Database, stamps: Dict[str, int]
) -> Tuple[Optional[Dict[str, Any]], Dict[str, int]]:
    """Diff ``db`` against a replica's acknowledged ``stamps``.

    Returns ``(payload, new_stamps)`` where ``payload`` is ``None`` when
    nothing changed, or a sync message containing one record per changed
    (or never-seen) relation — its schema, the mutation-log tail
    starting at the replica's acknowledged epoch, and the new epoch —
    plus the full target stamp vector the replica must match after
    applying.  Every successful insert or delete bumps the epoch
    exactly once, so the acknowledged epoch indexes straight into the
    source's mutation log — the same identity
    :meth:`~repro.db.storage.Relation.replicate_from` relies on.  When
    the source has compacted the tail away (deletion churn), the record
    degrades to a full-snapshot *reset*: the live rows plus the target
    epoch, applied via
    :meth:`~repro.db.storage.Relation.reset_to`.  The whole walk runs
    under one shared read acquisition of ``db``.
    """
    records: List[Dict[str, Any]] = []
    new_stamps = dict(stamps)
    with db.rw.read():
        for name, relation in db._relations.items():
            epoch = relation.write_epoch
            if new_stamps.get(name) == epoch:
                continue
            start = new_stamps.get(name, 0)
            try:
                tail = relation.row_tail(start)
            except PreconditionError:
                records.append(
                    {
                        "schema": encode_schema(relation.schema),
                        "reset": True,
                        "rows": encode_rows(relation.scan()),
                        "epoch": epoch,
                    }
                )
            else:
                records.append(
                    {
                        "schema": encode_schema(relation.schema),
                        "start": start,
                        "rows": encode_tail(tail),
                        "epoch": epoch,
                    }
                )
            new_stamps[name] = epoch
    if not records:
        return None, new_stamps
    return {"relations": records, "stamps": encode_stamps(new_stamps)}, new_stamps


def apply_sync(db: Database, payload: Dict[str, Any]) -> int:
    """Replay a :func:`build_sync` payload into a replica database.

    Attaches relations the replica has never seen (DDL propagates),
    replays each record's mutation-log tail in order — inserts and
    tombstoned deletes — and verifies the replica's mutation epoch
    lines up with the record before and after; *reset* records instead
    load the source's full live row list at its epoch.  Then
    cross-checks the payload's full stamp vector against the replica,
    which also catches relations that should have been synced but were
    *missing* from the records.  Any desync raises
    :class:`~repro.errors.WireError` instead of letting the replica
    silently evaluate against wrong data.  Returns the number of
    mutations applied (rows loaded, for resets).  The replica is
    single-owner (the calling shard), so mutations land directly on
    the relation stores.
    """
    applied = 0
    for record in payload["relations"]:
        schema = decode_schema(record["schema"])
        if schema.name in db:
            store = db.relation(schema.name)
        else:
            store = db.attach_relation(schema)
        if record.get("reset"):
            rows = decode_rows(record["rows"])
            store.reset_to(rows, record["epoch"])
            applied += len(rows)
            continue
        if store.write_epoch != record["start"]:
            raise WireError(
                f"replica desync on {schema.name!r}: replica at epoch "
                f"{store.write_epoch}, sync tail starts at {record['start']}"
            )
        for entry in decode_tail(record["rows"]):
            if isinstance(entry, Tombstone):
                store.delete(entry.row)
            else:
                store.insert(entry)
            applied += 1
        if store.write_epoch != record["epoch"]:
            raise WireError(
                f"replica desync on {schema.name!r}: epoch "
                f"{store.write_epoch} after sync, source said {record['epoch']}"
            )
    for name, epoch in decode_stamps(payload["stamps"]).items():
        if name not in db or db.relation(name).write_epoch != epoch:
            raise WireError(
                f"replica desync: relation {name!r} should be at epoch "
                f"{epoch} after sync"
            )
    return applied


# ---------------------------------------------------------------------------
# Terms, atoms, entangled queries
# ---------------------------------------------------------------------------
def encode_term(term) -> Any:
    """Encode one logic term (variable or constant)."""
    if isinstance(term, Variable):
        return {_TAG: "v", "n": term.name, "ns": term.namespace}
    if isinstance(term, Constant):
        return {_TAG: "c", "v": encode_value(term.value)}
    raise WireError(f"unsupported term {term!r}")


def decode_term(obj: Any):
    """Invert :func:`encode_term`."""
    tag = obj.get(_TAG) if isinstance(obj, dict) else None
    if tag == "v":
        return Variable(obj["n"], obj["ns"])
    if tag == "c":
        return Constant(decode_value(obj["v"]))
    raise WireError(f"undecodable term: {obj!r}")


def encode_atom(atom: Atom) -> Dict[str, Any]:
    """Encode one atom."""
    return {"rel": atom.relation, "terms": [encode_term(t) for t in atom.terms]}


def decode_atom(obj: Dict[str, Any]) -> Atom:
    """Invert :func:`encode_atom`."""
    return Atom(obj["rel"], [decode_term(t) for t in obj["terms"]])


def encode_query(query) -> Dict[str, Any]:
    """Encode one :class:`~repro.core.query.EntangledQuery`."""
    return {
        "name": query.name,
        "post": [encode_atom(a) for a in query.postconditions],
        "head": [encode_atom(a) for a in query.head],
        "body": [encode_atom(a) for a in query.body],
    }


def decode_query(obj: Dict[str, Any]):
    """Invert :func:`encode_query`."""
    from ..core.query import EntangledQuery  # lazy: see module docstring

    return EntangledQuery(
        obj["name"],
        [decode_atom(a) for a in obj["post"]],
        [decode_atom(a) for a in obj["head"]],
        [decode_atom(a) for a in obj["body"]],
    )


# ---------------------------------------------------------------------------
# Assignments, coordinating sets, coordination results
# ---------------------------------------------------------------------------
def encode_assignment(assignment: Dict[Variable, Hashable]) -> List[List[Any]]:
    """Encode a variable → value assignment (insertion order kept)."""
    return [
        [variable.name, variable.namespace, encode_value(value)]
        for variable, value in assignment.items()
    ]


def decode_assignment(obj: List[List[Any]]) -> Dict[Variable, Hashable]:
    """Invert :func:`encode_assignment`."""
    return {
        Variable(name, namespace): decode_value(value)
        for name, namespace, value in obj
    }


def encode_coordinating_set(chosen) -> Dict[str, Any]:
    """Encode one :class:`~repro.core.result.CoordinatingSet`."""
    return {
        "members": list(chosen.members),
        "assignment": encode_assignment(chosen.assignment),
    }


def decode_coordinating_set(obj: Dict[str, Any]):
    """Invert :func:`encode_coordinating_set`."""
    from ..core.result import CoordinatingSet  # lazy: see module docstring

    return CoordinatingSet(
        tuple(obj["members"]), decode_assignment(obj["assignment"])
    )


def encode_result(result) -> Optional[Dict[str, Any]]:
    """Encode one :class:`~repro.core.result.CoordinationResult`."""
    if result is None:
        return None
    from .stats import CoordinationStats

    stats = result.stats
    counters = {
        name: getattr(stats, name)
        for name in vars(CoordinationStats())
        if name != "extra"
    }
    return {
        "chosen": (
            None if result.chosen is None
            else encode_coordinating_set(result.chosen)
        ),
        "candidates": [
            encode_coordinating_set(c) for c in result.candidates
        ],
        "stats": {
            "counters": counters,
            "extra": {
                str(k): encode_value(v) for k, v in stats.extra.items()
            },
        },
    }


def decode_result(obj: Optional[Dict[str, Any]]):
    """Invert :func:`encode_result`."""
    if obj is None:
        return None
    from ..core.result import CoordinationResult  # lazy: see module docstring
    from .stats import CoordinationStats

    stats_obj = obj["stats"]
    stats = CoordinationStats(**stats_obj["counters"])
    stats.extra = {
        str(k): decode_value(v) for k, v in stats_obj["extra"].items()
    }
    return CoordinationResult(
        chosen=(
            None if obj["chosen"] is None
            else decode_coordinating_set(obj["chosen"])
        ),
        candidates=[
            decode_coordinating_set(c) for c in obj["candidates"]
        ],
        stats=stats,
    )


# ---------------------------------------------------------------------------
# Journal records
# ---------------------------------------------------------------------------
def encode_journal(entries) -> List[Dict[str, Any]]:
    """Encode a service journal (the linearized operation log).

    One record per :data:`~repro.core.service.JournalEntry`, in order —
    the crash-replay format: a journal written by a live service can be
    shipped/persisted as bytes and replayed into a fresh service or a
    single-engine oracle after a worker restart.
    """
    records: List[Dict[str, Any]] = []
    for entry in entries:
        kind = entry[0]
        if kind == "submit":
            records.append(
                {"op": "submit", "query": encode_query(entry[1]),
                 "raised": bool(entry[2])}
            )
        elif kind == "submit_many":
            records.append(
                {"op": "submit_many",
                 "queries": [encode_query(q) for q in entry[1]]}
            )
        elif kind == "retract":
            records.append(
                {"op": "retract", "name": entry[1], "raised": bool(entry[2])}
            )
        elif kind in ("insert", "delete"):
            records.append(
                {"op": kind, "relation": entry[1],
                 "row": [encode_value(v) for v in entry[2]]}
            )
        elif kind in ("flush", "flush_drain"):
            records.append({"op": kind})
        else:
            raise WireError(f"unknown journal entry {entry!r}")
    return records


def decode_journal(records: List[Dict[str, Any]]) -> List[Tuple[Any, ...]]:
    """Invert :func:`encode_journal` back into service journal tuples."""
    entries: List[Tuple[Any, ...]] = []
    for record in records:
        op = record["op"]
        if op == "submit":
            entries.append(
                ("submit", decode_query(record["query"]), record["raised"])
            )
        elif op == "submit_many":
            entries.append(
                ("submit_many",
                 tuple(decode_query(q) for q in record["queries"]))
            )
        elif op == "retract":
            entries.append(("retract", record["name"], record["raised"]))
        elif op in ("insert", "delete"):
            entries.append(
                (op, record["relation"],
                 tuple(decode_value(v) for v in record["row"]))
            )
        elif op in ("flush", "flush_drain"):
            entries.append((op,))
        else:
            raise WireError(f"unknown journal record {record!r}")
    return entries
