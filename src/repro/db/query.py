"""Conjunctive queries over a database schema.

A conjunctive query here is simply a list of body atoms over database
relations, with optional distinguished (output) variables.  This is the
only query language the paper's algorithms need: every interaction with
the database is "ground this conjunction" (find one satisfying
assignment) or "enumerate distinct values of these variables".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import SchemaError
from ..logic import Atom, Constant, Variable, atoms_variables
from .schema import Schema

#: One atom of a query shape: relation name plus, per position, the
#: variable's slot id (first-occurrence numbering across the body) or
#: ``-1`` for a constant position.
ShapeAtom = Tuple[str, Tuple[int, ...]]
#: The structural key of a query body — what the plan cache is keyed by.
QueryShape = Tuple[ShapeAtom, ...]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunction of atoms, optionally with output variables.

    ``outputs`` defaults to all variables of the body, in first-occurrence
    order.  An empty body is the trivially true query (the reductions of
    Section 3 use queries with empty bodies, written ``:- ∅`` in the
    paper).
    """

    atoms: Tuple[Atom, ...]
    outputs: Tuple[Variable, ...] = field(default=())

    def __init__(
        self,
        atoms: Iterable[Atom],
        outputs: Optional[Sequence[Variable]] = None,
    ) -> None:
        atoms = tuple(atoms)
        if outputs is None:
            seen: List[Variable] = []
            seen_set = set()
            for atom in atoms:
                for variable in atom.variables():
                    if variable not in seen_set:
                        seen_set.add(variable)
                        seen.append(variable)
            outputs = tuple(seen)
        else:
            body_vars = atoms_variables(atoms)
            for variable in outputs:
                if variable not in body_vars:
                    raise SchemaError(
                        f"output variable {variable} does not occur in the body"
                    )
            outputs = tuple(outputs)
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "outputs", outputs)

    @property
    def is_trivial(self) -> bool:
        """``True`` for the empty conjunction, which is always satisfied."""
        return not self.atoms

    def shape(self) -> QueryShape:
        """The structural key of the body: constants erased to ``-1``,
        variables numbered by first occurrence.

        Two queries share a shape exactly when they differ only in
        constant values and variable names — which is when a compiled
        plan (join order + probe specs) transfers between them, so the
        plan cache of :mod:`repro.db.planner` keys on this.  Memoized on
        the instance (the body is frozen).
        """
        shape = getattr(self, "_shape", None)
        if shape is None:
            slots: dict = {}
            parts = []
            for atom in self.atoms:
                cols = []
                for term in atom.terms:
                    if isinstance(term, Constant):
                        cols.append(-1)
                    else:
                        slot = slots.get(term)
                        if slot is None:
                            slot = slots[term] = len(slots)
                        cols.append(slot)
                parts.append((atom.relation, tuple(cols)))
            shape = tuple(parts)
            object.__setattr__(self, "_shape", shape)
            object.__setattr__(self, "_slot_variables", tuple(slots))
        return shape

    def slot_variables(self) -> Tuple[Variable, ...]:
        """Body variables in slot order (first occurrence); the inverse
        of the numbering :meth:`shape` assigns."""
        variables = getattr(self, "_slot_variables", None)
        if variables is None:
            self.shape()
            variables = getattr(self, "_slot_variables")
        return variables

    def variables(self) -> frozenset:
        """All distinct variables of the body."""
        return atoms_variables(self.atoms)

    def validate(self, schema: Schema) -> None:
        """Check every atom against the schema (relation exists, arity)."""
        for atom in self.atoms:
            relation = schema.get(atom.relation)
            if atom.arity != relation.arity:
                raise SchemaError(
                    f"atom {atom} has arity {atom.arity}, relation "
                    f"{relation.name!r} expects {relation.arity}"
                )

    def __str__(self) -> str:
        if not self.atoms:
            return "⊤"
        return ", ".join(str(a) for a in self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)
