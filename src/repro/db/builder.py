"""Fluent helpers for building small databases in tests and examples.

The paper's walkthroughs (flights/hotels in Section 2.2, movies in
Section 5) use tiny hand-written instances; this module keeps those
definitions readable::

    db = (DatabaseBuilder()
          .table("Flights", ["flightId", "destination"], key="flightId")
          .rows("Flights", [(101, "Zurich"), (102, "Paris")])
          .build())
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Tuple

from .database import Database
from .schema import Schema


class DatabaseBuilder:
    """Accumulates table declarations and rows, then builds a Database."""

    def __init__(self) -> None:
        self._tables: List[Tuple[str, Tuple[str, ...], Optional[str]]] = []
        self._rows: List[Tuple[str, List[Tuple[Hashable, ...]]]] = []

    def table(
        self,
        name: str,
        attributes: Iterable[str],
        key: Optional[str] = None,
    ) -> "DatabaseBuilder":
        """Declare a table."""
        self._tables.append((name, tuple(attributes), key))
        return self

    def rows(
        self, name: str, rows: Iterable[Iterable[Hashable]]
    ) -> "DatabaseBuilder":
        """Queue rows for a previously declared table."""
        self._rows.append((name, [tuple(r) for r in rows]))
        return self

    def row(self, name: str, *values: Hashable) -> "DatabaseBuilder":
        """Queue a single row given as positional values."""
        self._rows.append((name, [tuple(values)]))
        return self

    def build(self) -> Database:
        """Construct the database and load all queued rows."""
        schema = Schema()
        for name, attributes, key in self._tables:
            schema.relation(name, attributes, key)
        db = Database(schema)
        for name, rows in self._rows:
            db.insert_many(name, rows)
        return db


def unary_boolean_database(relation_name: str = "D") -> Database:
    """The two-value database used by the hardness reductions.

    Section 3 of the paper uses a database with a single unary relation
    ``D`` interpreted as ``{0, 1}`` so that conjunctive-query
    satisfiability is trivially polynomial while finding a coordinating
    set remains NP-complete.
    """
    builder = DatabaseBuilder().table(relation_name, ["value"])
    builder.rows(relation_name, [(0,), (1,)])
    return builder.build()
