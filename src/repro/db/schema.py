"""Relation schemas and database schemas.

The paper's experiments run over small, simple schemas (a ``Flights``
table, a ``Friends`` table, a members table from Slashdot, a unary
``D = {0, 1}`` relation in the reductions).  This module models schemas
explicitly so the engine can validate arity and attribute names, and so
the Consistent Coordination Algorithm can talk about *coordination
attributes* by name (Definitions 7–9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple

from ..errors import SchemaError, UnknownRelationError


@dataclass(frozen=True)
class RelationSchema:
    """The schema of a single relation: name plus ordered attributes.

    ``key`` optionally names the attribute that uniquely identifies a
    tuple (e.g. ``flightId``); the Consistent Coordination Algorithm
    returns (key, user) pairs and therefore needs to know which column
    is the key.
    """

    name: str
    attributes: Tuple[str, ...]
    key: Optional[str] = None

    def __init__(
        self,
        name: str,
        attributes: Iterable[str],
        key: Optional[str] = None,
    ) -> None:
        attributes = tuple(attributes)
        if not name:
            raise SchemaError("relation name must be non-empty")
        if not attributes:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"relation {name!r} has duplicate attribute names")
        if key is not None and key not in attributes:
            raise SchemaError(
                f"key {key!r} of relation {name!r} is not one of its attributes"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attributes)
        object.__setattr__(self, "key", key)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def position_of(self, attribute: str) -> int:
        """Index of ``attribute`` within the relation, or raise."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def positions_of(self, attributes: Iterable[str]) -> Tuple[int, ...]:
        """Indexes of several attributes, in the given order."""
        return tuple(self.position_of(a) for a in attributes)

    @property
    def key_position(self) -> int:
        """Index of the key attribute; raises if no key was declared."""
        if self.key is None:
            raise SchemaError(f"relation {self.name!r} has no declared key")
        return self.position_of(self.key)

    def __str__(self) -> str:
        inner = ", ".join(self.attributes)
        return f"{self.name}({inner})"


@dataclass
class Schema:
    """A database schema: a collection of relation schemas by name."""

    _relations: Dict[str, RelationSchema] = field(default_factory=dict)

    def add(self, relation: RelationSchema) -> "Schema":
        """Register a relation schema; returns ``self`` for chaining."""
        if relation.name in self._relations:
            raise SchemaError(f"relation {relation.name!r} already declared")
        self._relations[relation.name] = relation
        return self

    def relation(
        self,
        name: str,
        attributes: Iterable[str],
        key: Optional[str] = None,
    ) -> "Schema":
        """Declare a relation inline; returns ``self`` for chaining."""
        return self.add(RelationSchema(name, attributes, key))

    def get(self, name: str) -> RelationSchema:
        """Look up a relation schema by name, raising if unknown."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def names(self) -> Tuple[str, ...]:
        """All declared relation names."""
        return tuple(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __str__(self) -> str:
        return "; ".join(str(r) for r in self)
