"""Conjunctive-query evaluation through compiled plans.

The evaluator is the thin public face over :mod:`repro.db.planner`:
every evaluation asks the per-database :class:`~repro.db.planner.Planner`
for a :class:`~repro.db.planner.CompiledPlan` (cached across queries of
the same shape) and runs it.  The plan executes an index-nested-loop
join whose join order was chosen from per-relation cardinalities and
per-column distinct-value statistics at compile time, and whose probe
specs (constant positions, bound slots, newly-bound slots) are
precomputed — the hot loop does tuple-slot comparisons only, with no
``isinstance`` checks and no per-call atom ordering.  Candidate tuples
are fetched through the storage layer's single-column and composite
hash indexes, so each probe is one exact-match bucket lookup —
mirroring (and improving on) what MySQL did for the paper's
experiments.

Repeated variables inside one atom and across atoms are handled by the
plan's slot machinery (terms are flat, so no substitution machinery is
required on this hot path).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional

from ..logic import Variable
from .planner import Planner
from .query import ConjunctiveQuery
from .stats import EngineStats
from .storage import Relation

Assignment = Dict[Variable, Hashable]


class Evaluator:
    """Evaluates conjunctive queries against a set of relations."""

    __slots__ = ("_relations", "_stats", "_planner")

    def __init__(self, relations: Dict[str, Relation], stats: EngineStats) -> None:
        self._relations = relations
        self._stats = stats
        self._planner = Planner(relations, stats)

    @property
    def planner(self) -> Planner:
        """The plan cache this evaluator compiles through."""
        return self._planner

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solutions(
        self,
        query: ConjunctiveQuery,
        initial: Optional[Assignment] = None,
    ) -> Iterator[Assignment]:
        """Yield satisfying assignments (restricted to all body variables).

        ``initial`` pre-binds variables before the search starts — used
        by the grounding-reuse fast path of the SCC algorithm, which
        seeds a component's evaluation with its successors' solutions.
        The empty query yields exactly one assignment (the seed).
        """
        self._stats.queries_issued += 1
        plan = self._planner.plan_for(query)
        yield from plan.run(query, initial, self._relations, self._stats)

    def first_solution(
        self,
        query: ConjunctiveQuery,
        initial: Optional[Assignment] = None,
    ) -> Optional[Assignment]:
        """Return one satisfying assignment, or ``None``."""
        for assignment in self.solutions(query, initial=initial):
            return assignment
        return None

    def is_satisfiable(self, query: ConjunctiveQuery) -> bool:
        """Decide satisfiability (stops at the first solution)."""
        return self.first_solution(query) is not None

    def count_solutions(self, query: ConjunctiveQuery, limit: Optional[int] = None) -> int:
        """Count satisfying assignments, optionally up to ``limit``."""
        count = 0
        for _ in self.solutions(query):
            count += 1
            if limit is not None and count >= limit:
                break
        return count
