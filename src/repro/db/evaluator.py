"""Backtracking evaluator for conjunctive queries.

The evaluator implements an index-nested-loop join with a greedy
*bound-first* atom ordering: at every step it picks the atom with the
most already-bound positions (ties broken toward the smaller relation),
fetches candidate tuples through the storage layer's hash indexes, and
extends the current partial assignment.  For the star-shaped, mostly
constant-bound bodies issued by the coordination algorithms this is
effectively index lookup followed by constant-time checks, mirroring
what MySQL did for the paper's experiments.

Repeated variables inside one atom and across atoms are handled through
plain dictionary bindings (terms are flat, so no substitution machinery
is required on this hot path).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from ..logic import Atom, Constant, Variable
from .query import ConjunctiveQuery
from .stats import EngineStats
from .storage import Relation

Assignment = Dict[Variable, Hashable]

# Sentinel distinguishing "variable unbound" from "bound to None" with a
# single dict lookup on the innermost join loop.
_UNBOUND = object()


class Evaluator:
    """Evaluates conjunctive queries against a set of relations."""

    __slots__ = ("_relations", "_stats")

    def __init__(self, relations: Dict[str, Relation], stats: EngineStats) -> None:
        self._relations = relations
        self._stats = stats

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solutions(
        self,
        query: ConjunctiveQuery,
        initial: Optional[Assignment] = None,
    ) -> Iterator[Assignment]:
        """Yield satisfying assignments (restricted to all body variables).

        ``initial`` pre-binds variables before the search starts — used
        by the grounding-reuse fast path of the SCC algorithm, which
        seeds a component's evaluation with its successors' solutions.
        The empty query yields exactly one assignment (the seed).
        """
        self._stats.queries_issued += 1
        bound: Assignment = dict(initial) if initial else {}
        yield from self._search(self._order_atoms(list(query.atoms)), bound)

    def first_solution(
        self,
        query: ConjunctiveQuery,
        initial: Optional[Assignment] = None,
    ) -> Optional[Assignment]:
        """Return one satisfying assignment, or ``None``."""
        for assignment in self.solutions(query, initial=initial):
            return assignment
        return None

    def is_satisfiable(self, query: ConjunctiveQuery) -> bool:
        """Decide satisfiability (stops at the first solution)."""
        return self.first_solution(query) is not None

    def count_solutions(self, query: ConjunctiveQuery, limit: Optional[int] = None) -> int:
        """Count satisfying assignments, optionally up to ``limit``."""
        count = 0
        for _ in self.solutions(query):
            count += 1
            if limit is not None and count >= limit:
                break
        return count

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _order_atoms(self, atoms: List[Atom]) -> List[Atom]:
        """Static join order: constant-rich atoms first, then by
        variable connectivity.

        A standard static ordering heuristic in two phases: rank atoms
        globally by (number of constant positions, relation size), then
        emit them in a BFS over shared variables so every atom after the
        first is (whenever possible) connected to already-bound
        variables — index lookups instead of scans.  ``O(k·log k)`` in
        the number of atoms ``k``, which matters because the paper's
        combined queries grow with the coordinating set.
        """
        k = len(atoms)
        if k <= 1:
            return list(atoms)

        def global_rank(atom: Atom) -> Tuple[int, int]:
            constants = sum(1 for t in atom.terms if isinstance(t, Constant))
            relation = self._relations.get(atom.relation)
            size = len(relation) if relation is not None else 0
            return (-constants, size)

        ranked = sorted(range(k), key=lambda i: global_rank(atoms[i]))
        rank_of = {index: position for position, index in enumerate(ranked)}

        by_variable: Dict[Variable, List[int]] = {}
        for index, atom in enumerate(atoms):
            for variable in atom.variables():
                by_variable.setdefault(variable, []).append(index)

        ordered: List[Atom] = []
        placed = [False] * k
        bound_vars: set = set()
        heap: List[Tuple[int, int]] = []

        def place(index: int) -> None:
            placed[index] = True
            ordered.append(atoms[index])
            for variable in atoms[index].variables():
                if variable not in bound_vars:
                    bound_vars.add(variable)
                    for neighbour in by_variable.get(variable, ()):
                        if not placed[neighbour]:
                            heappush(heap, (rank_of[neighbour], neighbour))

        cursor = 0
        while len(ordered) < k:
            while heap and placed[heap[0][1]]:
                heappop(heap)
            if heap:
                _, index = heappop(heap)
                place(index)
                continue
            while placed[ranked[cursor]]:
                cursor += 1
            place(ranked[cursor])
        return ordered

    def _candidate_rows(
        self, atom: Atom, bound: Assignment
    ) -> Iterator[Tuple[Hashable, ...]]:
        """Index-filtered candidate tuples for one atom."""
        relation = self._relations.get(atom.relation)
        if relation is None or not len(relation):
            return iter(())
        fixed: Dict[int, Hashable] = {}
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                fixed[position] = term.value
            elif term in bound:
                fixed[position] = bound[term]
        return relation.match(fixed)

    def _search(self, atoms: List[Atom], bound: Assignment) -> Iterator[Assignment]:
        """Depth-first join with an explicit frame stack.

        Iterative rather than recursive: the combined queries of the
        coordination algorithms grow with the coordinating set, and a
        thousand-atom conjunction must not hit the interpreter's
        recursion limit.  Each frame holds the candidate-row iterator
        for one atom plus the variables it bound (for undo).
        """
        total = len(atoms)
        if total == 0:
            self._stats.solutions_found += 1
            yield dict(bound)
            return

        # Frame: [row_iterator, added_variables]
        stack: List[List[object]] = [
            [self._candidate_rows(atoms[0], bound), []]
        ]
        while stack:
            depth = len(stack) - 1
            frame = stack[-1]
            rows, added = frame
            # Undo this frame's previous bindings before trying the
            # next candidate row.
            for variable in added:  # type: ignore[union-attr]
                del bound[variable]
            frame[1] = []

            advanced = False
            for row in rows:  # type: ignore[union-attr]
                self._stats.tuples_examined += 1
                extension = self._try_bind(atoms[depth], row, bound)
                if extension is None:
                    continue
                _, new_added = extension
                frame[1] = new_added
                if depth + 1 == total:
                    self._stats.solutions_found += 1
                    yield dict(bound)
                    # Stay on this frame; next loop iteration undoes the
                    # bindings and tries the following row.
                    advanced = True
                    break
                stack.append(
                    [self._candidate_rows(atoms[depth + 1], bound), []]
                )
                advanced = True
                break
            if not advanced:
                stack.pop()

    def _try_bind(
        self, atom: Atom, row: Tuple[Hashable, ...], bound: Assignment
    ) -> Optional[Tuple[Assignment, List[Variable]]]:
        """Extend ``bound`` so that ``atom`` matches ``row``.

        Returns the (shared, mutated) assignment plus the list of newly
        added variables so the caller can undo them, or ``None`` if the
        row is inconsistent with the current bindings (repeated-variable
        clash).  Constant positions were already filtered by the index
        lookup but are re-checked for safety.
        """
        added: List[Variable] = []
        for position, term in enumerate(atom.terms):
            value = row[position]
            if isinstance(term, Constant):
                if term.value != value:
                    self._undo(bound, added)
                    return None
            else:
                existing = bound.get(term, _UNBOUND)
                if existing is _UNBOUND:
                    bound[term] = value
                    added.append(term)
                elif existing != value:
                    self._undo(bound, added)
                    return None
        return bound, added

    @staticmethod
    def _undo(bound: Assignment, added: List[Variable]) -> None:
        for variable in added:
            del bound[variable]
