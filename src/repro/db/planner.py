"""Compiled query plans and the plan cache.

The evaluator's hot loop used to re-derive everything per call: sort
the atoms (``_order_atoms``), classify every term with ``isinstance``
for every candidate row, and re-discover binding patterns the storage
layer had already served a thousand times.  This module moves all of
that to *compile time*:

* :func:`compile_plan` turns a query **shape**
  (:meth:`~repro.db.query.ConjunctiveQuery.shape`) into a
  :class:`CompiledPlan` — a join order plus, per atom, a precomputed
  probe spec (constant positions, bound-variable slots, newly-bound
  slots, within-atom duplicate checks).  Execution then works on
  integer slots and position tuples only: no ``isinstance``, no
  per-call sort, and every probe is an exact-match bucket lookup
  through the storage layer's (composite) hash indexes.

* :class:`Planner` caches plans keyed by shape.  Two queries that
  differ only in constants and variable names share a plan, which is
  exactly the traffic the coordination algorithms generate (the same
  partner/flights body per member, different member constants).

**Determinism.**  Replicated and process backends evaluate the same
logical database state on different :class:`~repro.db.Database`
instances with independent plan caches, and the equivalence suites
require byte-identical results.  The compiler therefore consumes only
*quantized* statistics — per-relation size classes and per-column
distinct-value classes (``bit_length`` buckets) — and a cached plan
stays valid exactly while that signature is unchanged.  Compilation is
a pure function of (shape, signature), so any two instances holding
the same data compile — or keep cached — the identical plan, no matter
when each of them compiled it.

**Invalidation.**  Cheap before correct-but-slow: a plan first
revalidates by comparing the per-relation ``write_epoch`` stamps it
recorded (the same stamps :meth:`~repro.db.Database.data_versions`
exposes) — one integer comparison per relation when nothing was
written.  Only when a stamp moved is the signature recomputed; if the
relation grew without changing size class the plan survives and the
stamps are refreshed, otherwise the next lookup recompiles.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from .query import ConjunctiveQuery, QueryShape
from .stats import EngineStats
from .storage import Relation

Assignment = Dict[Hashable, Hashable]

# Sentinel distinguishing "slot unbound" from "bound to None" with a
# single identity check on the innermost join loop.
_UNBOUND = object()

#: Signature of one relation as the planner sees it: size class plus
#: the distinct-value class of every column (``-1, ()`` when the
#: relation does not exist).  Classes are ``bit_length`` buckets, so
#: the signature only moves when a statistic roughly doubles.
RelationSignature = Tuple[int, Tuple[int, ...]]
Signature = Dict[str, RelationSignature]


class AtomStep:
    """The precomputed probe spec for one atom of a compiled plan.

    All members are positions and integer slots relative to the query
    shape; the concrete constant values are pulled from the actual
    query at execution time (plans are shared across constants).
    """

    __slots__ = ("atom_index", "relation", "const_positions", "bound", "new", "dup")

    def __init__(
        self,
        atom_index: int,
        relation: str,
        const_positions: Tuple[int, ...],
        bound: Tuple[Tuple[int, int], ...],
        new: Tuple[Tuple[int, int], ...],
        dup: Tuple[Tuple[int, int], ...],
    ) -> None:
        self.atom_index = atom_index
        self.relation = relation
        #: Positions holding constants in the query.
        self.const_positions = const_positions
        #: (position, slot) pairs whose slot is bound by earlier atoms.
        self.bound = bound
        #: (position, slot) pairs introducing a slot (first occurrence).
        self.new = new
        #: (position, slot) repeats of a slot first introduced by this
        #: atom — per-row equality checks against the fresh binding.
        self.dup = dup

    def __repr__(self) -> str:
        return (
            f"AtomStep({self.relation}@{self.atom_index}, "
            f"const={self.const_positions}, bound={self.bound}, "
            f"new={self.new}, dup={self.dup})"
        )


def _size_class(rows: int) -> int:
    """Quantize a row count: 0 empty, then one class per doubling."""
    return rows.bit_length()


def _signature_of(shape: QueryShape, relations: Dict[str, Relation]) -> Signature:
    """The quantized statistics the compiler is allowed to look at.

    Every column of every participating relation is included (any
    position can become a probe column under some join order), so the
    signature fully determines the compiled plan.
    """
    signature: Signature = {}
    for name, cols in shape:
        if name in signature:
            continue
        relation = relations.get(name)
        if relation is None:
            signature[name] = (-1, ())
            continue
        signature[name] = (
            _size_class(len(relation)),
            tuple(
                _size_class(relation.distinct_count(p)) for p in range(len(cols))
            ),
        )
    return signature


def compile_plan(shape: QueryShape, relations: Dict[str, Relation]) -> "CompiledPlan":
    """Compile a query shape into a plan, a pure function of the shape
    and the current statistics signature.

    Join order is greedy smallest-estimated-output-first in log space:
    an atom's cost is its relation's size class minus the distinct
    classes of its fixed positions (constants and already-bound slots)
    — the textbook independence estimate, quantized so equal data
    always yields equal plans.  Ties break toward more fixed positions,
    then smaller relations, then body order, which keeps the classic
    bound-first/connected-next behaviour where statistics cannot
    separate candidates.
    """
    signature = _signature_of(shape, relations)
    k = len(shape)
    order: List[int] = []
    remaining = list(range(k))
    bound_slots: set = set()
    while remaining:
        best_key: Optional[Tuple[int, int, int, int]] = None
        best = remaining[0]
        for i in remaining:
            name, cols = shape[i]
            size_class, distinct_classes = signature[name]
            fixed = 0
            if size_class < 0:
                est = 0
            else:
                est = size_class
                for p, col in enumerate(cols):
                    if col == -1 or col in bound_slots:
                        est -= distinct_classes[p]
                        fixed += 1
                if est < 0:
                    est = 0
            key = (est, -fixed, size_class, i)
            if best_key is None or key < best_key:
                best_key, best = key, i
        order.append(best)
        remaining.remove(best)
        for col in shape[best][1]:
            if col != -1:
                bound_slots.add(col)

    steps: List[AtomStep] = []
    has_empty_atom = False
    placed_slots: set = set()
    for i in order:
        name, cols = shape[i]
        if signature[name][0] <= 0:
            # Missing or empty relation: the conjunction has no
            # solutions while this holds (and the signature check
            # recompiles the moment it stops holding).
            has_empty_atom = True
        const_positions: List[int] = []
        bound: List[Tuple[int, int]] = []
        new: List[Tuple[int, int]] = []
        dup: List[Tuple[int, int]] = []
        fresh: set = set()
        for p, col in enumerate(cols):
            if col == -1:
                const_positions.append(p)
            elif col in placed_slots:
                bound.append((p, col))
            elif col in fresh:
                dup.append((p, col))
            else:
                fresh.add(col)
                new.append((p, col))
        placed_slots |= fresh
        steps.append(
            AtomStep(
                i, name, tuple(const_positions), tuple(bound), tuple(new), tuple(dup)
            )
        )

    epochs = {
        name: (relations[name].write_epoch if name in relations else -1)
        for name, _ in shape
    }
    return CompiledPlan(
        shape, tuple(steps), len(placed_slots), has_empty_atom, signature, epochs
    )


class CompiledPlan:
    """A reusable execution plan for every query of one shape."""

    __slots__ = ("shape", "steps", "nslots", "has_empty_atom", "signature", "_epochs")

    def __init__(
        self,
        shape: QueryShape,
        steps: Tuple[AtomStep, ...],
        nslots: int,
        has_empty_atom: bool,
        signature: Signature,
        epochs: Dict[str, int],
    ) -> None:
        self.shape = shape
        self.steps = steps
        self.nslots = nslots
        self.has_empty_atom = has_empty_atom
        self.signature = signature
        self._epochs = epochs

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------
    def still_valid(self, relations: Dict[str, Relation]) -> bool:
        """Whether this plan may serve another evaluation.

        Fast path: every participating relation's ``write_epoch`` stamp
        is exactly what compilation recorded — nothing was written, the
        plan holds.  Slow path (a stamp moved): recompute the quantized
        signature; if it is unchanged the data grew without crossing a
        size class, so the plan stays optimal-enough and only the
        stamps are refreshed.  A changed signature invalidates.
        """
        changed = False
        for name, epoch in self._epochs.items():
            relation = relations.get(name)
            current = relation.write_epoch if relation is not None else -1
            if current != epoch:
                changed = True
                break
        if not changed:
            return True
        if _signature_of(self.shape, relations) != self.signature:
            return False
        self._epochs = {
            name: (relations[name].write_epoch if name in relations else -1)
            for name in self._epochs
        }
        return True

    def join_order(self) -> Tuple[int, ...]:
        """Original-body atom indexes in execution order (introspection)."""
        return tuple(step.atom_index for step in self.steps)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        query: ConjunctiveQuery,
        initial: Optional[Dict],
        relations: Dict[str, Relation],
        stats: EngineStats,
    ) -> Iterator[Dict]:
        """Enumerate satisfying assignments of ``query`` under this plan.

        ``query`` must have this plan's shape; its constant values and
        variable identities are bound here, per execution, in O(body).
        ``initial`` pre-binds variables exactly as the evaluator's
        ``solutions(initial=...)`` contract specifies: pre-bound body
        variables become additional fixed probe columns, and unrelated
        pre-bound variables pass through into every yielded assignment.
        """
        base = dict(initial) if initial else {}
        slot_vars = query.slot_variables()
        values: List = [_UNBOUND] * self.nslots
        if base:
            for slot, variable in enumerate(slot_vars):
                value = base.get(variable, _UNBOUND)
                if value is not _UNBOUND:
                    values[slot] = value

        total = len(self.steps)
        if total == 0:
            stats.solutions_found += 1
            yield base
            return
        if self.has_empty_atom:
            return

        atoms = query.atoms
        bound_steps = []
        for step in self.steps:
            terms = atoms[step.atom_index].terms
            bound_steps.append(
                (
                    relations[step.relation],
                    tuple((p, terms[p].value) for p in step.const_positions),
                    step.bound,
                    step.new,
                    step.dup,
                )
            )

        def make_frame(depth: int) -> List:
            relation, consts, bound, new, dup = bound_steps[depth]
            fixed: Dict[int, Hashable] = dict(consts)
            for p, slot in bound:
                fixed[p] = values[slot]
            fresh: List[Tuple[int, int]] = []
            checks: List[Tuple[int, int]] = []
            for p, slot in new:
                value = values[slot]
                if value is _UNBOUND:
                    fresh.append((p, slot))
                else:
                    fixed[p] = value
            for p, slot in dup:
                value = values[slot]
                if value is _UNBOUND:
                    checks.append((p, slot))
                else:
                    fixed[p] = value
            # Frame: [row iterator, slots to bind, per-row checks, live]
            return [relation.match(fixed), fresh, checks, False]

        stack: List[List] = [make_frame(0)]
        while stack:
            depth = len(stack) - 1
            frame = stack[-1]
            rows, fresh, checks, _ = frame
            if frame[3]:
                # Undo the previous row's bindings before advancing.
                for _p, slot in fresh:
                    values[slot] = _UNBOUND
                frame[3] = False
            advanced = False
            for row in rows:
                stats.tuples_examined += 1
                for p, slot in fresh:
                    values[slot] = row[p]
                ok = True
                for p, slot in checks:
                    if values[slot] != row[p]:
                        ok = False
                        break
                if not ok:
                    for _p, slot in fresh:
                        values[slot] = _UNBOUND
                    continue
                frame[3] = True
                if depth + 1 == total:
                    stats.solutions_found += 1
                    out = dict(base)
                    for slot, variable in enumerate(slot_vars):
                        out[variable] = values[slot]
                    yield out
                    # Stay on this frame; the next loop iteration
                    # undoes the bindings and tries the following row.
                    advanced = True
                    break
                stack.append(make_frame(depth + 1))
                advanced = True
                break
            if not advanced:
                stack.pop()

    def __repr__(self) -> str:
        inner = " -> ".join(step.relation for step in self.steps)
        return f"CompiledPlan({inner or '⊤'})"


class Planner:
    """The per-database plan cache.

    One instance per :class:`~repro.db.evaluator.Evaluator` (and hence
    per :class:`~repro.db.Database`, replicas included).  Safe under
    the database's concurrent-reader discipline: a cache fill publishes
    a complete plan with one atomic store, and two readers racing on
    the same shape install identical plans because compilation is a
    pure function of data both observe under the read lock.
    """

    __slots__ = ("_relations", "_stats", "_plans", "cache_enabled")

    def __init__(self, relations: Dict[str, Relation], stats: EngineStats) -> None:
        self._relations = relations
        self._stats = stats
        self._plans: Dict[QueryShape, CompiledPlan] = {}
        #: Ablation toggle (see :meth:`set_cache_enabled`): when
        #: ``False`` every evaluation recompiles its plan from scratch.
        #: Compilation is a pure function of the shape and the current
        #: statistics, so results are identical — only cost changes.
        self.cache_enabled = True

    def plan_for(self, query: ConjunctiveQuery) -> CompiledPlan:
        """The (cached or freshly compiled) plan for ``query``."""
        shape = query.shape()
        if not self.cache_enabled:
            self._stats.plan_cache_misses += 1
            return compile_plan(shape, self._relations)
        plan = self._plans.get(shape)
        if plan is not None and plan.still_valid(self._relations):
            self._stats.plan_cache_hits += 1
            return plan
        self._stats.plan_cache_misses += 1
        plan = compile_plan(shape, self._relations)
        self._plans[shape] = plan
        return plan

    def set_cache_enabled(self, enabled: bool) -> None:
        """Enable/disable the plan cache (the ablation toggle).

        Disabling also drops any cached plans, so a later re-enable
        starts cold.  Safe to flip before serving; the caller owns
        synchronization if the database is already shared.
        """
        self.cache_enabled = enabled
        if not enabled:
            self._plans.clear()

    def cached_plans(self) -> int:
        """Number of cached plans (introspection/tests)."""
        return len(self._plans)
