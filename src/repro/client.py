"""Shared framed-socket client plumbing for every network endpoint.

Two things in this library speak length-prefixed :mod:`repro.db.wire`
frames over TCP: the gateway protocol
(:class:`~repro.core.gateway.GatewayClient` against a
:class:`~repro.core.gateway.Gateway`) and the remote shard fabric
(:class:`~repro.core.remote.RemoteShardTransport` against a
:class:`~repro.core.remote.ShardHost`).  Both use the same stream
framing — a 4-byte big-endian length prefix followed by one wire frame
(magic + version + CRC-32 + compact JSON) — and the same
connect/retry/close lifecycle.  This module holds that one surface:

* :func:`pack_frame` / :func:`checked_length` — the framing primitives
  (bounded by :data:`MAX_FRAME`: a longer prefix is a corrupt or
  hostile stream, not a big request);
* :class:`FramedEndpoint` — one blocking socket with
  ``send_message``/``recv_message``, bounded connect retries, and a
  best-effort ``close``.

Error surfacing is caller-configurable (the ``error`` parameter):
the gateway client raises its protocol-level
:class:`~repro.core.gateway.GatewayError`, while the shard transport
asks for :class:`EOFError` so a vanished peer funnels into the shard
proxy's ordinary death handling (``except (EOFError, OSError)``).
"""

from __future__ import annotations

import socket
import struct
import time
from typing import Optional, Type

from .db import wire
from .errors import PreconditionError, ReproError

#: Hard bound on one frame's payload; a length prefix past this is a
#: corrupt or hostile stream, not a big request.
MAX_FRAME = 32 * 1024 * 1024

_LEN = struct.Struct(">I")


class ClientError(ReproError):
    """A framed-endpoint request failed (transport or framing)."""


def pack_frame(payload: dict) -> bytes:
    """Length-prefix one wire-encoded frame for the stream transport."""
    body = wire.dumps(payload)
    if len(body) > MAX_FRAME:
        raise PreconditionError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _LEN.pack(len(body)) + body


def checked_length(
    prefix: bytes, error: Type[BaseException] = ClientError
) -> int:
    """Decode and bound-check a 4-byte length prefix."""
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME:
        raise error(f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME})")
    return length


class FramedEndpoint:
    """One blocking framed-socket connection (client side).

    Connects eagerly, with ``retries`` additional attempts spaced
    ``retry_delay`` seconds apart — a remote peer that is still binding
    its listener (a just-spawned shard host) costs a short wait, not a
    failure.  Not thread-safe: callers serialize access (the gateway
    client is documented one-per-thread; the shard proxy holds a lane
    mutex around every round trip).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        retries: int = 0,
        retry_delay: float = 0.2,
        error: Type[BaseException] = ClientError,
    ) -> None:
        self.host = host
        self.port = port
        self._error = error
        last: Optional[OSError] = None
        for attempt in range(retries + 1):
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
                break
            except OSError as err:
                last = err
                if attempt < retries:
                    time.sleep(retry_delay)
        else:
            assert last is not None
            raise last
        self._sock.settimeout(timeout)

    # -- transport -------------------------------------------------------
    def set_timeout(self, timeout: Optional[float]) -> None:
        """Adjust the per-read/write socket timeout."""
        self._sock.settimeout(timeout)

    def recv_exact(self, n: int) -> bytes:
        chunks = []
        while n:
            chunk = self._sock.recv(n)
            if not chunk:
                raise self._error("peer closed the connection")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def send_frame(self, frame: bytes) -> None:
        """Length-prefix and send one already-encoded wire frame."""
        if len(frame) > MAX_FRAME:
            raise PreconditionError(
                f"frame of {len(frame)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
            )
        self._sock.sendall(_LEN.pack(len(frame)) + frame)

    def recv_frame(self) -> bytes:
        """Receive one length-prefixed frame's raw bytes."""
        length = checked_length(self.recv_exact(4), self._error)
        return self.recv_exact(length)

    def send_message(self, message: dict) -> None:
        """Frame and send one message."""
        self._sock.sendall(pack_frame(message))

    def recv_message(self) -> dict:
        """Receive and decode one framed message."""
        return wire.loads(self.recv_frame())

    def close(self) -> None:
        """Close the socket (best-effort, idempotent)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "FramedEndpoint":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
