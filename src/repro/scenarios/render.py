"""Serialise a scenario to the CLI's on-disk formats.

A scenario on disk is two files: the database as the JSON spec of
:mod:`repro.db.io`, and the event stream in the ``online`` subcommand's
line format (one operation per line).  :func:`render_event` is the
inverse of the CLI's stream parser for every event the catalog emits,
so ``scenario NAME --out PREFIX`` followed by
``online PREFIX.db.json PREFIX.ops`` replays exactly the stream the
in-process runner would drive.

Queries round-trip through their ``str()`` form — the parser's own
textual syntax (string constants quoted, integers bare, variables
lowercase) — prefixed with ``name:`` so replay keeps the original
query names.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Tuple

from ..core import EntangledQuery
from ..db import Database, save_database


def render_query(query: EntangledQuery) -> str:
    """``name: {posts} heads :- body`` — the parser's input syntax."""
    return f"{query.name}: {query}"


def _render_value(value) -> str:
    """One insert/delete operand, as the stream parser reads it back.

    The parser tokenizes with :func:`shlex.split` then tries
    :func:`ast.literal_eval`, falling back to the raw string.  Plain
    identifier-like strings therefore render bare; everything else
    (integers, strings with spaces or literal-looking content) renders
    as a shell-quoted Python literal so the fallback never misfires.
    """
    if isinstance(value, str) and value.isidentifier():
        return value
    literal = repr(value)
    try:
        if ast.literal_eval(literal) == value:
            return f'"{literal}"' if "'" in literal else literal
    except (ValueError, SyntaxError):  # pragma: no cover - repr is a literal
        pass
    raise ValueError(f"cannot render stream value {value!r}")


def render_event(event: tuple) -> str:
    """One catalog event as one ``online`` stream line."""
    kind = event[0]
    if kind == "submit":
        return f"submit {render_query(event[1])}"
    if kind == "submit_many":
        return "batch " + "; ".join(render_query(q) for q in event[1])
    if kind == "retract":
        return f"retract {event[1]}"
    if kind in ("insert", "delete"):
        values = " ".join(_render_value(v) for v in event[2])
        return f"{kind} {event[1]} {values}"
    if kind == "flush_drain":
        return "flush_drain"
    if kind == "flush":
        return "flush"
    raise ValueError(f"cannot render scenario event {event!r}")


def render_stream(events: Iterable[tuple]) -> str:
    """The whole stream, one line per event, trailing newline."""
    return "".join(render_event(event) + "\n" for event in events)


def write_scenario(
    db: Database, events: Iterable[tuple], prefix: str
) -> Tuple[Path, Path]:
    """Write ``PREFIX.db.json`` + ``PREFIX.ops``; return both paths."""
    db_path = Path(f"{prefix}.db.json")
    ops_path = Path(f"{prefix}.ops")
    save_database(db, db_path)
    ops_path.write_text(render_stream(events), encoding="utf-8")
    return db_path, ops_path


__all__: List[str] = [
    "render_event",
    "render_query",
    "render_stream",
    "write_scenario",
]
