"""Scenario suite: named workload streams and the machinery to run them.

The catalog (:mod:`.catalog`) names four workload generators with
qualitatively different coordination-graph shapes; the runner
(:mod:`.runner`) interprets their shared event vocabulary against a
:class:`~repro.core.ShardedCoordinationService`; the renderer
(:mod:`.render`) writes a scenario to the CLI's on-disk formats for
``python -m repro online`` replay.  DESIGN.md §14 documents the
catalog and the ablation methodology built on it.
"""

from .catalog import (
    SCENARIOS,
    Scenario,
    get_scenario,
    partner_events,
    scenario_names,
)
from .render import render_event, render_query, render_stream, write_scenario
from .runner import ScenarioRun, drive

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioRun",
    "drive",
    "get_scenario",
    "partner_events",
    "render_event",
    "render_query",
    "render_stream",
    "scenario_names",
    "write_scenario",
]
