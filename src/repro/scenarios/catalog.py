"""The scenario catalog: named, seeded, scale-parameterised workloads.

A :class:`Scenario` bundles a workload generator behind one uniform
signature — ``build(scale, seed) -> (database, events)`` — so the
ablation harness, the CLI's ``scenario`` subcommand, and the
equivalence tests can iterate "every scenario" without knowing each
generator's own parameter vocabulary.  Events use the service-journal
vocabulary shared with :func:`tests.core.service_testing
.replay_into_oracle` and the ``online`` stream format::

    ("submit", query)
    ("submit_many", (query, ...))
    ("retract", name)
    ("insert", relation, row)
    ("delete", relation, row)
    ("flush_drain",)

Streams end with ``("flush_drain",)`` — its fixpoint is
placement-independent, which is what makes scenario outcomes
byte-comparable across shard counts, backends and executors (a plain
``flush`` retires one set *per shard* and is deliberately absent).

The catalog entries and what each one stresses:

``partner``
    The paper's Section 6.1 scale-free partner workload plus retraction
    noise — the baseline shape every optimisation was tuned on.
``keyword``
    Entity-entangled search (:mod:`repro.workloads.keyword`): hub
    entities make two-column probes expensive without composite
    indexes; star components around popular owners.
``marketplace``
    Two-sided matching under churn (:mod:`repro.workloads.marketplace`):
    heavy ``retract``/``delete`` traffic drives tombstone sync on every
    replicated backend.
``adversarial``
    The merge-maximizer tournament (:mod:`repro.workloads.adversarial`):
    every arrival merges two live components, maximising cross-shard
    migrations; nothing resolves until the retraction wave.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..db import Database
from ..workloads import (
    keyword_events,
    marketplace_events,
    members_database,
    merge_tournament_events,
    scale_free_workload,
)

#: ``build(scale, seed)`` — every generator behind one signature.
Builder = Callable[[int, int], Tuple[Database, List[tuple]]]


@dataclass(frozen=True)
class Scenario:
    """One catalog entry.

    ``scale`` is the generator's own size knob (queries, requests,
    leaves — whatever the workload counts in); ``default_scale`` is a
    size that finishes in well under a second on one core, the right
    order of magnitude for tests and ``--smoke`` benchmarks.
    ``stresses`` is the one-line answer to "why is this workload in
    the matrix" (surfaced by ``python -m repro scenario --list`` and
    the README's workload table).
    """

    name: str
    title: str
    stresses: str
    build: Builder
    default_scale: int


def partner_events(
    size: int, seed: int = 2012, flush_every: int = 32
) -> Tuple[Database, List[tuple]]:
    """The Section 6.1 scale-free partner workload as an event stream.

    Queries arrive in shuffled order with ~15% retraction noise (a
    random earlier arrival is withdrawn — possibly already resolved or
    already retracted, in which case the service rejects the event,
    deterministically).  ``flush_drain`` runs every ``flush_every``
    arrivals and once at the end.
    """
    rng = random.Random(seed)
    queries = scale_free_workload(size, seed=seed)
    db = members_database(size=max(size, 64), seed=seed)
    order = list(queries)
    rng.shuffle(order)
    events: List[tuple] = []
    submitted: List[str] = []
    for step, query in enumerate(order):
        events.append(("submit", query))
        submitted.append(query.name)
        if rng.random() < 0.15:
            events.append(("retract", rng.choice(submitted)))
        if (step + 1) % flush_every == 0:
            events.append(("flush_drain",))
    events.append(("flush_drain",))
    return db, events


SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="partner",
        title="Scale-free partner coordination (Section 6.1)",
        stresses="the baseline SCC path: graph build, combined queries",
        build=lambda scale, seed: partner_events(scale, seed=seed),
        default_scale=96,
    ),
    Scenario(
        name="keyword",
        title="Keyword search entangled through shared entities",
        stresses="composite indexes and plan reuse on hub-entity probes",
        # The corpus grows with the searcher count so hub-entity
        # buckets grow too: that is what makes the ablated (composite
        # indexes off) probe measurably quadratic instead of merely
        # slower (the matrix's >2× feature-value proof).
        build=lambda scale, seed: keyword_events(
            scale,
            entities=max(32, scale // 2),
            docs=20 * scale,
            seed=seed,
        ),
        default_scale=64,
    ),
    Scenario(
        name="marketplace",
        title="Ride matching under churn",
        stresses="retract/delete lifecycle and replica tombstone sync",
        build=lambda scale, seed: marketplace_events(scale, seed=seed),
        default_scale=160,
    ),
    Scenario(
        name="adversarial",
        title="Merge-maximizer tournament",
        stresses="cross-shard component merges, migrations, rebalancing",
        build=lambda scale, seed: merge_tournament_events(scale, seed=seed),
        default_scale=48,
    ),
)


def scenario_names() -> Tuple[str, ...]:
    """The catalog's scenario names, in catalog order."""
    return tuple(s.name for s in SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name (:class:`KeyError` if unknown)."""
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise KeyError(
        f"unknown scenario {name!r} (have: {', '.join(scenario_names())})"
    )
