"""Drive a scenario event stream through a coordination service.

:func:`drive` is the one interpreter for the catalog's event
vocabulary: the CLI's ``scenario`` subcommand, the ablation harness,
and the scenario equivalence tests all run streams through it, so
"what does this event do" has a single answer.  Rejections
(:class:`~repro.errors.PreconditionError` on submit or retract —
duplicate names, unknown retractions, retraction noise hitting an
already-resolved query) are part of a stream's normal, deterministic
output and are counted rather than raised.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core import QueryState, ShardedCoordinationService
from ..errors import PreconditionError


@dataclass(frozen=True)
class ScenarioRun:
    """What happened when a stream ran: the comparable observables.

    Everything here except ``seconds`` (and ``migrations``, which
    depends on placement) must be identical across shard counts,
    backends and executors — that is the equivalence contract the
    scenario tests assert.
    """

    operations: int  #: events interpreted
    resolved: int  #: handles that reached SATISFIED
    retired_sets: int  #: coordinating sets retired by flush_drain
    rejected: int  #: submit/retract events the service refused
    pending: int  #: queries still pending after the final event
    migrations: int  #: cross-shard component moves (placement detail)
    seconds: float  #: wall-clock for the whole stream


def drive(
    service: ShardedCoordinationService, events
) -> ScenarioRun:
    """Interpret ``events`` against ``service``; return the outcome.

    The stream is replayed in order; worker-backed services are drained
    before the final pending count so the run's observables are settled
    regardless of executor.
    """
    resolved = 0

    def _count(handle) -> None:
        nonlocal resolved
        if handle.state is QueryState.SATISFIED:
            resolved += 1

    service.on_resolved(_count)
    operations = rejected = retired = 0
    started = time.perf_counter()
    for event in events:
        operations += 1
        kind = event[0]
        try:
            if kind == "submit":
                service.submit(event[1])
            elif kind == "submit_many":
                for handle in service.submit_many(list(event[1])):
                    if handle.state is QueryState.REJECTED:
                        rejected += 1
            elif kind == "retract":
                service.retract(event[1])
            elif kind == "insert":
                service.insert(event[1], event[2])
            elif kind == "delete":
                service.delete(event[1], event[2])
            elif kind == "flush_drain":
                retired += sum(
                    1
                    for result in service.flush_drain()
                    if result is not None and result.chosen is not None
                )
            elif kind == "flush":
                raise AssertionError(
                    "scenario streams must use flush_drain, whose "
                    "fixpoint is placement-independent; plain flush "
                    "retires one set per shard"
                )
            else:
                raise AssertionError(f"unknown scenario event {event!r}")
        except PreconditionError:
            rejected += 1
    service.drain()
    return ScenarioRun(
        operations=operations,
        resolved=resolved,
        retired_sets=retired,
        rejected=rejected,
        pending=len(service.pending()),
        migrations=service.migrations,
        seconds=time.perf_counter() - started,
    )
