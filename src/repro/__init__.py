"""repro — a reproduction of "The Complexity of Social Coordination".

Mamouras, Oren, Seeman, Kot, Gehrke.  PVLDB 5(11), 2012.

The library implements entangled queries end-to-end: the formalism and
its semantics, the SCC Coordination Algorithm (safe sets), the
Consistent Coordination Algorithm (A-consistent sets), the Gupta et al.
baseline, the three NP-hardness reductions, and every substrate the
paper's system relies on (an in-memory relational engine, unification,
graph algorithms, social-network generators).

Quickstart::

    from repro import parse_query, scc_coordinate
    from repro.db import DatabaseBuilder

    db = (DatabaseBuilder()
          .table("Flights", ["flightId", "destination"], key="flightId")
          .rows("Flights", [(101, "Zurich")])
          .build())
    q1 = parse_query("q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich')")
    q2 = parse_query("q2: {} R(Chris, y) :- Flights(y, 'Zurich')")
    result = scc_coordinate(db, [q1, q2])
    assert result.found and result.chosen.value_of("q1", "x") == 101
"""

from . import client, core, db, graphs, hardness, logic, networks, workloads
from .core import (
    ConsistentCoordinator,
    ConsistentQuery,
    ConsistentSetup,
    CoordinatingSet,
    CoordinationEngine,
    CoordinationResult,
    EntangledQuery,
    FriendSlot,
    Gateway,
    GatewayClient,
    NamedPartner,
    QueryHandle,
    QueryState,
    RemoteShardTransport,
    ServiceConfig,
    ShardHost,
    ShardedCoordinationService,
    consistent_coordinate,
    find_coordinating_set,
    find_maximum_coordinating_set,
    gupta_coordinate,
    is_safe,
    is_unique,
    parse_queries,
    parse_query,
    scc_coordinate,
    single_connected_coordinate,
    verify_coordinating_set,
)
from .db import Database, DatabaseBuilder
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ConsistentCoordinator",
    "ConsistentQuery",
    "ConsistentSetup",
    "CoordinatingSet",
    "CoordinationEngine",
    "CoordinationResult",
    "Database",
    "DatabaseBuilder",
    "EntangledQuery",
    "FriendSlot",
    "Gateway",
    "GatewayClient",
    "NamedPartner",
    "QueryHandle",
    "QueryState",
    "RemoteShardTransport",
    "ReproError",
    "ServiceConfig",
    "ShardHost",
    "ShardedCoordinationService",
    "__version__",
    "client",
    "consistent_coordinate",
    "core",
    "db",
    "find_coordinating_set",
    "find_maximum_coordinating_set",
    "graphs",
    "gupta_coordinate",
    "hardness",
    "is_safe",
    "is_unique",
    "logic",
    "networks",
    "parse_queries",
    "parse_query",
    "scc_coordinate",
    "single_connected_coordinate",
    "verify_coordinating_set",
]
