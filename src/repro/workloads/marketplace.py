"""Marketplace/ride-matching: high-churn coordination under retraction.

A two-sided market: riders request trips, drivers stand ready, and a
match is a two-query coordinating set — the rider posts to the driver,
the driver posts back to the rider, and unification forces both onto
the *same zone value*, so the combined query joins ``Riders`` and
``Drivers`` on zone.

Database schema::

    Riders(rider, zone)
    Drivers(driver, zone)

Query shapes.  Rider ``r`` dispatched to driver ``d`` submits::

    {R(z, d)}  R(z, r)  :-  Riders(r, z)

and driver ``d`` accepts with the mirror image::

    {R(z, r)}  R(z, d)  :-  Drivers(d, z)

(reusing the zone variable in the postcondition is what chains the
unification — the shared-venue trick of :mod:`.partner`).

What makes this workload different is the *churn*: a large fraction of
requests are cancelled (``retract`` — the lifecycle path least
exercised at scale), rider rows are deleted after trips, and drivers
re-zone or go offline (``delete`` + ``insert`` on ``Drivers``).  Every
deletion writes a tombstone into the relation's mutation log, so
replica sync — the in-memory replicated backend, the process
executor's wire sync, and the TCP fabric's — runs its tombstone-tail
and compaction-fallback paths continuously instead of only in targeted
tests.  Dangling requests post to an ``offline…`` driver that never
arrives, so a stable population of never-resolvable queries keeps the
pending set (and the flush sweeps) honest.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..core import EntangledQuery
from ..db import Database, DatabaseBuilder
from ..logic import Atom, Variable

ANSWER_RELATION = "R"

ZONES = ("north", "south", "east", "west", "center", "airport")


def rider_name(index: int) -> str:
    """Canonical synthetic rider name for ``index``."""
    return f"rider{index:05d}"


def driver_name(index: int) -> str:
    """Canonical synthetic driver name for ``index``."""
    return f"driver{index:05d}"


def offline_name(index: int) -> str:
    """Name of a driver who never comes online (dangling requests)."""
    return f"offline{index:05d}"


def marketplace_database() -> Database:
    """The (initially empty) rider/driver tables.

    Rows arrive through the event stream — population churn is the
    point of this workload, not a static corpus.
    """
    builder = DatabaseBuilder()
    builder.table("Riders", ["rider", "zone"])
    builder.table("Drivers", ["driver", "zone"])
    return builder.build()


def rider_query(rider: str, driver: str) -> EntangledQuery:
    """Rider ``rider``'s trip request, dispatched to ``driver``."""
    zone = Variable("z")
    body = [Atom("Riders", [rider, zone])]
    posts = [Atom(ANSWER_RELATION, [zone, driver])]
    head = [Atom(ANSWER_RELATION, [zone, rider])]
    return EntangledQuery(rider, posts, head, body)


def driver_query(driver: str, rider: str) -> EntangledQuery:
    """Driver ``driver``'s acceptance of ``rider``'s request."""
    zone = Variable("z")
    body = [Atom("Drivers", [driver, zone])]
    posts = [Atom(ANSWER_RELATION, [zone, rider])]
    head = [Atom(ANSWER_RELATION, [zone, driver])]
    return EntangledQuery(driver, posts, head, body)


def marketplace_events(
    requests: int,
    seed: int = 2012,
    flush_every: int = 48,
) -> Tuple[Database, List[tuple]]:
    """Database plus a deterministic journal-style event stream.

    Per request (mix drawn from a seeded RNG): ~45% matched trips
    (rider then driver, resolving as a pair), ~20% dangling requests to
    offline drivers, ~20% cancellations of dangling requests
    (``retract``), ~15% driver churn (row delete, usually followed by a
    re-zone insert).  Trip completion deletes rider rows, so both
    tables accumulate tombstones.  Ends by retracting every still-
    dangling request and draining.  Events use the service-journal
    vocabulary: ``("submit", query)``, ``("retract", name)``,
    ``("insert"|"delete", relation, row)``, ``("flush_drain",)``.
    """
    rng = random.Random(seed)
    db = marketplace_database()
    events: List[tuple] = []
    riders = drivers = ghosts = 0
    waiting: List[Tuple[str, str]] = []  # dangling (rider, zone)
    fleet: List[Tuple[str, str]] = []  # online (driver, zone) rows
    for step in range(requests):
        roll = rng.random()
        if roll < 0.45:
            rider = rider_name(riders)
            riders += 1
            driver = driver_name(drivers)
            drivers += 1
            zone = rng.choice(ZONES)
            events.append(("insert", "Riders", (rider, zone)))
            events.append(("insert", "Drivers", (driver, zone)))
            events.append(("submit", rider_query(rider, driver)))
            events.append(("submit", driver_query(driver, rider)))
            fleet.append((driver, zone))
            if rng.random() < 0.5:
                # Trip done: the rider leaves the system (tombstone).
                events.append(("delete", "Riders", (rider, zone)))
        elif roll < 0.65:
            rider = rider_name(riders)
            riders += 1
            ghost = offline_name(ghosts)
            ghosts += 1
            zone = rng.choice(ZONES)
            events.append(("insert", "Riders", (rider, zone)))
            events.append(("submit", rider_query(rider, ghost)))
            waiting.append((rider, zone))
        elif roll < 0.85 and waiting:
            index = rng.randrange(len(waiting))
            rider, zone = waiting.pop(index)
            events.append(("retract", rider))
            events.append(("delete", "Riders", (rider, zone)))
        elif fleet:
            index = rng.randrange(len(fleet))
            driver, zone = fleet.pop(index)
            events.append(("delete", "Drivers", (driver, zone)))
            if rng.random() < 0.7:
                new_zone = rng.choice(ZONES)
                events.append(("insert", "Drivers", (driver, new_zone)))
                fleet.append((driver, new_zone))
        if (step + 1) % flush_every == 0:
            events.append(("flush_drain",))
    for rider, zone in waiting:
        events.append(("retract", rider))
        events.append(("delete", "Riders", (rider, zone)))
    events.append(("flush_drain",))
    return db, events
