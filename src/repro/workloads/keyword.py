"""Keyword-search coordination: queries entangled through shared entities.

Fakas et al.'s object summaries for relational keyword search
(PAPERS.md) motivate the shape: a *searcher* asks for a document
covering two keywords (entities), and coordinates with the *owners* of
those entities — the curators whose approval the search result needs.
Entity popularity follows the scale-free generators of
:mod:`repro.networks`, so a handful of hub entities appear in a large
share of documents and are searched disproportionately often.

Database schema::

    Mentions(entity, doc)     # entity FIRST: the high-fanout column
    Owners(entity, owner)

Query shapes.  Searcher ``s`` looking for entities ``e1, e2`` (owned by
``o1, o2``) submits::

    {R(y0, o1), R(y1, o2)}  R(d, s)  :-  Mentions(e1, d), Mentions(e2, d)

and owner ``o`` stands ready with the postcondition-free::

    {}  R(e, o)  :-  Owners(e, o)

The searcher's second body atom arrives with *both* columns bound
(entity by constant, ``d`` by the first atom), i.e. it is a two-column
composite-index probe.  With composite indexes ablated away the probe
degrades to the entity column's single-column bucket — which for a hub
entity holds a large slice of all documents — plus a residual scan, so
this workload is the one that prices composite indexes.  Many searchers
posting to the same popular owners form star-shaped coordination
components around the hubs, qualitatively unlike the partner workloads'
list and scale-free partner graphs.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..core import EntangledQuery
from ..db import Database, DatabaseBuilder
from ..logic import Atom, Variable
from ..networks import scale_free_digraph

ANSWER_RELATION = "R"


def entity_name(index: int) -> str:
    """Canonical synthetic entity name for ``index``."""
    return f"entity{index:04d}"


def owner_name(index: int) -> str:
    """Canonical synthetic owner (curator) name for ``index``."""
    return f"owner{index:03d}"


def searcher_name(index: int) -> str:
    """Canonical synthetic searcher name for ``index``."""
    return f"seeker{index:05d}"


def doc_name(index: int) -> str:
    """Canonical synthetic document name for ``index``."""
    return f"doc{index:05d}"


def keyword_database(
    entities: int = 40,
    docs: int = 400,
    owners: int = 12,
    mentions_per_doc: int = 3,
    seed: int = 2012,
) -> Database:
    """The corpus the searchers run against.

    Entity popularity is drawn from a scale-free graph's in-degrees
    (preferential attachment), so mention counts are heavy-tailed: hub
    entities land in many documents.  ``entity`` is deliberately the
    *first* ``Mentions`` column — the single-column fallback of an
    ablated composite probe lands on its (large, for hubs) bucket.
    """
    rng = random.Random(seed)
    graph = scale_free_digraph(entities, out_degree=2, seed=seed)
    # Popularity multiset: entity i appears in_degree(i) + 1 times, the
    # same smoothing preferential attachment itself uses.
    attachment: List[int] = []
    for node in sorted(graph.nodes()):
        attachment.extend([node] * (graph.in_degree(node) + 1))
    builder = DatabaseBuilder()
    builder.table("Mentions", ["entity", "doc"])
    builder.table("Owners", ["entity", "owner"], key="entity")
    mention_rows: List[Tuple[str, str]] = []
    for index in range(docs):
        mentioned = set()
        guard = 0
        while len(mentioned) < mentions_per_doc and guard < 50 * mentions_per_doc:
            mentioned.add(rng.choice(attachment))
            guard += 1
        for entity in sorted(mentioned):
            mention_rows.append((entity_name(entity), doc_name(index)))
    builder.rows("Mentions", mention_rows)
    builder.rows(
        "Owners",
        [(entity_name(i), owner_name(i % owners)) for i in range(entities)],
    )
    return builder.build()


def search_query(
    searcher: str,
    entities: Sequence[str],
    owners: Sequence[str],
) -> EntangledQuery:
    """One searcher's query (shape documented in the module docstring).

    ``owners`` lists the owners the searcher must coordinate with
    (deduplicated by the caller — two entities may share an owner).
    """
    doc = Variable("d")
    body = [Atom("Mentions", [entity, doc]) for entity in entities]
    posts = [
        Atom(ANSWER_RELATION, [Variable(f"y{i}"), owner])
        for i, owner in enumerate(owners)
    ]
    head = [Atom(ANSWER_RELATION, [doc, searcher])]
    return EntangledQuery(searcher, posts, head, body)


def owner_query(owner: str) -> EntangledQuery:
    """One owner's standing query: coordinate on any owned entity."""
    entity = Variable("e")
    body = [Atom("Owners", [entity, owner])]
    head = [Atom(ANSWER_RELATION, [entity, owner])]
    return EntangledQuery(owner, (), head, body)


def keyword_events(
    searchers: int,
    entities: int = 40,
    docs: int = 400,
    owners: int = 12,
    round_every: int = 8,
    seed: int = 2012,
) -> Tuple[Database, List[tuple]]:
    """Database plus a deterministic journal-style event stream.

    Each searcher picks a random document and searches for two of its
    entities (so every search body is satisfiable, and hub entities —
    present in many documents — are picked often).  Searchers arrive
    *before* their owners, accumulating as pending stars; every
    ``round_every`` searchers the owners they need arrive as one
    ``submit_many`` sweep.  The batch matters: an owner's standing
    query has no postconditions, so submitted alone it retires
    instantly — arriving *together*, the owners join every waiting
    star's evaluation.  A head satisfies exactly one postcondition in
    a coordinating set, so each sweep retires one searcher per arriving
    owner (ties broken by the largest-candidate criterion); the rest of
    a star stays pending until a later sweep re-submits its owners.
    Owner names recur across sweeps; that is legal because an owner
    query always retires in its own sweep, freeing the name.  The
    steady backlog of partially drained stars is intended — it keeps
    every flush sweep and rebalance pass working against live state.

    Events are ``("submit", query)``, ``("submit_many", (query, ...))``
    and a final ``("flush_drain",)`` — the service-journal vocabulary
    the scenario runner and the oracle replayer share.
    """
    db = keyword_database(
        entities=entities, docs=docs, owners=owners, seed=seed
    )
    rng = random.Random(seed + 1)
    mentions: Dict[str, List[str]] = {}
    for entity, doc in db.rows("Mentions"):
        mentions.setdefault(doc, []).append(entity)
    eligible = sorted(doc for doc, names in mentions.items() if len(names) >= 2)
    events: List[tuple] = []
    owner_of = dict(db.rows("Owners"))
    due: List[str] = []  # owners needed since the last sweep, in need order
    seen = set()
    for index in range(searchers):
        doc = rng.choice(eligible)
        pair = rng.sample(sorted(mentions[doc]), 2)
        needed = sorted({owner_of[entity] for entity in pair})
        for owner in needed:
            if owner not in seen:
                seen.add(owner)
                due.append(owner)
        events.append(("submit", search_query(searcher_name(index), pair, needed)))
        if (index + 1) % round_every == 0:
            events.append(("submit_many", tuple(owner_query(o) for o in due)))
            due = []
            seen = set()
    if due:
        events.append(("submit_many", tuple(owner_query(o) for o in due)))
    events.append(("flush_drain",))
    return db, events


def keyword_workload(
    searchers: int,
    entities: int = 40,
    docs: int = 400,
    owners: int = 12,
    round_every: int = 8,
    seed: int = 2012,
) -> Tuple[Database, List[EntangledQuery]]:
    """The :func:`keyword_events` stream flattened to a query list.

    For batch consumers (``scc_coordinate``, simple tests) that want
    the arrival order without the event framing.
    """
    db, events = keyword_events(
        searchers,
        entities=entities,
        docs=docs,
        owners=owners,
        round_every=round_every,
        seed=seed,
    )
    queries: List[EntangledQuery] = []
    for event in events:
        if event[0] == "submit":
            queries.append(event[1])
        elif event[0] == "submit_many":
            queries.extend(event[1])
    return db, queries
