"""Partner-coordination workloads for the SCC algorithm experiments.

Section 6.1 evaluates the SCC Coordination Algorithm on workloads where
"users post queries looking for other specific users to coordinate
with" over a Slashdot-sized member table, with two partner structures:

* a **list**: query ``i`` wants to coordinate with query ``i+1``; the
  last wants nobody (Figure 4's worst case — one coordinating set per
  suffix, the maximum number of database queries);
* a **scale-free network**: each query's partners are its successors in
  a directed scale-free graph (Figures 5 and 6).

Query shape.  User ``u`` with partners ``p_1 ... p_k`` submits::

    {R(y_1, p_1), ..., R(y_k, p_k)}  R(x, u)  :-  Members(u, r, i, x)

The body selects the user's own member row (one indexed lookup, always
satisfiable — the paper's "most demanding scenario", since nothing is
pruned early); ``x`` is bound to the user's ``karma`` attribute so the
combined queries carry real variables through unification.  Every
postcondition names its partner by constant, so the set is *safe*, and
list/scale-free structures are *not unique* — precisely the regime the
SCC algorithm newly supports.

A ``shared-venue`` variant is also provided in which all connected users
must agree on one venue value, exercising long unification chains.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core import EntangledQuery
from ..db import Database, DatabaseBuilder
from ..graphs import DiGraph
from ..logic import Atom, Variable
from ..networks import (
    list_digraph,
    member_name,
    scale_free_digraph,
    slashdot_like_members,
)

ANSWER_RELATION = "R"


def members_database(size: int, seed: int = 2012) -> Database:
    """The member table the queries run against (Slashdot-sized by
    default in the benchmarks; smaller in tests)."""
    return slashdot_like_members(size=size, seed=seed)


def partner_query(
    user: str,
    partners: Sequence[str],
    member_relation: str = "Members",
) -> EntangledQuery:
    """One user's partner-coordination query (shape documented above)."""
    own_value = Variable("x")
    body = [
        Atom(
            member_relation,
            [user, Variable("region"), Variable("interest"), own_value],
        )
    ]
    posts = [
        Atom(ANSWER_RELATION, [Variable(f"y{i}"), partner])
        for i, partner in enumerate(partners)
    ]
    head = [Atom(ANSWER_RELATION, [own_value, user])]
    return EntangledQuery(user, posts, head, body)


def queries_from_structure(
    structure: DiGraph,
    users: Optional[Sequence[str]] = None,
) -> List[EntangledQuery]:
    """Turn a partner-structure graph into a set of entangled queries.

    Node ``i`` of the graph becomes a query for ``users[i]``
    (``member_name(i)`` by default); its partners are its successors.
    """
    names = (
        [member_name(i) for i in range(structure.node_count())]
        if users is None
        else list(users)
    )
    out: List[EntangledQuery] = []
    for node in sorted(structure.nodes()):
        partners = [names[t] for t in sorted(structure.successors(node))]
        out.append(partner_query(names[node], partners))
    return out


def list_workload(size: int) -> List[EntangledQuery]:
    """The Figure 4 workload: a list of ``size`` queries."""
    return queries_from_structure(list_digraph(size))


def scale_free_workload(
    size: int,
    out_degree: int = 2,
    seed: int = 0,
) -> List[EntangledQuery]:
    """The Figure 5/6 workload: partners from a scale-free network."""
    return queries_from_structure(
        scale_free_digraph(size, out_degree=out_degree, seed=seed)
    )


# ---------------------------------------------------------------------------
# Shared-venue variant: non-trivial unification chains
# ---------------------------------------------------------------------------
def venues_database(venues: int = 20) -> Database:
    """A small ``Venues(venueId, capacity)`` table."""
    builder = DatabaseBuilder().table("Venues", ["venueId", "capacity"], key="venueId")
    builder.rows("Venues", [(f"venue{i:03d}", 10 + i) for i in range(venues)])
    return builder.build()


def shared_venue_query(
    user: str,
    partners: Sequence[str],
    min_capacity: Optional[int] = None,
) -> EntangledQuery:
    """User ``u`` insists all partners pick the *same* venue as her.

    The postcondition reuses the head variable (``{R(x, p)} R(x, u)``),
    so unification propagates one venue value across the whole connected
    component — the interesting case for the combined-query machinery.
    """
    venue = Variable("x")
    capacity = Variable("cap")
    body: List[Atom] = [Atom("Venues", [venue, capacity])]
    if min_capacity is not None:
        # Capacity thresholds are modelled by enumerating the allowed
        # rows; conjunctive queries have no arithmetic, so workloads
        # pre-filter via a dedicated relation when they need one.
        body = [Atom("Venues", [venue, min_capacity])]
    posts = [Atom(ANSWER_RELATION, [venue, partner]) for partner in partners]
    head = [Atom(ANSWER_RELATION, [venue, user])]
    return EntangledQuery(user, posts, head, body)


def shared_venue_workload(
    structure: DiGraph,
    users: Optional[Sequence[str]] = None,
) -> List[EntangledQuery]:
    """Shared-venue queries over an arbitrary partner structure."""
    names = (
        [member_name(i) for i in range(structure.node_count())]
        if users is None
        else list(users)
    )
    out: List[EntangledQuery] = []
    for node in sorted(structure.nodes()):
        partners = [names[t] for t in sorted(structure.successors(node))]
        out.append(shared_venue_query(names[node], partners))
    return out
