"""The movies example of Section 5, reproduced exactly.

Coldplay has a night off: each band member wants to go to a cinema with
at least one other band member (or, for Chris, specifically with Will),
with preferences over the movie and/or the cinema:

* Chris wants *Contagion* at *Regal*, with Will (by name — note Will is
  **not** Chris's friend, which the paper points out is allowed);
* Guy wants *Project X* at *AMC*, with a friend;
* Jonny wants *Hugo* anywhere, with a friend;
* Will wants *Hugo* anywhere, with a friend.

With *Hugo* playing at Regal, AMC and Cinemark, the option lists are
the paper's table::

    V(qc) = {Regal}
    V(qg) = {AMC}
    V(qj) = {Regal, AMC, Cinemark}
    V(qw) = {Regal, AMC, Cinemark}

and the cleaning phase rejects Cinemark (Jonny and Will have no friends
there) and accepts Regal with {Chris, Jonny, Will}, exactly as the
paper traces.  (AMC also survives with {Guy, Jonny, Will} — a valid
coordinating set the paper's narrative does not discuss; the tests
assert both.)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core import ConsistentQuery, ConsistentSetup, FriendSlot, NamedPartner
from ..db import Database, DatabaseBuilder

CINEMAS = ("Regal", "AMC", "Cinemark")

# (user, friend) orientation: `friend` is a friend of `user`.
FRIENDSHIPS: Tuple[Tuple[str, str], ...] = (
    ("Chris", "Jonny"),
    ("Chris", "Guy"),
    ("Guy", "Chris"),
    ("Guy", "Jonny"),
    ("Jonny", "Chris"),
    ("Jonny", "Will"),
    ("Will", "Chris"),
    ("Will", "Guy"),
)


def movies_database() -> Database:
    """``M(movieId, cinema, movie)`` and the band's friendship table."""
    builder = DatabaseBuilder()
    builder.table("M", ["movieId", "cinema", "movie"], key="movieId")
    builder.rows(
        "M",
        [
            (1, "Regal", "Contagion"),
            (2, "AMC", "Project X"),
            (3, "Regal", "Hugo"),
            (4, "AMC", "Hugo"),
            (5, "Cinemark", "Hugo"),
            (6, "Regal", "Drive"),
            (7, "AMC", "Moneyball"),
        ],
    )
    builder.table("C", ["user", "friend"])
    builder.rows("C", FRIENDSHIPS)
    return builder.build()


def movies_setup() -> ConsistentSetup:
    """Coordinate on the cinema; movie choice is private."""
    return ConsistentSetup(
        table="M",
        coordination_attributes=("cinema",),
        friend_relations=("C",),
    )


def movies_queries() -> List[ConsistentQuery]:
    """The four band members' queries (qc, qg, qj, qw)."""
    return [
        ConsistentQuery(
            "Chris",
            {"cinema": "Regal", "movie": "Contagion"},
            [NamedPartner("Will")],
        ),
        ConsistentQuery(
            "Guy",
            {"cinema": "AMC", "movie": "Project X"},
            [FriendSlot("C")],
        ),
        ConsistentQuery("Jonny", {"movie": "Hugo"}, [FriendSlot("C")]),
        ConsistentQuery("Will", {"movie": "Hugo"}, [FriendSlot("C")]),
    ]


def expected_option_lists() -> Dict[str, frozenset]:
    """The paper's V(q) table, keyed by user."""
    return {
        "Chris": frozenset({("Regal",)}),
        "Guy": frozenset({("AMC",)}),
        "Jonny": frozenset({("Regal",), ("AMC",), ("Cinemark",)}),
        "Will": frozenset({("Regal",), ("AMC",), ("Cinemark",)}),
    }
