"""Workload generators for every experiment and worked example."""

from .flights import (
    COORDINATION_ATTRIBUTES,
    FLIGHT_ATTRIBUTES,
    flight_setup,
    realistic_flight_rows,
    realistic_flight_workload,
    unique_flights_rows,
    user_name,
    worst_case_database,
    worst_case_queries,
)
from .movies import (
    CINEMAS,
    FRIENDSHIPS,
    expected_option_lists,
    movies_database,
    movies_queries,
    movies_setup,
)
from .partner import (
    ANSWER_RELATION,
    list_workload,
    members_database,
    partner_query,
    queries_from_structure,
    scale_free_workload,
    shared_venue_query,
    shared_venue_workload,
    venues_database,
)
from .tables import (
    expected_coordination_edges,
    vacation_database,
    vacation_queries,
)

__all__ = [
    "ANSWER_RELATION",
    "CINEMAS",
    "COORDINATION_ATTRIBUTES",
    "FLIGHT_ATTRIBUTES",
    "FRIENDSHIPS",
    "expected_coordination_edges",
    "expected_option_lists",
    "flight_setup",
    "list_workload",
    "members_database",
    "movies_database",
    "movies_queries",
    "movies_setup",
    "partner_query",
    "queries_from_structure",
    "realistic_flight_rows",
    "realistic_flight_workload",
    "scale_free_workload",
    "shared_venue_query",
    "shared_venue_workload",
    "unique_flights_rows",
    "user_name",
    "vacation_database",
    "vacation_queries",
    "venues_database",
    "worst_case_database",
    "worst_case_queries",
]
