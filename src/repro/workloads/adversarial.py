"""Adversarial merge-maximizer: a tournament of cross-shard merges.

The sharded service places edge-free arrivals on the least-loaded
shard and merges components when an arrival's edges span shards.  This
workload is built to make that machinery work as hard as possible: it
submits ``n`` mutually unconnected *leaf* queries (spread across all
shards by default placement), then a binary tournament of *linker*
queries, each posting to two previously submitted queries — so every
linker merges two live components, and about half of those merges
cross a shard boundary and force a migration.  After ``n - 1`` linkers
the whole workload is one giant component.

No query ever resolves: every query carries one postcondition naming
``nobody``, a participant that never arrives, so no coordinating set
exists and components only grow.  (Two posts to the same absent name
do *not* create an edge — edges come from post/head unification — so
the ghost blocks resolution without connecting anything.)  A final
retraction wave then exercises ``retract`` — O(component) — against
the giant component, and a drain sweeps up nothing, by construction.

Database schema::

    Anchors(node, weight)

Query shapes.  Leaf ``v`` and linker ``u`` over children ``a, b``::

    {R(y0, nobody)}                          R(x, v)  :-  Anchors(v, x)
    {R(y1, a), R(y2, b), R(y0, nobody)}      R(x, u)  :-  Anchors(u, x)
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..core import EntangledQuery
from ..db import Database, DatabaseBuilder
from ..logic import Atom, Variable

ANSWER_RELATION = "R"

#: The participant that never arrives; what keeps every component open.
GHOST = "nobody"


def node_name(index: int) -> str:
    """Canonical synthetic node name for ``index``."""
    return f"node{index:04d}"


def tournament_database(leaves: int) -> Database:
    """One ``Anchors`` row per tournament node (leaves and linkers).

    Every query body selects its own anchor row, so bodies are always
    satisfiable — resolution is blocked purely by the ghost post, never
    by the database.
    """
    builder = DatabaseBuilder()
    builder.table("Anchors", ["node", "weight"], key="node")
    total = max(2 * leaves - 1, 1)
    builder.rows("Anchors", [(node_name(i), i) for i in range(total)])
    return builder.build()


def leaf_query(name: str) -> EntangledQuery:
    """A tournament leaf: no edges to anyone, ghost-blocked."""
    value = Variable("x")
    body = [Atom("Anchors", [name, value])]
    posts = [Atom(ANSWER_RELATION, [Variable("y0"), GHOST])]
    head = [Atom(ANSWER_RELATION, [value, name])]
    return EntangledQuery(name, posts, head, body)


def linker_query(name: str, left: str, right: str) -> EntangledQuery:
    """A tournament linker: merges the components of ``left``/``right``."""
    value = Variable("x")
    body = [Atom("Anchors", [name, value])]
    posts = [
        Atom(ANSWER_RELATION, [Variable("y1"), left]),
        Atom(ANSWER_RELATION, [Variable("y2"), right]),
        Atom(ANSWER_RELATION, [Variable("y0"), GHOST]),
    ]
    head = [Atom(ANSWER_RELATION, [value, name])]
    return EntangledQuery(name, posts, head, body)


def merge_tournament_events(
    leaves: int,
    seed: int = 2012,
    retract_fraction: float = 0.25,
) -> Tuple[Database, List[tuple]]:
    """Database plus a deterministic journal-style event stream.

    Leaves arrive in shuffled order; each tournament round shuffles the
    survivors before pairing them, so consecutive merges join
    components that default placement scattered over different shards.
    After the tournament, ``retract_fraction`` of all queries are
    withdrawn in shuffled order (each retraction landing on the giant
    component), and a final ``("flush_drain",)`` closes the stream.
    """
    rng = random.Random(seed)
    db = tournament_database(leaves)
    events: List[tuple] = []
    names = [node_name(i) for i in range(leaves)]
    order = list(names)
    rng.shuffle(order)
    for name in order:
        events.append(("submit", leaf_query(name)))
    next_node = leaves
    level = list(names)
    while len(level) > 1:
        rng.shuffle(level)
        survivors: List[str] = []
        if len(level) % 2:
            survivors.append(level.pop())
        for i in range(0, len(level), 2):
            linker = node_name(next_node)
            next_node += 1
            events.append(("submit", linker_query(linker, level[i], level[i + 1])))
            survivors.append(linker)
        level = survivors
    everyone = [node_name(i) for i in range(next_node)]
    rng.shuffle(everyone)
    for name in everyone[: int(len(everyone) * retract_fraction)]:
        events.append(("retract", name))
    events.append(("flush_drain",))
    return db, events
