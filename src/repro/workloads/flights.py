"""Flight-coordination workloads for the Consistent algorithm experiments.

Section 6.2 evaluates the Consistent Coordination Algorithm on a flight
scenario: users coordinate with a friend on flying to the same
**destination** on the same **day** (the coordination attributes) and
may privately pin a **source** airport and **airline** (the
non-coordination attributes).

Two stress workloads reproduce the paper's figures:

* **Figure 7** — 50 queries, Flights tables of size 100–1000 where
  every flight has a *unique* (destination, day) pair, a complete
  friendship graph, and fully unconstrained queries, so the number of
  candidate values equals the table size and nothing is ever pruned —
  the worst case;
* **Figure 8** — a fixed 100-row Flights table (one row per
  (destination, day) combination) and 10–100 queries, same worst-case
  structure.

A ``realistic_flight_workload`` is also provided for examples and
integration tests: limited destinations/dates, user constraints drawn
at random, and a scale-free friendship graph.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..core import ConsistentQuery, ConsistentSetup, FriendSlot, NamedPartner
from ..db import Database, DatabaseBuilder
from ..graphs import DiGraph
from ..networks import complete_digraph, scale_free_digraph

COORDINATION_ATTRIBUTES = ("destination", "day")
FLIGHT_ATTRIBUTES = ("flightId", "destination", "day", "source", "airline")

_AIRLINES = ("AA", "BA", "LH", "AF", "UA", "EK")
_SOURCES = ("JFK", "LAX", "ORD", "SFO", "BOS", "SEA")


def flight_setup(friend_relation: str = "Friends") -> ConsistentSetup:
    """The paper's flight-scenario setup: coordinate on destination+day."""
    return ConsistentSetup(
        table="Flights",
        coordination_attributes=COORDINATION_ATTRIBUTES,
        friend_relations=(friend_relation,),
    )


def user_name(index: int) -> str:
    """Canonical user name for flight workloads."""
    return f"traveller{index:03d}"


def _friend_rows(graph: DiGraph) -> List[Tuple[str, str]]:
    return [
        (user_name(source), user_name(target)) for source, target in graph.edges()
    ]


def unique_flights_rows(count: int) -> List[Tuple]:
    """``count`` flights, each with a unique (destination, day) pair."""
    rows = []
    for i in range(count):
        rows.append(
            (
                1000 + i,
                f"city{i:04d}",
                f"day{i:04d}",
                _SOURCES[i % len(_SOURCES)],
                _AIRLINES[i % len(_AIRLINES)],
            )
        )
    return rows


def worst_case_database(num_flights: int, num_users: int) -> Database:
    """Flights with all-unique coordination values + complete friendships.

    This is the common substrate of Figures 7 and 8: every value in the
    database satisfies every query and the friendship graph is complete,
    so no pruning ever fires — the algorithm's worst case.
    """
    builder = DatabaseBuilder()
    builder.table("Flights", list(FLIGHT_ATTRIBUTES), key="flightId")
    builder.rows("Flights", unique_flights_rows(num_flights))
    builder.table("Friends", ["user", "friend"])
    builder.rows("Friends", _friend_rows(complete_digraph(num_users)))
    return builder.build()


def worst_case_queries(num_users: int) -> List[ConsistentQuery]:
    """Fully unconstrained friend-coordination queries."""
    return [
        ConsistentQuery(user_name(i), {}, [FriendSlot("Friends")])
        for i in range(num_users)
    ]


# ---------------------------------------------------------------------------
# Realistic variant
# ---------------------------------------------------------------------------
def realistic_flight_rows(
    destinations: Sequence[str],
    days: Sequence[str],
    flights_per_pair: int = 2,
    seed: int = 7,
) -> List[Tuple]:
    """Several airlines/sources per (destination, day) combination."""
    rng = random.Random(seed)
    rows = []
    flight_id = 5000
    for destination in destinations:
        for day in days:
            for _ in range(flights_per_pair):
                rows.append(
                    (
                        flight_id,
                        destination,
                        day,
                        rng.choice(_SOURCES),
                        rng.choice(_AIRLINES),
                    )
                )
                flight_id += 1
    return rows


def realistic_flight_workload(
    num_users: int = 20,
    destinations: Sequence[str] = ("Paris", "Zurich", "Istanbul", "Athens"),
    days: Sequence[str] = ("mon", "tue", "wed"),
    constraint_probability: float = 0.4,
    named_partner_probability: float = 0.2,
    seed: int = 7,
) -> Tuple[Database, List[ConsistentQuery]]:
    """A plausible mixed workload: constraints, named partners, friends.

    Each user gets a friend slot; with some probability they pin a
    destination and/or day (coordination constraints) or a source
    airport / airline (private constraints); with some probability they
    additionally name a specific partner, like Chris naming Will in the
    paper's movies example.
    """
    rng = random.Random(seed)
    builder = DatabaseBuilder()
    builder.table("Flights", list(FLIGHT_ATTRIBUTES), key="flightId")
    builder.rows(
        "Flights", realistic_flight_rows(destinations, days, seed=seed)
    )
    builder.table("Friends", ["user", "friend"])
    graph = scale_free_digraph(num_users, out_degree=3, seed=seed)
    # Friendship should not be empty for node 0; add a ring as backbone.
    rows = set(_friend_rows(graph))
    for i in range(num_users):
        rows.add((user_name(i), user_name((i + 1) % num_users)))
    builder.rows("Friends", sorted(rows))
    db = builder.build()

    queries: List[ConsistentQuery] = []
    for i in range(num_users):
        constraints: Dict[str, object] = {}
        if rng.random() < constraint_probability:
            constraints["destination"] = rng.choice(list(destinations))
        if rng.random() < constraint_probability:
            constraints["day"] = rng.choice(list(days))
        if rng.random() < constraint_probability:
            constraints["airline"] = rng.choice(_AIRLINES)
        partners: List[object] = [FriendSlot("Friends")]
        if rng.random() < named_partner_probability:
            other = rng.randrange(num_users)
            if other != i:
                partners.append(NamedPartner(user_name(other)))
        queries.append(ConsistentQuery(user_name(i), constraints, partners))
    return db, queries
