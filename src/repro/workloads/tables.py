"""The flight–hotel vacation example of Section 2.2 (Figures 1 and 2).

Coldplay members want a break from the tour:

* Chris wants to be on the same flight as Guy (destination: don't care);
* Guy wants Paris, same flight and same hotel as Chris;
* Jonny wants Athens, same flight as Chris and Guy;
* Will wants Madrid, same flight as Chris, same hotel as Jonny.

The queries form the extended coordination graph of Figure 2, with
SCCs ``{qC, qG}``, ``{qJ}``, ``{qW}``.  Jonny's requirement is
inherently contradictory (the same flight cannot land in both Paris and
Athens), so the SCC Coordination Algorithm finds the coordinating set
``{qC, qG}`` — sending Chris and Guy to Paris — where the safe+unique
baseline of Gupta et al. cannot return anything.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core import EntangledQuery
from ..db import Database, DatabaseBuilder
from ..logic import Atom, Variable

PARIS, ATHENS, MADRID = "Paris", "Athens", "Madrid"


def vacation_database(
    include_athens: bool = True, include_madrid: bool = True
) -> Database:
    """Flights ``F(flightId, destination)`` and hotels ``H(hotelId, location)``.

    The optional flags let tests build instances where Jonny's or
    Will's cities exist or not; the contradiction in the example does
    not depend on them (it comes from unification, not data).
    """
    builder = DatabaseBuilder()
    builder.table("F", ["flightId", "destination"], key="flightId")
    flights: List[Tuple[int, str]] = [(70, PARIS), (71, PARIS)]
    if include_athens:
        flights.append((80, ATHENS))
    if include_madrid:
        flights.append((90, MADRID))
    builder.rows("F", flights)
    builder.table("H", ["hotelId", "location"], key="hotelId")
    hotels: List[Tuple[int, str]] = [(700, PARIS), (701, PARIS)]
    if include_athens:
        hotels.append((800, ATHENS))
    if include_madrid:
        hotels.append((900, MADRID))
    builder.rows("H", hotels)
    return builder.build()


def vacation_queries() -> List[EntangledQuery]:
    """The four queries of Figure 1, verbatim.

    ``R`` is flight coordination, ``Q`` hotel coordination; both answer
    relations hold (user, id) pairs... in the paper's figure the first
    argument is the user, which we follow exactly.
    """
    x1, x2, x = Variable("x1"), Variable("x2"), Variable("x")
    y1, y2 = Variable("y1"), Variable("y2")
    z1, z2 = Variable("z1"), Variable("z2")
    w1, w2 = Variable("w1"), Variable("w2")

    q_c = EntangledQuery(
        "qC",
        postconditions=[Atom("R", ["G", x1])],
        head=[Atom("R", ["C", x1]), Atom("Q", ["C", x2])],
        body=[Atom("F", [x1, x]), Atom("H", [x2, x])],
    )
    q_g = EntangledQuery(
        "qG",
        postconditions=[Atom("R", ["C", y1]), Atom("Q", ["C", y2])],
        head=[Atom("R", ["G", y1]), Atom("Q", ["G", y2])],
        body=[Atom("F", [y1, PARIS]), Atom("H", [y2, PARIS])],
    )
    q_j = EntangledQuery(
        "qJ",
        postconditions=[Atom("R", ["C", z1]), Atom("R", ["G", z1])],
        head=[Atom("R", ["J", z1]), Atom("Q", ["J", z2])],
        body=[Atom("F", [z1, ATHENS]), Atom("H", [z2, ATHENS])],
    )
    q_w = EntangledQuery(
        "qW",
        postconditions=[Atom("R", ["C", w1]), Atom("Q", ["J", w2])],
        head=[Atom("R", ["W", w1]), Atom("Q", ["W", w2])],
        body=[Atom("F", [w1, MADRID]), Atom("H", [w2, MADRID])],
    )
    return [q_c, q_g, q_j, q_w]


def expected_coordination_edges() -> Dict[str, set]:
    """The collapsed coordination graph of the example (Figure 2)."""
    return {
        "qC": {"qG"},
        "qG": {"qC"},
        "qJ": {"qC", "qG"},
        "qW": {"qC", "qJ"},
    }
