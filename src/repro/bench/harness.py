"""Timing harness for the experiment reproductions.

The paper reports *processing time* as a function of a swept parameter
(number of queries, table size).  :func:`run_series` executes one
experiment point per parameter value, with optional repetition and
averaging — Figure 5 averages over ten random graphs, for example — and
returns a structured :class:`Series` the reporting layer can print or
the tests can assert trends on (linearity, monotonicity).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Point:
    """One measured point of a series."""

    x: float
    seconds: float
    repeats: int
    seconds_stdev: float = 0.0
    extra: Tuple[Tuple[str, float], ...] = ()

    def extra_map(self) -> Dict[str, float]:
        """Auxiliary counters (db queries, graph sizes, ...)."""
        return dict(self.extra)


@dataclass
class Series:
    """A named x→time series, the unit every figure is made of."""

    name: str
    x_label: str
    y_label: str
    points: List[Point] = field(default_factory=list)

    def xs(self) -> List[float]:
        """Parameter values."""
        return [p.x for p in self.points]

    def ys(self) -> List[float]:
        """Mean seconds per point."""
        return [p.seconds for p in self.points]

    def is_monotone_nondecreasing(self, tolerance: float = 0.25) -> bool:
        """``True`` when times grow with x, modulo ``tolerance`` jitter.

        Timing noise makes exact monotonicity too strict; a point may
        undercut its predecessor by up to ``tolerance`` fraction.
        """
        ys = self.ys()
        return all(b >= a * (1 - tolerance) for a, b in zip(ys, ys[1:]))

    def linear_fit(self) -> Tuple[float, float, float]:
        """Least-squares fit ``y = a·x + b``; returns (a, b, R²).

        Used to assert the paper's "grows linearly" claims: the fits on
        our reproduction should explain most of the variance.
        """
        xs, ys = self.xs(), self.ys()
        n = len(xs)
        if n < 2:
            return 0.0, ys[0] if ys else 0.0, 1.0
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        sxx = sum((x - mean_x) ** 2 for x in xs)
        sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        slope = sxy / sxx if sxx else 0.0
        intercept = mean_y - slope * mean_x
        ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
        ss_tot = sum((y - mean_y) ** 2 for y in ys)
        r_squared = 1.0 - ss_res / ss_tot if ss_tot else 1.0
        return slope, intercept, r_squared


def time_call(fn: Callable[[], T]) -> Tuple[float, T]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run_series(
    name: str,
    xs: Sequence[float],
    make_point: Callable[[float, int], Callable[[], object]],
    repeats: int = 1,
    x_label: str = "n",
    y_label: str = "seconds",
    extra_from_result: Optional[Callable[[object], Dict[str, float]]] = None,
) -> Series:
    """Measure one series.

    ``make_point(x, repeat)`` returns the zero-argument callable to time
    for parameter value ``x`` on repetition ``repeat`` — returning a
    fresh callable per repeat lets experiments regenerate their random
    structure each time, as Figure 5's ten-graph averaging requires.
    ``extra_from_result`` extracts auxiliary counters from the last
    repeat's result.
    """
    series = Series(name, x_label, y_label)
    for x in xs:
        times: List[float] = []
        last_result: object = None
        for repeat in range(repeats):
            seconds, last_result = time_call(make_point(x, repeat))
            times.append(seconds)
        extra: Dict[str, float] = {}
        if extra_from_result is not None and last_result is not None:
            extra = extra_from_result(last_result)
        series.points.append(
            Point(
                x=x,
                seconds=statistics.fmean(times),
                repeats=repeats,
                seconds_stdev=statistics.pstdev(times) if len(times) > 1 else 0.0,
                extra=tuple(sorted(extra.items())),
            )
        )
    return series
