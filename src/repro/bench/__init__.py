"""Benchmark harness: experiment runners for Figures 4–8 and ablations."""

from .figures import (
    FIGURES,
    Experiment,
    ablation_db_queries,
    ablation_hardness,
    ablation_preprocessing,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from .harness import Point, Series, run_series, time_call
from .reporting import (
    format_seconds,
    render_figure,
    render_figure_markdown,
    render_series,
    render_series_markdown,
    sparkline,
)

__all__ = [
    "FIGURES",
    "Experiment",
    "Point",
    "Series",
    "ablation_db_queries",
    "ablation_hardness",
    "ablation_preprocessing",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "format_seconds",
    "render_figure",
    "render_figure_markdown",
    "render_series",
    "render_series_markdown",
    "run_series",
    "sparkline",
    "time_call",
]
