"""Command-line entry point: rerun the paper's evaluation.

Usage::

    python -m repro.bench            # all figures + ablations
    python -m repro.bench fig4 fig7  # a subset
    python -m repro.bench --fast     # scaled-down parameters (CI-sized)

Prints each figure as an aligned x/y table with a linear-fit summary —
the same series the paper plots.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .figures import (
    FIGURES,
    ablation_db_queries,
    ablation_hardness,
    ablation_preprocessing,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from .reporting import render_figure, render_figure_markdown

_FAST_RUNNERS = {
    "fig4": lambda: [figure4(sizes=range(10, 51, 10), member_count=5000, repeats=1)],
    "fig5": lambda: [
        figure5(sizes=range(10, 51, 10), member_count=5000, graphs_per_size=3)
    ],
    "fig6": lambda: [figure6(sizes=range(100, 501, 100), graphs_per_size=3)],
    "fig7": lambda: [figure7(flight_counts=range(100, 501, 100), repeats=1)],
    "fig8": lambda: [figure8(user_counts=range(10, 51, 10), repeats=1)],
    "ablation-hardness": lambda: list(
        ablation_hardness(variable_counts=(3, 4), clause_ratio=1.5)
    ),
    "ablation-db-queries": lambda: [ablation_db_queries(sizes=range(10, 51, 10))],
    "ablation-preprocessing": lambda: list(
        ablation_preprocessing(sizes=(20, 40, 60))
    ),
}


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        choices=[*FIGURES.keys(), []],
        help="experiment ids (default: all)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down parameters for a quick end-to-end run",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit EXPERIMENTS.md-style markdown instead of tables",
    )
    args = parser.parse_args(argv)

    selected = args.figures or list(FIGURES)
    for key in selected:
        experiment = FIGURES[key]
        runner = _FAST_RUNNERS[key] if args.fast else experiment.run
        series_list = runner()
        if args.markdown:
            print(
                render_figure_markdown(
                    experiment.figure_id,
                    experiment.caption,
                    experiment.paper_claim,
                    series_list,
                )
            )
        else:
            print(
                render_figure(
                    experiment.figure_id, experiment.caption, series_list
                )
            )
            print(f"paper claim: {experiment.paper_claim}")
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
