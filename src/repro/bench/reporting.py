"""Plain-text reporting of experiment series.

The paper presents Figures 4–8 as line charts; in a terminal we print
the same x/y series as aligned tables plus a crude ASCII sparkline, and
summarise the linear fit so the "grows linearly" claims are visible at
a glance.  EXPERIMENTS.md is generated from these renderings.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .harness import Series

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a value sequence."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high == low:
        return _BLOCKS[0] * len(values)
    out = []
    for value in values:
        index = int((value - low) / (high - low) * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[index])
    return "".join(out)


def format_seconds(seconds: float) -> str:
    """Human-scale time formatting (µs/ms/s)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f} ms"
    return f"{seconds:8.3f} s "


def render_series(series: Series, title: str = "") -> str:
    """Render one series as an aligned table with a fit summary."""
    lines: List[str] = []
    header = title or series.name
    lines.append(header)
    lines.append("=" * len(header))
    extra_keys: List[str] = []
    for point in series.points:
        for key, _ in point.extra:
            if key not in extra_keys:
                extra_keys.append(key)
    columns = [series.x_label.rjust(10), ("mean " + series.y_label).rjust(14)]
    columns.extend(key.rjust(14) for key in extra_keys)
    lines.append("  ".join(columns))
    for point in series.points:
        row = [f"{point.x:10g}", format_seconds(point.seconds).rjust(14)]
        extras = point.extra_map()
        row.extend(f"{extras.get(key, float('nan')):14g}" for key in extra_keys)
        lines.append("  ".join(row))
    slope, intercept, r_squared = series.linear_fit()
    lines.append(
        f"trend: {sparkline(series.ys())}   linear fit "
        f"y = {slope:.3g}·x + {intercept:.3g}   R² = {r_squared:.3f}"
    )
    return "\n".join(lines)


def render_figure(
    figure_id: str,
    caption: str,
    series_list: Iterable[Series],
) -> str:
    """Render a whole figure (one or more series) with its caption."""
    blocks = [f"{figure_id}: {caption}", "-" * 72]
    for series in series_list:
        blocks.append(render_series(series))
        blocks.append("")
    return "\n".join(blocks)


def render_series_markdown(series: Series) -> str:
    """Render one series as a GitHub-flavoured markdown table.

    This is the format EXPERIMENTS.md records; ``python -m repro.bench
    --markdown`` regenerates the whole report mechanically.
    """
    extra_keys: List[str] = []
    for point in series.points:
        for key, _ in point.extra:
            if key not in extra_keys:
                extra_keys.append(key)
    header = [series.x_label, "mean time"] + extra_keys
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---:" for _ in header) + "|",
    ]
    for point in series.points:
        extras = point.extra_map()
        row = [f"{point.x:g}", format_seconds(point.seconds).strip()]
        row.extend(f"{extras.get(key, float('nan')):g}" for key in extra_keys)
        lines.append("| " + " | ".join(row) + " |")
    slope, intercept, r_squared = series.linear_fit()
    lines.append("")
    lines.append(
        f"Linear fit: `y = {slope:.3g}·x + {intercept:.3g}` with "
        f"R² = {r_squared:.3f}."
    )
    return "\n".join(lines)


def render_figure_markdown(
    figure_id: str,
    caption: str,
    paper_claim: str,
    series_list: Iterable[Series],
) -> str:
    """Render a whole figure as a markdown section (EXPERIMENTS.md style)."""
    blocks = [f"## {figure_id} — {caption}", "", f"**Paper claim:** {paper_claim}", ""]
    for series in series_list:
        blocks.append(f"**Measured** (`{series.name}`):")
        blocks.append("")
        blocks.append(render_series_markdown(series))
        blocks.append("")
    return "\n".join(blocks)
