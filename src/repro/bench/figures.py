"""Experiment definitions reproducing Figures 4–8 plus ablations.

Each ``figure*`` function reruns one experiment of Section 6 and
returns a :class:`~repro.bench.harness.Series`; parameters default to
the paper's (list sizes 10–100, scale-free graphs averaged over ten
seeds, Flights tables 100–1000, the 82 168-row member table) but are
adjustable so tests can run scaled-down versions quickly.

The registry :data:`FIGURES` maps experiment ids to metadata + runners;
``python -m repro.bench`` renders all of them, and EXPERIMENTS.md is
generated from the same output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import (
    CoordinationGraph,
    consistent_coordinate,
    preprocess,
    scc_coordinate,
)
from ..db import Database
from ..graphs import condensation
from ..hardness import dpll, random_3sat, theorem1
from ..core import find_coordinating_set
from ..networks import SLASHDOT_SIZE
from ..workloads import (
    flight_setup,
    list_workload,
    members_database,
    scale_free_workload,
    worst_case_database,
    worst_case_queries,
)
from .harness import Series, run_series

DEFAULT_QUERY_SIZES = tuple(range(10, 101, 10))
DEFAULT_GRAPH_SIZES = tuple(range(100, 1001, 100))
DEFAULT_FLIGHT_SIZES = tuple(range(100, 1001, 100))


# ---------------------------------------------------------------------------
# Figure 4 — SCC algorithm, list structure
# ---------------------------------------------------------------------------
def figure4(
    sizes: Sequence[int] = DEFAULT_QUERY_SIZES,
    member_count: int = SLASHDOT_SIZE,
    repeats: int = 3,
    db: Optional[Database] = None,
) -> Series:
    """Processing time of the SCC algorithm on list-structured queries.

    The worst case for the algorithm: a different coordinating set per
    suffix of the list, hence the largest possible number of database
    queries (= number of queries).  The paper reports linear growth.
    """
    database = db if db is not None else members_database(member_count)

    def make_point(x: float, repeat: int) -> Callable[[], object]:
        queries = list_workload(int(x))
        return lambda: scc_coordinate(database, queries)

    return run_series(
        "fig4-list",
        sizes,
        make_point,
        repeats=repeats,
        x_label="queries",
        extra_from_result=lambda r: {
            "db_queries": r.stats.db_queries,  # type: ignore[union-attr]
            "sccs": r.stats.scc_count,  # type: ignore[union-attr]
        },
    )


# ---------------------------------------------------------------------------
# Figure 5 — SCC algorithm, scale-free structure (10-graph average)
# ---------------------------------------------------------------------------
def figure5(
    sizes: Sequence[int] = DEFAULT_QUERY_SIZES,
    member_count: int = SLASHDOT_SIZE,
    graphs_per_size: int = 10,
    db: Optional[Database] = None,
) -> Series:
    """Processing time with scale-free partner structure.

    Each repetition draws a fresh random graph (the paper averages over
    ten); expected: linear growth, faster than the list structure.
    """
    database = db if db is not None else members_database(member_count)

    def make_point(x: float, repeat: int) -> Callable[[], object]:
        queries = scale_free_workload(int(x), out_degree=2, seed=repeat)
        return lambda: scc_coordinate(database, queries)

    return run_series(
        "fig5-scale-free",
        sizes,
        make_point,
        repeats=graphs_per_size,
        x_label="queries",
        extra_from_result=lambda r: {
            "db_queries": r.stats.db_queries,  # type: ignore[union-attr]
            "sccs": r.stats.scc_count,  # type: ignore[union-attr]
        },
    )


# ---------------------------------------------------------------------------
# Figure 6 — graph construction + preprocessing only
# ---------------------------------------------------------------------------
def figure6(
    sizes: Sequence[int] = DEFAULT_GRAPH_SIZES,
    graphs_per_size: int = 10,
) -> Series:
    """Graph processing time (build + preprocess + SCC + condensation).

    No database work at all; the paper's point is that this overhead is
    negligible and grows slowly even for 1000-query coordination graphs.
    """

    def make_point(x: float, repeat: int) -> Callable[[], object]:
        queries = scale_free_workload(int(x), out_degree=2, seed=repeat)

        def body() -> object:
            graph = CoordinationGraph.build(queries)
            pre = preprocess(graph)
            return condensation(pre.graph.graph)

        return body

    return run_series(
        "fig6-graph-processing",
        sizes,
        make_point,
        repeats=graphs_per_size,
        x_label="queries",
        extra_from_result=lambda c: {"components": float(c.component_count)},  # type: ignore[union-attr]
    )


# ---------------------------------------------------------------------------
# Figure 7 — Consistent algorithm vs. number of possible values
# ---------------------------------------------------------------------------
def figure7(
    flight_counts: Sequence[int] = DEFAULT_FLIGHT_SIZES,
    num_users: int = 50,
    repeats: int = 3,
) -> Series:
    """Processing time as the number of candidate values grows.

    50 unconstrained queries, complete friendship graph, all flights
    unique in (destination, day) — every distinct value is a candidate
    and nothing prunes.  The paper reports linear growth in the number
    of options.
    """
    setup = flight_setup()

    def make_point(x: float, repeat: int) -> Callable[[], object]:
        database = worst_case_database(int(x), num_users)
        queries = worst_case_queries(num_users)
        return lambda: consistent_coordinate(database, setup, queries)

    return run_series(
        "fig7-values",
        flight_counts,
        make_point,
        repeats=repeats,
        x_label="flights",
        extra_from_result=lambda r: {
            "values": r.stats.candidate_values,  # type: ignore[union-attr]
            "db_queries": r.stats.db_queries,  # type: ignore[union-attr]
        },
    )


# ---------------------------------------------------------------------------
# Figure 8 — Consistent algorithm vs. number of queries
# ---------------------------------------------------------------------------
def figure8(
    user_counts: Sequence[int] = DEFAULT_QUERY_SIZES,
    num_flights: int = 100,
    repeats: int = 3,
) -> Series:
    """Processing time as the number of queries grows (100 flights).

    Same worst-case structure as Figure 7; the paper reports linear
    growth in the number of queries.
    """
    setup = flight_setup()

    def make_point(x: float, repeat: int) -> Callable[[], object]:
        database = worst_case_database(num_flights, int(x))
        queries = worst_case_queries(int(x))
        return lambda: consistent_coordinate(database, setup, queries)

    return run_series(
        "fig8-queries",
        user_counts,
        make_point,
        repeats=repeats,
        x_label="queries",
        extra_from_result=lambda r: {
            "values": r.stats.candidate_values,  # type: ignore[union-attr]
            "db_queries": r.stats.db_queries,  # type: ignore[union-attr]
        },
    )


# ---------------------------------------------------------------------------
# Ablations (not paper figures; design-choice validation per DESIGN.md)
# ---------------------------------------------------------------------------
def ablation_hardness(
    variable_counts: Sequence[int] = (3, 4),
    clause_ratio: float = 2.0,
    seed: int = 11,
) -> Tuple[Series, Series]:
    """Brute-force entangled search vs. DPLL on Theorem-1 instances.

    Shows the exponential wall the practical algorithms avoid: the
    brute-force coordinating-set search blows up with the variable
    count while DPLL stays trivial at these sizes.
    """

    def make_brute(x: float, repeat: int) -> Callable[[], object]:
        formula = random_3sat(int(x), max(1, int(x * clause_ratio)), seed=seed + repeat)
        instance = theorem1.encode(formula)
        return lambda: find_coordinating_set(instance.db, instance.queries)

    def make_dpll(x: float, repeat: int) -> Callable[[], object]:
        formula = random_3sat(int(x), max(1, int(x * clause_ratio)), seed=seed + repeat)
        return lambda: dpll.solve(formula)

    brute = run_series(
        "ablation-bruteforce", variable_counts, make_brute, repeats=1,
        x_label="variables",
    )
    oracle = run_series(
        "ablation-dpll", variable_counts, make_dpll, repeats=1,
        x_label="variables",
    )
    return brute, oracle


def ablation_db_queries(
    sizes: Sequence[int] = DEFAULT_QUERY_SIZES,
    member_count: int = 2000,
) -> Series:
    """Database queries issued by the SCC algorithm (machine-free cost).

    On the list structure every query is its own SCC, so the paper's
    bound "at most |Q| database queries" is met with equality — the
    series reports the exact counter.
    """
    database = members_database(member_count)

    def make_point(x: float, repeat: int) -> Callable[[], object]:
        queries = list_workload(int(x))
        return lambda: scc_coordinate(database, queries)

    return run_series(
        "ablation-db-queries",
        sizes,
        make_point,
        repeats=1,
        x_label="queries",
        extra_from_result=lambda r: {
            "db_queries": r.stats.db_queries,  # type: ignore[union-attr]
        },
    )


def ablation_preprocessing(
    sizes: Sequence[int] = (20, 40, 60, 80, 100),
    member_count: int = 2000,
) -> Tuple[Series, Series]:
    """Effect of the unsatisfiable-postcondition preprocessing.

    Workload: a list of queries whose head chain is broken in the
    middle (one query's postcondition matches nobody), so preprocessing
    can discard the whole prefix without touching the database.
    """
    database = members_database(member_count)

    def broken_list(size: int):
        queries = list_workload(size)
        # Break the chain: rewrite the middle query's postcondition to a
        # partner that does not exist, so it (and every query upstream
        # of it) has an unsatisfiable postcondition.
        from ..workloads import partner_query

        middle = size // 2
        broken = partner_query(queries[middle].name, ["nobody-home"])
        queries[middle] = broken
        return queries

    def with_pre(x: float, repeat: int) -> Callable[[], object]:
        queries = broken_list(int(x))
        return lambda: scc_coordinate(database, queries, run_preprocessing=True)

    def without_pre(x: float, repeat: int) -> Callable[[], object]:
        queries = broken_list(int(x))
        return lambda: scc_coordinate(database, queries, run_preprocessing=False)

    on = run_series(
        "ablation-preprocessing-on", sizes, with_pre, repeats=3,
        x_label="queries",
        extra_from_result=lambda r: {
            "db_queries": r.stats.db_queries,  # type: ignore[union-attr]
            "removed": r.stats.preprocessing_removed,  # type: ignore[union-attr]
        },
    )
    off = run_series(
        "ablation-preprocessing-off", sizes, without_pre, repeats=3,
        x_label="queries",
        extra_from_result=lambda r: {
            "db_queries": r.stats.db_queries,  # type: ignore[union-attr]
        },
    )
    return on, off


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment: id, paper claim, runner."""

    figure_id: str
    caption: str
    paper_claim: str
    run: Callable[[], List[Series]]


FIGURES: Dict[str, Experiment] = {
    "fig4": Experiment(
        "Figure 4",
        "SCC algorithm processing time, list structure (10-100 queries)",
        "Processing time grows linearly with the number of queries.",
        lambda: [figure4()],
    ),
    "fig5": Experiment(
        "Figure 5",
        "SCC algorithm processing time, scale-free structure (10 graphs/size)",
        "Linear growth; faster than the list structure.",
        lambda: [figure5()],
    ),
    "fig6": Experiment(
        "Figure 6",
        "Graph construction + preprocessing time, scale-free, 100-1000 queries",
        "Graph processing time is negligible and grows very slowly.",
        lambda: [figure6()],
    ),
    "fig7": Experiment(
        "Figure 7",
        "Consistent algorithm vs. number of possible values (50 queries)",
        "Processing time grows linearly with the number of options.",
        lambda: [figure7()],
    ),
    "fig8": Experiment(
        "Figure 8",
        "Consistent algorithm vs. number of queries (100 flights)",
        "Processing time grows linearly with the number of queries.",
        lambda: [figure8()],
    ),
    "ablation-hardness": Experiment(
        "Ablation A",
        "Brute-force coordinating-set search vs. DPLL (Theorem 1 instances)",
        "Exponential blow-up of the exact solver that safety avoids.",
        lambda: list(ablation_hardness()),
    ),
    "ablation-db-queries": Experiment(
        "Ablation B",
        "Database queries issued by the SCC algorithm (list structure)",
        "At most |Q| database queries; equality on the list worst case.",
        lambda: [ablation_db_queries()],
    ),
    "ablation-preprocessing": Experiment(
        "Ablation C",
        "Unsatisfiable-postcondition preprocessing on a broken list",
        "Preprocessing removes doomed queries before any database work.",
        lambda: list(ablation_preprocessing()),
    ),
}
