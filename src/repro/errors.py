"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch a single base class.  Sub-hierarchies mirror the
package layout: logic-level errors (unification), database errors
(schema/arity violations), and coordination-level errors (malformed
entangled queries, algorithm preconditions).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class LogicError(ReproError):
    """Base class for errors in the logic substrate (:mod:`repro.logic`)."""


class UnificationError(LogicError):
    """Two atoms or atom lists could not be unified.

    Most unification entry points return ``None`` on failure instead of
    raising; this error signals *structural* misuse, e.g. attempting to
    unify atoms of different relations when the caller promised they
    matched.
    """


class DatabaseError(ReproError):
    """Base class for errors in the database engine (:mod:`repro.db`)."""


class SchemaError(DatabaseError):
    """A relation was declared or used inconsistently with its schema."""


class UnknownRelationError(DatabaseError):
    """A query or insert referenced a relation that does not exist."""


class ArityError(DatabaseError):
    """A tuple or atom has the wrong number of attributes for a relation."""


class WireError(DatabaseError):
    """A wire frame or payload could not be encoded or decoded.

    Raised by :mod:`repro.db.wire` for unsupported value types, corrupt
    or version-mismatched frames, and replica-sync payloads that do not
    line up with the replica's row counts (a desynced replica must fail
    loudly rather than silently evaluate against wrong data).
    """


class GraphError(ReproError):
    """Base class for errors in the graph substrate (:mod:`repro.graphs`)."""


class CoordinationError(ReproError):
    """Base class for errors in the entangled-query core (:mod:`repro.core`)."""


class MalformedQueryError(CoordinationError):
    """An entangled query violates the syntactic requirements of Section 2.1.

    The two syntactic requirements are: (i) all body relation symbols are
    database relations, and (ii) postcondition/head relation symbols
    (answer relations) are disjoint from the database schema.
    """


class ParseError(CoordinationError):
    """The textual entangled-query syntax could not be parsed."""


class PreconditionError(CoordinationError):
    """An algorithm's documented precondition does not hold.

    For example, the Gupta et al. baseline requires a safe *and* unique
    set of queries; the SCC Coordination Algorithm requires safety.
    """


class ConcurrencyError(CoordinationError):
    """A single-owner structure was accessed from two threads at once.

    :class:`~repro.core.engine.CoordinationEngine` instances are owned
    by exactly one shard worker at a time (see the concurrency model in
    DESIGN.md); calling into an engine while another thread holds its
    lock raises this instead of corrupting coordination state.  Also
    raised for lifecycle misuse of the concurrent service (operations
    on a closed :class:`~repro.core.ShardedCoordinationService`, or a
    worker that died mid-stream).
    """


class HardnessError(ReproError):
    """Base class for errors in the reductions (:mod:`repro.hardness`)."""


class FormulaError(HardnessError):
    """A CNF formula is malformed (e.g. empty clause set, zero literal)."""
