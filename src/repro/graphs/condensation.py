"""Condensation: the components graph of Section 4.

Given a directed graph ``G``, the *components graph* ``G'`` has the SCCs
of ``G`` as vertices, with an edge from SCC ``S1`` to SCC ``S2`` when
some edge of ``G`` crosses from ``S1`` into ``S2``.  ``G'`` is always a
DAG.  Components are identified by their index in the reverse
topological order produced by
:func:`repro.graphs.scc.strongly_connected_components`, so iterating
component ids ``0, 1, 2, ...`` *is* the reverse topological traversal
the SCC Coordination Algorithm needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .digraph import DiGraph, Node
from .scc import component_index, strongly_connected_components


@dataclass
class Condensation:
    """The condensation of a directed graph.

    Attributes
    ----------
    components:
        SCCs in reverse topological order (successors before
        predecessors).
    dag:
        The components graph; nodes are component indexes into
        ``components``.
    node_component:
        Maps each original node to its component index.
    """

    components: List[Tuple[Node, ...]]
    dag: DiGraph
    node_component: Dict[Node, int]

    @property
    def component_count(self) -> int:
        """Number of SCCs."""
        return len(self.components)

    def component_of(self, node: Node) -> int:
        """Component index of an original node."""
        return self.node_component[node]

    def members(self, component: int) -> Tuple[Node, ...]:
        """Original nodes of a component."""
        return self.components[component]

    def reverse_topological_order(self) -> range:
        """Component ids, successors first (see module docstring)."""
        return range(len(self.components))

    def reachable_nodes(self, component: int) -> List[Node]:
        """All original nodes in SCCs reachable from ``component``.

        This is the set ``R(q)`` of Section 4 (for ``q`` any member of
        ``component``): the queries that must join ``q`` in any
        coordinating set containing ``q``.  Includes the component's own
        members.
        """
        seen = {component}
        stack = [component]
        nodes: List[Node] = []
        while stack:
            current = stack.pop()
            nodes.extend(self.components[current])
            for successor in self.dag.successors(current):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return nodes


def condensation(graph: DiGraph) -> Condensation:
    """Compute the condensation of ``graph``."""
    components = strongly_connected_components(graph)
    node_to_component = component_index(components)
    dag = DiGraph()
    dag.add_nodes(range(len(components)))
    for source, target in graph.edges():
        cs = node_to_component[source]
        ct = node_to_component[target]
        if cs != ct:
            dag.add_edge(cs, ct)
    return Condensation(components, dag, node_to_component)
