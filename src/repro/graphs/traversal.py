"""Graph traversal utilities: topological order, reachability, paths.

These support the structural definitions of the paper: uniqueness
(Definition 3) is strong connectivity; single-connectedness
(Definition 6) bounds the number of simple paths between vertex pairs;
``R(q)`` (Section 4) is forward reachability.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import GraphError
from .digraph import DiGraph, Node


def reachable_from(graph: DiGraph, start: Node) -> Set[Node]:
    """All nodes reachable from ``start`` (including ``start``)."""
    if not graph.has_node(start):
        raise GraphError(f"node {start!r} not in graph")
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for successor in graph.successors(node):
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return seen


def topological_order(graph: DiGraph) -> List[Node]:
    """Kahn topological sort; raises :class:`GraphError` on a cycle."""
    in_degree: Dict[Node, int] = {node: graph.in_degree(node) for node in graph}
    ready = [node for node, degree in in_degree.items() if degree == 0]
    order: List[Node] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for successor in graph.successors(node):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                ready.append(successor)
    if len(order) != graph.node_count():
        raise GraphError("graph has a cycle; no topological order exists")
    return order


def is_acyclic(graph: DiGraph) -> bool:
    """``True`` when the graph has no directed cycle."""
    try:
        topological_order(graph)
    except GraphError:
        return False
    return True


def count_simple_paths(
    graph: DiGraph, source: Node, target: Node, limit: int = 2
) -> int:
    """Count simple paths from ``source`` to ``target``, up to ``limit``.

    The single-connectedness check (Definition 6) only needs to know
    whether some pair has *two or more* simple paths, so the count stops
    as soon as it reaches ``limit``.  A node is a path of length zero to
    itself.  Simple means no repeated *vertices* (which also rules out
    repeated edges).
    """
    if not graph.has_node(source) or not graph.has_node(target):
        raise GraphError("both endpoints must be in the graph")
    if source == target:
        return 1

    count = 0
    path_set = {source}
    stack: List[Tuple[Node, List[Node]]] = [(source, sorted(graph.successors(source), key=repr))]
    while stack:
        node, pending = stack[-1]
        if not pending:
            stack.pop()
            path_set.discard(node)
            continue
        nxt = pending.pop()
        if nxt == target:
            count += 1
            if count >= limit:
                return count
            continue
        if nxt in path_set:
            continue
        path_set.add(nxt)
        stack.append((nxt, sorted(graph.successors(nxt), key=repr)))
    return count


def has_unique_simple_paths(graph: DiGraph) -> bool:
    """``True`` when every ordered pair has at most one simple path.

    This is the graph-theoretic half of single-connectedness
    (Definition 6).  Quadratic in nodes times path exploration; intended
    for the small query sets the property is checked on.
    """
    nodes = graph.nodes()
    for source in nodes:
        for target in nodes:
            if source == target:
                continue
            if count_simple_paths(graph, source, target, limit=2) >= 2:
                return False
    return True


def bfs_layers(graph: DiGraph, start: Node) -> List[List[Node]]:
    """Breadth-first layers from ``start`` (layer 0 is ``[start]``)."""
    if not graph.has_node(start):
        raise GraphError(f"node {start!r} not in graph")
    seen = {start}
    layer = [start]
    layers = [[start]]
    while layer:
        nxt: List[Node] = []
        for node in layer:
            for successor in sorted(graph.successors(node), key=repr):
                if successor not in seen:
                    seen.add(successor)
                    nxt.append(successor)
        if nxt:
            layers.append(nxt)
        layer = nxt
    return layers
