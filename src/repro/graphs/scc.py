"""Strongly connected components via an iterative Tarjan algorithm.

The SCC Coordination Algorithm (Section 4) rests on one observation:
within a safe set of queries, every SCC of the coordination graph is
either wholly inside a coordinating set or disjoint from it, so SCCs can
be contracted.  Tarjan's algorithm emits components in *reverse
topological order* of the condensation — precisely the processing order
Section 4 requires — so we surface that guarantee in the API.

The implementation is iterative (explicit stack) so thousand-node
benchmark graphs cannot hit Python's recursion limit.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .digraph import DiGraph, Node


def strongly_connected_components(graph: DiGraph) -> List[Tuple[Node, ...]]:
    """All SCCs of ``graph``, in reverse topological order.

    "Reverse topological" means: if the condensation has an edge from
    component ``A`` to component ``B`` (some edge of the graph goes from
    a node of ``A`` to a node of ``B``), then ``B`` appears *before*
    ``A`` in the returned list.  This matches the order in which the SCC
    Coordination Algorithm must process components (successors first).
    """
    index_counter = 0
    indexes: Dict[Node, int] = {}
    lowlinks: Dict[Node, int] = {}
    on_stack: Dict[Node, bool] = {}
    stack: List[Node] = []
    components: List[Tuple[Node, ...]] = []

    for root in graph.nodes():
        if root in indexes:
            continue
        # Each frame: (node, iterator over successors)
        work: List[Tuple[Node, List[Node]]] = [(root, sorted(graph.successors(root), key=repr))]
        indexes[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True

        while work:
            node, successors = work[-1]
            advanced = False
            while successors:
                successor = successors.pop()
                if successor not in indexes:
                    indexes[successor] = lowlinks[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append(
                        (successor, sorted(graph.successors(successor), key=repr))
                    )
                    advanced = True
                    break
                if on_stack.get(successor, False):
                    lowlinks[node] = min(lowlinks[node], indexes[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indexes[node]:
                component: List[Node] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(tuple(component))
    return components


def component_index(
    components: List[Tuple[Node, ...]]
) -> Dict[Node, int]:
    """Map each node to the index of its component in ``components``."""
    out: Dict[Node, int] = {}
    for i, component in enumerate(components):
        for node in component:
            out[node] = i
    return out


def is_strongly_connected(graph: DiGraph) -> bool:
    """``True`` when the whole (non-empty) graph is a single SCC."""
    if graph.node_count() == 0:
        return False
    return len(strongly_connected_components(graph)) == 1
