"""Disjoint-set forests with component-member tracking.

The online :class:`~repro.core.engine.CoordinationEngine` needs, per
arrival, the *weakly* connected component of the newcomer in the
coordination graph.  A BFS answers that in O(component edges); a
union–find answers it in amortized O(α) per edge union plus O(1) per
lookup, and — because arrivals only ever *add* edges incident to the
newcomer — never has to handle edge deletion on the hot path.

Beyond the textbook structure, :class:`UnionFind` tracks the member
list of every root (merged small-into-large, so maintaining it costs
O(n log n) total over any union sequence) and supports
:meth:`discard_component`, which drops a whole component in
O(component).  That is the deletion granularity the engine needs: a
satisfied coordinating set (a downward-closed subset of one weak
component — usually not the whole component) is deleted by discarding
the component and re-linking the *surviving* members from their
surviving incident edges, still O(component) total.  That discard +
re-split idiom is packaged as :meth:`replace_component`, which is also
how arbitrary single-element deletion (query retraction) works: the
forest cannot split a component, but the caller owns the surviving
edge set and can re-derive connectivity from it in O(component).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

Element = Hashable


class UnionFind:
    """A disjoint-set forest over hashable elements.

    Union by size with iterative path compression; every root carries
    the list of its component's members so :meth:`members` is O(size of
    the answer), not O(n).
    """

    __slots__ = ("_parent", "_size", "_members")

    def __init__(self) -> None:
        self._parent: Dict[Element, Element] = {}
        self._size: Dict[Element, int] = {}
        self._members: Dict[Element, List[Element]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, element: Element) -> bool:
        """Add a singleton component; returns ``False`` if known."""
        if element in self._parent:
            return False
        self._parent[element] = element
        self._size[element] = 1
        self._members[element] = [element]
        return True

    def union(self, a: Element, b: Element) -> Element:
        """Merge the components of ``a`` and ``b``; returns the root.

        Unknown elements are added implicitly (the engine unions along
        freshly discovered edges whose endpoints it just inserted).
        """
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size.pop(rb)
        self._members[ra].extend(self._members.pop(rb))
        return ra

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find(self, element: Element) -> Element:
        """The component root of ``element`` (with path compression)."""
        parent = self._parent
        root = element
        while parent[root] != root:
            root = parent[root]
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def connected(self, a: Element, b: Element) -> bool:
        """``True`` when both elements are in the same component."""
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def members(self, element: Element) -> Tuple[Element, ...]:
        """All members of ``element``'s component."""
        return tuple(self._members[self.find(element)])

    def component_size(self, element: Element) -> int:
        """Size of ``element``'s component."""
        return self._size[self.find(element)]

    def components(self) -> Iterator[Tuple[Element, ...]]:
        """Iterate over all components as member tuples."""
        for members in self._members.values():
            yield tuple(members)

    # ------------------------------------------------------------------
    # Deletion (whole components only)
    # ------------------------------------------------------------------
    def discard_component(self, element: Element) -> Tuple[Element, ...]:
        """Remove ``element``'s entire component; returns its members.

        O(component).  Single-element deletion is intentionally absent:
        splitting a component requires re-deriving connectivity from the
        surviving edges, which only the caller (who owns the edge set)
        can do — see :meth:`repro.core.engine.CoordinationEngine`.
        """
        if element not in self._parent:
            return ()
        root = self.find(element)
        dropped = self._members.pop(root)
        del self._size[root]
        for member in dropped:
            del self._parent[member]
        return tuple(dropped)

    def replace_component(
        self,
        element: Element,
        survivors: Iterable[Element],
        links: Iterable[Tuple[Element, Element]],
    ) -> None:
        """Delete ``element``'s component, keep ``survivors``, re-split.

        The component is discarded wholesale, the survivors re-enter as
        singletons, and connectivity among them is rebuilt from
        ``links`` — the (source, target) endpoint pairs of the edges
        that *survive* the deletion, which the caller reads off its own
        edge structure.  O(component + links): this is how both
        satisfied-set removal and single-query retraction split a weak
        component without touching the rest of the forest.
        """
        self.discard_component(element)
        for survivor in survivors:
            self.add(survivor)
        for a, b in links:
            self.union(a, b)

    def __contains__(self, element: Element) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def component_count(self) -> int:
        """Number of components."""
        return len(self._members)

    def __repr__(self) -> str:
        return f"UnionFind({len(self)} elements, {self.component_count()} components)"
