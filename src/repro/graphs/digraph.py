"""A small directed-graph data structure.

This replaces JGraphT in the paper's implementation.  Nodes are
arbitrary hashable objects (the coordination layers use query ids and
component ids).  Parallel edges are collapsed (the *coordination graph*
of Section 2.3 is defined exactly by collapsing the parallel edges of
the extended coordination graph); the extended graph keeps its labelled
multi-edges in :mod:`repro.core.coordination_graph` on top of this
class.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

from ..errors import GraphError

Node = Hashable


class DiGraph:
    """A directed graph with O(1) adjacency and predecessor lookup."""

    __slots__ = ("_succ", "_pred")

    def __init__(self) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add a node (no-op if already present)."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add several nodes."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, source: Node, target: Node) -> None:
        """Add a directed edge, creating endpoints as needed."""
        self.add_node(source)
        self.add_node(target)
        self._succ[source].add(target)
        self._pred[target].add(source)

    def add_edges(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        """Add several directed edges."""
        for source, target in edges:
            self.add_edge(source, target)

    def remove_node(self, node: Node) -> None:
        """Remove a node and all incident edges."""
        if node not in self._succ:
            raise GraphError(f"node {node!r} not in graph")
        for target in self._succ.pop(node):
            self._pred[target].discard(node)
        for source in self._pred.pop(node):
            self._succ[source].discard(node)

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove a directed edge if present."""
        if source in self._succ:
            self._succ[source].discard(target)
        if target in self._pred:
            self._pred[target].discard(source)

    def copy(self) -> "DiGraph":
        """An independent copy of the graph."""
        dup = DiGraph()
        dup._succ = {n: set(s) for n, s in self._succ.items()}
        dup._pred = {n: set(p) for n, p in self._pred.items()}
        return dup

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """The induced subgraph on ``nodes`` (unknown nodes ignored)."""
        keep = {n for n in nodes if n in self._succ}
        sub = DiGraph()
        sub.add_nodes(keep)
        for node in keep:
            for target in self._succ[node]:
                if target in keep:
                    sub.add_edge(node, target)
        return sub

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes (insertion order is not guaranteed)."""
        return tuple(self._succ)

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        """Iterate over all directed edges."""
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    def successors(self, node: Node) -> Set[Node]:
        """Out-neighbours of ``node``."""
        try:
            return set(self._succ[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def predecessors(self, node: Node) -> Set[Node]:
        """In-neighbours of ``node``."""
        try:
            return set(self._pred[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def has_node(self, node: Node) -> bool:
        """Membership test for a node."""
        return node in self._succ

    def has_edge(self, source: Node, target: Node) -> bool:
        """Membership test for an edge."""
        return source in self._succ and target in self._succ[source]

    def out_degree(self, node: Node) -> int:
        """Number of out-neighbours."""
        return len(self._succ.get(node, ()))

    def in_degree(self, node: Node) -> int:
        """Number of in-neighbours."""
        return len(self._pred.get(node, ()))

    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._succ)

    def edge_count(self) -> int:
        """Number of directed edges."""
        return sum(len(s) for s in self._succ.values())

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def __repr__(self) -> str:
        return f"DiGraph({self.node_count()} nodes, {self.edge_count()} edges)"
