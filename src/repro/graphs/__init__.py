"""Directed-graph substrate (replaces JGraphT in the paper's stack)."""

from .condensation import Condensation, condensation
from .digraph import DiGraph, Node
from .scc import (
    component_index,
    is_strongly_connected,
    strongly_connected_components,
)
from .traversal import (
    bfs_layers,
    count_simple_paths,
    has_unique_simple_paths,
    is_acyclic,
    reachable_from,
    topological_order,
)
from .union_find import UnionFind

__all__ = [
    "Condensation",
    "DiGraph",
    "Node",
    "UnionFind",
    "bfs_layers",
    "component_index",
    "condensation",
    "count_simple_paths",
    "has_unique_simple_paths",
    "is_acyclic",
    "is_strongly_connected",
    "reachable_from",
    "strongly_connected_components",
    "topological_order",
]
