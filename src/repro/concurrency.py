"""Thread-coordination primitives for the concurrent shard executor.

The paper's Youtopia embedding (Section 6.1) is a single-threaded loop;
scaling it to worker-thread shards (see ``repro.core.service``) needs
two primitives the standard library does not provide directly:

* :class:`RWLock` — a readers–writer lock for the shared
  :class:`~repro.db.Database`: conjunctive-query evaluation from many
  shard workers may proceed concurrently, while inserts take the lock
  exclusively.  Read acquisition is **reentrant across call layers on
  the same thread by construction** (a reader is never blocked while
  any reader is active, even itself), which matters because evaluation
  paths nest database reads — ``first_solution`` may call back into
  ``domain()`` to complete an assignment.  Writers wait for all active
  readers; new readers are *not* held back behind waiting writers
  (no writer priority), trading theoretical writer starvation for
  nesting safety.  The online service additionally serializes writes
  behind an evaluation barrier, so writer wait times stay short in
  practice.

* :class:`OwnedLock` — a reentrant lock that remembers its owning
  thread, so a data structure with a strict single-owner discipline
  (each :class:`~repro.core.engine.CoordinationEngine` is owned by one
  shard worker at a time) can *assert* the discipline instead of
  silently corrupting state when violated: see
  :attr:`OwnedLock.held_elsewhere` and
  :class:`~repro.errors.ConcurrencyError`.

* :class:`NullRWLock` — the lock-shaped no-op.  A per-shard database
  *replica* (``repro.db.backend.ReplicatedBackend``) is only ever read
  by its owning shard, so its facade needs no synchronization at all;
  constructing the replica with this stand-in keeps the
  :class:`~repro.db.Database` code identical while making every lock
  acquisition free.

Both primitives are cheap when uncontended (a condition-variable
acquire/release pair), so the serial code paths can share one
implementation with the threaded ones.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional


def _shutdown_grace_default() -> float:
    """Resolve :data:`SHUTDOWN_GRACE` from the environment (>= 0)."""
    raw = os.environ.get("REPRO_SHUTDOWN_GRACE")
    if raw is None:
        return 10.0
    try:
        value = float(raw)
    except ValueError:
        return 10.0
    return max(0.0, value)


#: Default grace period (seconds) every teardown path shares before it
#: escalates: the process executor's stop→terminate→kill ladder, the
#: gateway's shutdown sentinel (drain outbound frames, then close) and
#: the remote shard transport's socket close all budget against this
#: one constant, so "how long may shutdown take" has a single answer.
#: Override with the ``REPRO_SHUTDOWN_GRACE`` environment variable
#: (a float, in seconds; clamped at 0).
SHUTDOWN_GRACE = _shutdown_grace_default()


class Deadline:
    """One shared time budget spread across several sequential waits.

    ``Deadline(t)`` starts a budget of ``t`` seconds (``None`` = no
    limit); every :meth:`remaining` call returns what is left, clamped
    at ``0.0`` — so a sequence of waits each passing ``remaining()``
    blocks at most ~``t`` in total, never a multiple of it.  Used by
    ``ShardedCoordinationService.drain``/``close`` and
    ``ShardWorker.stop``.
    """

    __slots__ = ("_expires_at",)

    def __init__(self, timeout: Optional[float]) -> None:
        self._expires_at = (
            None if timeout is None else time.monotonic() + timeout
        )

    def remaining(self) -> Optional[float]:
        """Seconds left (``None`` for unlimited; never negative)."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        """``True`` once the budget is spent."""
        return self._expires_at is not None and self.remaining() == 0.0


class RWLock:
    """A readers–writer lock; many readers or one writer.

    Usage::

        lock = RWLock()
        with lock.read():
            ...  # shared
        with lock.write():
            ...  # exclusive

    Readers never block while other readers are active, so nested read
    acquisition on one thread cannot deadlock.  Write acquisition is
    reentrant on the owning thread (a writer may re-enter ``write()``
    or take ``read()`` while holding the write lock) — the database
    facade's bulk operations call its single-row operations.
    """

    __slots__ = ("_cond", "_readers", "_writer", "_write_depth")

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer: Optional[int] = None
        self._write_depth = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        """Acquire shared (read) access for the duration of the block."""
        me = threading.get_ident()
        with self._cond:
            # A thread already holding the write lock may read freely.
            if self._writer != me:
                while self._writer is not None:
                    self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Acquire exclusive (write) access for the duration of the block."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
            else:
                # Claim only at full quiescence.  Registering write
                # intent early (classic writer priority) would block
                # *new* readers — including a reader thread re-entering
                # ``read()`` — and deadlock against the readers the
                # writer is waiting out.
                while self._writer is not None or self._readers > 0:
                    self._cond.wait()
                self._writer = me
                self._write_depth = 1
        try:
            yield
        finally:
            with self._cond:
                self._write_depth -= 1
                if self._write_depth == 0:
                    self._writer = None
                    self._cond.notify_all()

    @property
    def read_count(self) -> int:
        """Number of currently active readers (introspection/tests)."""
        return self._readers


class NullRWLock:
    """An :class:`RWLock` stand-in whose acquisitions are no-ops.

    Structures with a single-owner access pattern (per-shard database
    replicas) pay no synchronization cost while keeping the lock-using
    code paths identical.  :attr:`read_count` is always ``0``.
    """

    __slots__ = ()

    @contextmanager
    def read(self) -> Iterator[None]:
        """No-op shared acquisition."""
        yield

    @contextmanager
    def write(self) -> Iterator[None]:
        """No-op exclusive acquisition."""
        yield

    @property
    def read_count(self) -> int:
        """Always ``0`` (introspection parity with :class:`RWLock`)."""
        return 0


class OwnedLock:
    """A reentrant lock that exposes its owning thread.

    ``with lock:`` acquires; :attr:`held_elsewhere` answers "is another
    thread inside a ``with`` block right now?" — the check a
    single-owner structure uses to *detect* concurrent misuse (callers
    that bypass the lock) rather than corrupt state.  The check is
    advisory (a race can slip past it), but it turns the common
    violation into a loud :class:`~repro.errors.ConcurrencyError`
    instead of a heisenbug.
    """

    __slots__ = ("_lock", "_owner", "_depth")

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._owner: Optional[int] = None
        self._depth = 0

    def __enter__(self) -> "OwnedLock":
        self._lock.acquire()
        self._owner = threading.get_ident()
        self._depth += 1
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._depth -= 1
        if self._depth == 0:
            self._owner = None
        self._lock.release()

    @property
    def held_elsewhere(self) -> bool:
        """``True`` when a *different* thread currently holds the lock."""
        owner = self._owner
        return owner is not None and owner != threading.get_ident()

    @property
    def owner(self) -> Optional[int]:
        """Thread ident of the current holder (``None`` when free)."""
        return self._owner
