"""A DPLL SAT solver, used as the oracle that validates the reductions.

The round-trip property the tests assert (Theorem 1, Theorem 2,
Appendix B) is "formula satisfiable ⇔ coordinating set exists"; one
side of that equivalence needs an independent SAT decision procedure.
The solver implements classic DPLL with unit propagation, pure-literal
elimination, and a most-occurrences branching heuristic — ample for the
formula sizes the brute-force entangled solver can match.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from .cnf import CNF, Model


def solve(formula: CNF) -> Optional[Model]:
    """Return a satisfying assignment, or ``None`` if unsatisfiable.

    The returned model is total over the formula's variables (branch
    leftovers default to ``False``).
    """
    assignment = _dpll([list(c) for c in formula.clauses], {})
    if assignment is None:
        return None
    model = {variable: assignment.get(variable, False) for variable in formula.variables()}
    return model


def is_satisfiable(formula: CNF) -> bool:
    """Boolean form of :func:`solve`."""
    return solve(formula) is not None


def _dpll(clauses: List[List[int]], assignment: Dict[int, bool]) -> Optional[Dict[int, bool]]:
    clauses, assignment, conflict = _propagate(clauses, dict(assignment))
    if conflict:
        return None
    if not clauses:
        return assignment

    literal = _branch_literal(clauses)
    for value in (True, False):
        chosen = literal if value else -literal
        trial = _assign(clauses, chosen)
        result = _dpll(trial, {**assignment, abs(literal): chosen > 0})
        if result is not None:
            return result
    return None


def _propagate(
    clauses: List[List[int]], assignment: Dict[int, bool]
) -> Tuple[List[List[int]], Dict[int, bool], bool]:
    """Unit propagation + pure-literal elimination to fixpoint."""
    changed = True
    while changed:
        changed = False
        # Unit clauses.
        for clause in clauses:
            if len(clause) == 1:
                literal = clause[0]
                assignment[abs(literal)] = literal > 0
                clauses = _assign(clauses, literal)
                if any(not c for c in clauses):
                    return clauses, assignment, True
                changed = True
                break
        if changed:
            continue
        # Pure literals.
        counts = Counter(l for clause in clauses for l in clause)
        for literal in list(counts):
            if -literal not in counts:
                assignment[abs(literal)] = literal > 0
                clauses = _assign(clauses, literal)
                changed = True
                break
    conflict = any(not clause for clause in clauses)
    return clauses, assignment, conflict


def _assign(clauses: List[List[int]], literal: int) -> List[List[int]]:
    """Simplify clauses under ``literal = True``."""
    out: List[List[int]] = []
    for clause in clauses:
        if literal in clause:
            continue
        if -literal in clause:
            out.append([l for l in clause if l != -literal])
        else:
            out.append(clause)
    return out


def _branch_literal(clauses: List[List[int]]) -> int:
    """Branch on the variable with the most occurrences."""
    counts: Counter = Counter(abs(l) for clause in clauses for l in clause)
    variable, _ = counts.most_common(1)[0]
    return variable


def brute_force_satisfiable(formula: CNF) -> bool:
    """Exhaustive 2^m check — a cross-validation oracle for the oracle.

    Only used in tests on tiny formulas, guarding against a DPLL bug
    silently invalidating the reduction round-trip suite.
    """
    variables = formula.variables()
    m = len(variables)
    for mask in range(1 << m):
        model = {
            variable: bool(mask >> i & 1) for i, variable in enumerate(variables)
        }
        if formula.evaluate(model):
            return True
    return False
