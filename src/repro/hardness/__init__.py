"""Hardness substrate: CNF formulas, a DPLL oracle, and the paper's
three NP-hardness reductions (Theorem 1, Theorem 2, Appendix B)."""

from . import appendix_b, theorem1, theorem2
from .cnf import CNF, Clause, Model, three_sat
from .dpll import brute_force_satisfiable, is_satisfiable, solve
from .random_sat import random_3sat, random_3sat_at_ratio

__all__ = [
    "CNF",
    "Clause",
    "Model",
    "appendix_b",
    "brute_force_satisfiable",
    "is_satisfiable",
    "random_3sat",
    "random_3sat_at_ratio",
    "solve",
    "theorem1",
    "theorem2",
    "three_sat",
]
