"""Appendix B: hardness of *mixed* coordination attributes.

Section 5's Consistent Coordination Algorithm requires every user to
coordinate on the same attribute set ``A``.  Appendix B shows the
requirement is tight: if some queries coordinate on attribute ``A0``
and others on ``A0, A1`` the problem is NP-hard again.  The reduction
from 3SAT uses a flights relation ``Fl(key, date)`` and a friends
relation ``Fr`` and the following queries (paper's notation):

* ``qC`` — requires all clauses: postconditions ``R(yi, Ci)`` with
  bodies pinning every ``yi`` to a ``1MAR`` flight;
* ``qCj`` — one per clause, wanting *some friend* (= some literal that
  can satisfy the clause, via ``Fr(Cj, f)``) to coordinate;
* ``qXi`` / ``qX*i`` — positive / negative literal queries; the
  positive one lives on ``1MAR`` flights, the negative one on ``2MAR``;
* ``Si`` — the *selection gadget*: its single head can ground to only
  one flight, and since ``qXi`` needs it on ``1MAR`` while ``qX*i``
  needs it on ``2MAR``, at most one of the two literal queries of a
  variable can coordinate — a consistent truth assignment.

The formula is satisfiable iff a coordinating set exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core import CoordinatingSet, EntangledQuery, find_coordinating_set
from ..db import Database, DatabaseBuilder
from ..logic import Atom, Variable
from .cnf import CNF, Model

DATE_TRUE = "1MAR"
DATE_FALSE = "2MAR"


def _literal_user(literal: int) -> str:
    """The user name of a literal query: ``Xi`` or ``X*i``."""
    return f"X{abs(literal)}" if literal > 0 else f"X*{abs(literal)}"


@dataclass(frozen=True)
class AppendixBInstance:
    """The encoded mixed-attribute instance."""

    formula: CNF
    queries: Tuple[EntangledQuery, ...]
    db: Database

    def clause_query_name(self, index: int) -> str:
        """Name of the clause query ``qC{index}``."""
        return f"qC{index}"

    def literal_query_name(self, literal: int) -> str:
        """Name of the literal query for ``literal``."""
        return f"q{_literal_user(literal)}"

    def selector_query_name(self, variable: int) -> str:
        """Name of the selection-gadget query ``S{variable}``."""
        return f"S{variable}"


def build_database(formula: CNF, flights_per_date: int = 1) -> Database:
    """``Fl`` with flights on both dates and ``Fr`` mapping clauses to
    the literals that can satisfy them."""
    builder = DatabaseBuilder()
    builder.table("Fl", ["flightId", "date"], key="flightId")
    rows = []
    next_id = 100
    for date in (DATE_TRUE, DATE_FALSE):
        for _ in range(flights_per_date):
            rows.append((next_id, date))
            next_id += 1
    builder.rows("Fl", rows)
    builder.table("Fr", ["user", "friend"])
    friend_rows = []
    for index, clause in enumerate(formula.clauses):
        for literal in clause:
            friend_rows.append((f"C{index}", _literal_user(literal)))
    builder.rows("Fr", friend_rows)
    return builder.build()


def encode(formula: CNF, flights_per_date: int = 1) -> AppendixBInstance:
    """Build the Appendix B instance for a 3SAT formula."""
    db = build_database(formula, flights_per_date)
    queries: List[EntangledQuery] = []

    # qC: all clauses must hold.
    posts = []
    body: List[Atom] = [Atom("Fl", [Variable("x"), DATE_TRUE])]
    for index in range(formula.clause_count):
        y = Variable(f"y{index}")
        posts.append(Atom("R", [y, f"C{index}"]))
        body.append(Atom("Fl", [y, DATE_TRUE]))
    queries.append(
        EntangledQuery(
            "qC",
            postconditions=posts,
            head=[Atom("R", [Variable("x"), "C"])],
            body=body,
        )
    )

    # qCj: clause j wants one of its "friends" (satisfying literals).
    for index in range(formula.clause_count):
        friend = Variable("f")
        queries.append(
            EntangledQuery(
                f"qC{index}",
                postconditions=[Atom("R", [Variable("y"), friend])],
                head=[Atom("R", [Variable("x"), f"C{index}"])],
                body=[
                    Atom("Fr", [f"C{index}", friend]),
                    Atom("Fl", [Variable("x"), DATE_TRUE]),
                    Atom("Fl", [Variable("y"), Variable("d")]),
                ],
            )
        )

    # Literal queries + selection gadget per variable.
    for variable in formula.variables():
        for literal, date in ((variable, DATE_TRUE), (-variable, DATE_FALSE)):
            user = _literal_user(literal)
            queries.append(
                EntangledQuery(
                    f"q{user}",
                    postconditions=[Atom("R", [Variable("y"), f"S{variable}"])],
                    head=[Atom("R", [Variable("x"), user])],
                    body=[
                        Atom("Fl", [Variable("x"), date]),
                        Atom("Fl", [Variable("y"), date]),
                    ],
                )
            )
        queries.append(
            EntangledQuery(
                f"S{variable}",
                postconditions=[Atom("R", [Variable("y"), "C"])],
                head=[Atom("R", [Variable("x"), f"S{variable}"])],
                body=[
                    Atom("Fl", [Variable("x"), Variable("d")]),
                    Atom("Fl", [Variable("y"), Variable("dprime")]),
                ],
            )
        )
    return AppendixBInstance(formula, tuple(queries), db)


def decode(instance: AppendixBInstance, found: CoordinatingSet) -> Model:
    """``xi`` true iff the positive literal query joined the set."""
    model: Model = {}
    for variable in instance.formula.variables():
        model[variable] = instance.literal_query_name(variable) in found
    return model


def satisfiable_via_entangled(formula: CNF) -> Tuple[bool, Optional[Model]]:
    """Decide SAT by reduction + exponential coordinating-set search."""
    instance = encode(formula)
    found = find_coordinating_set(instance.db, instance.queries)
    if found is None:
        return False, None
    return True, decode(instance, found)
