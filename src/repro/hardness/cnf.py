"""CNF formulas for the hardness reductions of Section 3 / Appendix B.

Literals are non-zero integers in the DIMACS convention: ``+i`` is the
positive literal of variable ``i``, ``-i`` its negation.  The paper's
reductions start from 3SAT, so :class:`CNF` enforces clause width when
asked (``require_width=3``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import FormulaError

Clause = Tuple[int, ...]
Model = Dict[int, bool]


@dataclass(frozen=True)
class CNF:
    """A propositional formula in conjunctive normal form."""

    clauses: Tuple[Clause, ...]

    def __init__(
        self,
        clauses: Iterable[Iterable[int]],
        require_width: Optional[int] = None,
    ) -> None:
        normalised: List[Clause] = []
        for clause in clauses:
            clause = tuple(clause)
            if not clause:
                raise FormulaError("empty clause (trivially unsatisfiable)")
            if any(literal == 0 for literal in clause):
                raise FormulaError("literal 0 is not allowed")
            if require_width is not None and len(clause) != require_width:
                raise FormulaError(
                    f"clause {clause} has width {len(clause)}, "
                    f"expected {require_width}"
                )
            normalised.append(clause)
        if not normalised:
            raise FormulaError("formula must have at least one clause")
        object.__setattr__(self, "clauses", tuple(normalised))

    # ------------------------------------------------------------------
    @property
    def clause_count(self) -> int:
        """Number of clauses ``k``."""
        return len(self.clauses)

    def variables(self) -> Tuple[int, ...]:
        """Sorted distinct variables appearing in the formula."""
        out = sorted({abs(l) for clause in self.clauses for l in clause})
        return tuple(out)

    @property
    def variable_count(self) -> int:
        """Number of distinct variables ``m``."""
        return len(self.variables())

    def literals_of(self, variable: int) -> Tuple[int, ...]:
        """All literal occurrences of a variable across the formula."""
        out: List[int] = []
        for clause in self.clauses:
            for literal in clause:
                if abs(literal) == variable:
                    out.append(literal)
        return tuple(out)

    def clauses_with_literal(self, literal: int) -> Tuple[int, ...]:
        """Indexes of clauses containing exactly ``literal``."""
        return tuple(
            i for i, clause in enumerate(self.clauses) if literal in clause
        )

    # ------------------------------------------------------------------
    def evaluate(self, model: Model) -> bool:
        """Evaluate the formula under a (total or partial) assignment.

        Unassigned variables count as ``False`` — convenient for
        checking decoded assignments that only fix the variables a
        coordinating set pinned down.
        """
        for clause in self.clauses:
            satisfied = False
            for literal in clause:
                value = model.get(abs(literal), False)
                if (literal > 0) == value:
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def __str__(self) -> str:
        def lit(l: int) -> str:
            return f"x{l}" if l > 0 else f"¬x{-l}"

        return " ∧ ".join(
            "(" + " ∨ ".join(lit(l) for l in clause) + ")"
            for clause in self.clauses
        )

    def __len__(self) -> int:
        return len(self.clauses)


def three_sat(clauses: Iterable[Iterable[int]]) -> CNF:
    """Construct a 3SAT formula (every clause exactly three literals)."""
    return CNF(clauses, require_width=3)
