"""Random 3SAT instance generation for reduction round-trip testing.

The uniform random 3SAT model: each clause picks three distinct
variables uniformly and negates each with probability 1/2.  The
clause-to-variable ratio controls the expected satisfiability (the
phase transition sits near 4.26); the round-trip tests sample on both
sides of it so that both "yes" and "no" instances are exercised.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..errors import FormulaError
from .cnf import CNF, three_sat


def random_3sat(
    variables: int,
    clauses: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> CNF:
    """Sample a uniform random 3SAT formula.

    Parameters
    ----------
    variables:
        Number of propositional variables (must be ≥ 3 so a clause can
        pick three distinct ones).
    clauses:
        Number of clauses.
    seed / rng:
        Either a seed for a fresh generator or an existing generator
        (exactly the usual mutually-exclusive convention; ``rng`` wins).
    """
    if variables < 3:
        raise FormulaError("random 3SAT needs at least 3 variables")
    if clauses < 1:
        raise FormulaError("random 3SAT needs at least 1 clause")
    generator = rng if rng is not None else random.Random(seed)
    universe = list(range(1, variables + 1))
    out: List[Tuple[int, int, int]] = []
    for _ in range(clauses):
        picked = generator.sample(universe, 3)
        clause = tuple(
            v if generator.random() < 0.5 else -v for v in picked
        )
        out.append(clause)  # type: ignore[arg-type]
    return three_sat(out)


def random_3sat_at_ratio(
    variables: int,
    ratio: float,
    seed: Optional[int] = None,
) -> CNF:
    """Sample at a given clause/variable ratio (≥ 1 clause)."""
    clauses = max(1, round(variables * ratio))
    return random_3sat(variables, clauses, seed=seed)
