"""Theorem 2: 3SAT ≤p EntangledMax(Q_safe).

Finding a *maximum-size* coordinating set is NP-hard even for safe
query sets.  The reduction (Section 3 + Appendix A of the paper)
encodes a 3SAT formula with ``k`` clauses over ``m`` variables as:

* one value query per variable: ``q(xj) = {} Rj(xj) :- D(xj)``;
* per clause ``C = x_{j1}^{v1} ∨ x_{j2}^{v2} ∨ x_{j3}^{v3}`` a
  three-query *selection gadget* in which the query for each literal is
  constrained so it can only be satisfied if the earlier literals were
  not::

      {R_{j1}(v1)}                          C(1) :- ∅
      {R_{j2}(v2), R_{j1}(¬v1)}             C(1) :- ∅
      {R_{j3}(v3), R_{j2}(¬v2), R_{j1}(¬v1)} C(1) :- ∅

  so at most one of a clause's three queries can join a coordinating
  set, and one can iff the truth assignment satisfies the clause.

The formula is satisfiable iff the maximum coordinating set has size
exactly ``k + m`` (all value queries + one gadget query per clause).
Every query's postconditions target the unique value query of their
variable, so the set is safe — yet the SCC Coordination Algorithm's
candidates ``R(q)`` only reach size 1 + (≤3) here, demonstrating
concretely why its guarantee is restricted to ``{R(q) | q ∈ Q}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import (
    CoordinatingSet,
    EntangledQuery,
    find_maximum_coordinating_set,
)
from ..db import Database, unary_boolean_database
from ..logic import Atom, Variable
from .cnf import CNF, Model


def _value_relation(variable: int) -> str:
    """The answer relation ``R{variable}``."""
    return f"R{variable}"


def _bit(literal: int) -> int:
    """Truth value a literal asserts for its variable (1 pos / 0 neg)."""
    return 1 if literal > 0 else 0


@dataclass(frozen=True)
class Theorem2Instance:
    """The encoded EntangledMax(Q_safe) instance."""

    formula: CNF
    queries: Tuple[EntangledQuery, ...]
    db: Database

    @property
    def target_size(self) -> int:
        """``k + m``: the max coordinating set size iff satisfiable."""
        return self.formula.clause_count + self.formula.variable_count

    def value_query_name(self, variable: int) -> str:
        """Name of the value query of a variable."""
        return f"val-x{variable}"

    def gadget_query_name(self, clause: int, position: int) -> str:
        """Name of a clause gadget query (position 0, 1, or 2)."""
        return f"c{clause}-lit{position}"


def encode(formula: CNF) -> Theorem2Instance:
    """Build the safe EntangledMax instance for a 3SAT formula."""
    db = unary_boolean_database("D")
    queries: List[EntangledQuery] = []

    for variable in formula.variables():
        queries.append(
            EntangledQuery(
                f"val-x{variable}",
                postconditions=[],
                head=[Atom(_value_relation(variable), [Variable("x")])],
                body=[Atom("D", [Variable("x")])],
            )
        )

    for index, clause in enumerate(formula.clauses):
        for position in range(len(clause)):
            posts: List[Atom] = []
            literal = clause[position]
            posts.append(
                Atom(_value_relation(abs(literal)), [_bit(literal)])
            )
            # Earlier literals must be *unsatisfied*: negated values.
            for earlier in range(position - 1, -1, -1):
                prior = clause[earlier]
                posts.append(
                    Atom(_value_relation(abs(prior)), [1 - _bit(prior)])
                )
            queries.append(
                EntangledQuery(
                    f"c{index}-lit{position}",
                    postconditions=posts,
                    head=[Atom(f"C{index}", [1])],
                    body=[],
                )
            )
    return Theorem2Instance(formula, tuple(queries), db)


def decode(instance: Theorem2Instance, found: CoordinatingSet) -> Model:
    """Read the truth assignment off the value queries' groundings."""
    model: Model = {}
    for variable in instance.formula.variables():
        name = instance.value_query_name(variable)
        if name in found:
            model[variable] = bool(found.value_of(name, "x"))
        else:
            model[variable] = False
    return model


def max_size_via_entangled(formula: CNF) -> Tuple[int, Optional[Model]]:
    """Maximum coordinating set size, with a decoded model.

    Exponential (Theorem 2 says it must be); used on small formulas by
    the round-trip tests: ``size == k + m`` iff the DPLL oracle says
    satisfiable, and in the positive case the decoded model satisfies
    the formula.
    """
    instance = encode(formula)
    found = find_maximum_coordinating_set(instance.db, instance.queries)
    if found is None:
        return 0, None
    return found.size, decode(instance, found)


def gadget_membership_counts(
    instance: Theorem2Instance, found: CoordinatingSet
) -> Dict[int, int]:
    """How many of each clause's gadget queries joined the set.

    The gadget guarantees every count is ≤ 1; tests assert it.
    """
    counts = {index: 0 for index in range(instance.formula.clause_count)}
    for index in range(instance.formula.clause_count):
        for position in range(3):
            if instance.gadget_query_name(index, position) in found:
                counts[index] += 1
    return counts
