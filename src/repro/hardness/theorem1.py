"""Theorem 1: 3SAT ≤p Entangled(Q_all) over a two-value database.

The reduction (Section 3 of the paper) encodes a CNF ``C1 ∧ ... ∧ Ck``
over variables ``x1 ... xm`` as entangled queries over a database whose
*only* relation is the unary ``D = {0, 1}`` — so conjunctive-query
satisfiability is trivially polynomial and all hardness lives in the
entanglement:

* ``Clause-Query``: ``{C1(1), ..., Ck(1)} C(1) :- ∅`` — all clauses
  must be satisfied;
* ``xi-Val``: ``{C(1)} Ri(x) :- D(x)`` — variable ``xi`` picks a truth
  value; the postcondition ``C(1)`` ties every variable query to the
  clause query;
* ``xi-True``: ``{Ri(1)} ⋀_{j: xi ∈ Cj} Cj(1) :- ∅`` — making ``xi``
  true satisfies the clauses containing the positive literal;
* ``xi-False``: ``{Ri(0)} ⋀_{j: ¬xi ∈ Cj} Cj(1) :- ∅``.

``C`` is satisfiable iff the instance has a coordinating set
(Appendix A of the paper; asserted by our round-trip tests against the
DPLL oracle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core import CoordinatingSet, EntangledQuery, find_coordinating_set
from ..db import Database, unary_boolean_database
from ..logic import Atom, Variable
from .cnf import CNF, Model

CLAUSE_QUERY_NAME = "clause-query"


def _clause_atom(index: int) -> Atom:
    """The answer atom ``C{index}(1)``."""
    return Atom(f"C{index}", [1])


def _value_relation(variable: int) -> str:
    """The answer relation ``R{variable}`` carrying a truth value."""
    return f"R{variable}"


@dataclass(frozen=True)
class Theorem1Instance:
    """The encoded instance: queries + the two-value database."""

    formula: CNF
    queries: Tuple[EntangledQuery, ...]
    db: Database

    def query_names(self) -> Tuple[str, ...]:
        """Names of all queries in the instance."""
        return tuple(q.name for q in self.queries)


def encode(formula: CNF) -> Theorem1Instance:
    """Build the Entangled(Q_all) instance for a CNF formula."""
    db = unary_boolean_database("D")
    queries: List[EntangledQuery] = []

    clause_posts = [_clause_atom(j) for j in range(formula.clause_count)]
    queries.append(
        EntangledQuery(
            CLAUSE_QUERY_NAME,
            postconditions=clause_posts,
            head=[Atom("C", [1])],
            body=[],
        )
    )

    for variable in formula.variables():
        value_var = Variable("x")
        queries.append(
            EntangledQuery(
                f"x{variable}-val",
                postconditions=[Atom("C", [1])],
                head=[Atom(_value_relation(variable), [value_var])],
                body=[Atom("D", [value_var])],
            )
        )
        positive = formula.clauses_with_literal(variable)
        negative = formula.clauses_with_literal(-variable)
        queries.append(
            EntangledQuery(
                f"x{variable}-true",
                postconditions=[Atom(_value_relation(variable), [1])],
                head=[_clause_atom(j) for j in positive],
                body=[],
            )
        )
        queries.append(
            EntangledQuery(
                f"x{variable}-false",
                postconditions=[Atom(_value_relation(variable), [0])],
                head=[_clause_atom(j) for j in negative],
                body=[],
            )
        )
    return Theorem1Instance(formula, tuple(queries), db)


def decode(instance: Theorem1Instance, found: CoordinatingSet) -> Model:
    """Extract a truth assignment from a coordinating set.

    Per the proof of Theorem 1: ``xi`` is true when ``xi-true`` is in
    the set, false when ``xi-false`` is, and arbitrary (here: false)
    otherwise.
    """
    members = found.member_set()
    model: Model = {}
    for variable in instance.formula.variables():
        if f"x{variable}-true" in members:
            model[variable] = True
        elif f"x{variable}-false" in members:
            model[variable] = False
        else:
            model[variable] = False
    return model


def encode_model(instance: Theorem1Instance, model: Model) -> Tuple[str, ...]:
    """The coordinating set a satisfying model induces (proof, ⇒ side).

    Contains the clause query, every ``xi-val``, and exactly one of
    ``xi-true`` / ``xi-false`` per variable.
    """
    members: List[str] = [CLAUSE_QUERY_NAME]
    for variable in instance.formula.variables():
        members.append(f"x{variable}-val")
        suffix = "true" if model.get(variable, False) else "false"
        members.append(f"x{variable}-{suffix}")
    return tuple(members)


def satisfiable_via_entangled(formula: CNF) -> Tuple[bool, Optional[Model]]:
    """Decide SAT by reduction + (exponential) coordinating-set search.

    Returns (satisfiable, decoded model or ``None``).  Used in the
    round-trip tests; the decoded model is checked to actually satisfy
    the formula.
    """
    instance = encode(formula)
    found = find_coordinating_set(instance.db, instance.queries)
    if found is None:
        return False, None
    return True, decode(instance, found)
