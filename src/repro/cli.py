"""Command-line interface: ``python -m repro``.

Subcommands:

* ``check DB.json QUERIES.eq`` — parse a query program, validate it
  against the database schema, and report the structural properties
  (safety, uniqueness, single-connectedness) that decide which
  algorithm applies;
* ``coordinate DB.json QUERIES.eq [--algorithm scc|gupta|exact]
  [--trace] [--dot FILE] [--stats]`` — run a coordination algorithm and
  print the chosen set with its assignment (``--stats`` appends the
  engine counters: queries issued, index probes, plan-cache hits and
  misses, composite indexes built);
* ``online DB.json STREAM.ops [--shards N] [--workers N]
  [--backend {shared,replicated}] [--executor {thread,process,remote}]
  [--remote-shard HOST:PORT ...] [--durable-dir DIR]
  [--fsync {always,never}] [--snapshot-store {file,sqlite}]
  [--stats]`` —
  replay a query-lifecycle stream through a
  :class:`~repro.core.ShardedCoordinationService` (one operation per
  line: ``submit <query>``, ``batch <query>; <query>; ...``,
  ``retract <name>``, ``insert <relation> <value> ...``,
  ``delete <relation> <value> ...``, ``flush``, ``flush_drain``;
  ``#`` comments).
  ``--workers N`` runs N shards on worker threads behind the
  concurrent executor; the replay stays deterministic because each
  line drains before the next is reported.  ``--backend replicated``
  evaluates each shard against a private lock-free database replica
  with versioned invalidation (identical output, no cross-shard
  locking during evaluation).  ``--executor process`` hosts each shard
  in a worker *process* with its replica synced over a framed pipe
  protocol — identical output, true multi-core evaluation.
  ``--executor remote`` places each shard on an already-running shard
  host (one ``--remote-shard HOST:PORT`` per shard, see
  ``shard-host`` below); a host that dies mid-run fails over: its
  components re-home onto a survivor and coordination continues;
* ``scenario [NAME] [--list] [--scale N] [--seed S] [--out PREFIX]``
  — the scenario catalog (:mod:`repro.scenarios`): list the named
  workloads, run one in-process through the sharded service (with the
  same ``--shards/--workers/--backend/--executor`` knobs as ``online``
  plus the ablation toggles ``--no-plan-cache`` and
  ``--no-composite-indexes``), or export it with ``--out`` as a
  database JSON + operations stream replayable by ``online``;
  ``--durable-dir DIR`` makes the service durable: the replay is
  write-ahead logged (with periodic snapshot + compaction
  checkpoints) into DIR, and a restart pointing at the same DIR
  first recovers everything a previous run — even one killed with
  ``kill -9`` — made durable (see DESIGN.md §11).
  ``--batch N`` coalesces consecutive submit lines into batched
  admission passes (``submit_many``); the summary line reports the
  replay's ops/s either way.  ``--serve HOST:PORT`` keeps the service
  alive after the replay and serves it over the async gateway
  (:mod:`repro.core.gateway`) until interrupted or — with
  ``--allow-remote-shutdown`` — remotely stopped;
* ``client HOST:PORT OP [...]`` — drive a running gateway: ``ping``,
  ``submit '<query>' [--wait]``, ``retract NAME``,
  ``insert REL V...``, ``delete REL V...``, ``flush``/``flush-drain``,
  ``pending``, ``status NAME``, ``stats``, ``shutdown``;
* ``shard-host HOST:PORT`` — run one remote shard host
  (:class:`~repro.core.ShardHost`): bind, print the bound address,
  and serve shard sessions until interrupted.  Services connect with
  ``online --executor remote --remote-shard HOST:PORT``;
* ``demo`` — the Gwyneth/Chris example end to end, no files needed.

Query programs use the textual syntax of :mod:`repro.core.parser`
(``;``-separated, ``name:`` prefixes optional); databases are the JSON
spec format of :mod:`repro.db.io`.
"""

from __future__ import annotations

import argparse
import shlex
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

from .core import (
    CoordinationGraph,
    QueryState,
    ServiceConfig,
    ShardedCoordinationService,
    Trace,
    coordination_graph_dot,
    find_coordinating_set,
    gupta_coordinate,
    is_single_connected,
    is_unique,
    parse_queries,
    parse_query,
    render_trace,
    safety_report,
    scc_coordinate,
    validate_query_set,
    verify_coordinating_set,
)
from .db import load_database
from .errors import ReproError


def _print_engine_stats(db) -> None:
    """The ``--stats`` report: the database engine's counters.

    Counters accrue on the instance that evaluated — for ``online``
    runs on replicated/process backends the evaluation happens on
    per-shard replicas, so the authoritative store reports admission
    and insert traffic while replicas keep their own tallies.
    """
    s = db.stats
    print("engine stats:")
    print(f"  queries issued:          {s.queries_issued}")
    print(f"  tuples examined:         {s.tuples_examined}")
    print(f"  index probes:            {s.index_probes}")
    print(f"  plan cache:              {s.plan_cache_hits} hits / "
          f"{s.plan_cache_misses} misses")
    print(f"  composite indexes built: {s.composite_indexes_built}")
    print(f"  inserts:                 {s.inserts}")


def _load_inputs(db_path: str, queries_path: str):
    db = load_database(db_path)
    source = Path(queries_path).read_text(encoding="utf-8")
    queries = parse_queries(source)
    validate_query_set(queries, db.schema)
    return db, queries


def _cmd_check(args: argparse.Namespace) -> int:
    db, queries = _load_inputs(args.database, args.queries)
    graph = CoordinationGraph.build(queries)
    report = safety_report(graph)
    print(f"queries: {len(queries)}")
    print(f"coordination graph: {graph.graph.node_count()} nodes, "
          f"{graph.graph.edge_count()} edges")
    print(f"safe: {report.is_safe}")
    if not report.is_safe:
        print(f"  unsafe queries: {', '.join(report.unsafe_queries())}")
    print(f"unique: {is_unique(graph)}")
    print(f"single-connected: {is_single_connected(graph)}")
    if report.is_safe and is_unique(graph):
        print("=> the Gupta et al. baseline applies (one combined query)")
    elif report.is_safe:
        print("=> the SCC Coordination Algorithm applies (Section 4)")
    else:
        print(
            "=> unsafe: use the Consistent Coordination Algorithm if all "
            "queries share coordination attributes (Section 5), or the "
            "exponential exact solver"
        )
    return 0


def _cmd_coordinate(args: argparse.Namespace) -> int:
    db, queries = _load_inputs(args.database, args.queries)
    trace: Optional[Trace] = Trace() if args.trace else None

    if args.algorithm == "gupta":
        result = gupta_coordinate(db, queries)
        chosen = result.chosen
    elif args.algorithm == "exact":
        chosen = find_coordinating_set(db, queries)
    else:
        result = scc_coordinate(db, queries, trace=trace)
        chosen = result.chosen

    if args.dot:
        graph = CoordinationGraph.build(queries)
        Path(args.dot).write_text(
            coordination_graph_dot(graph), encoding="utf-8"
        )
        print(f"coordination graph written to {args.dot}")

    if trace is not None:
        print(render_trace(trace))
        print()

    if chosen is None:
        print("no coordinating set exists")
        if args.stats:
            _print_engine_stats(db)
        return 1
    print(f"coordinating set ({chosen.size} queries): {chosen}")
    for variable in sorted(chosen.assignment, key=str):
        print(f"  {variable} = {chosen.assignment[variable]!r}")
    verification = verify_coordinating_set(
        db, queries, chosen.members, chosen.assignment
    )
    print(f"Definition 1 check: {'OK' if verification.ok else verification.reason}")
    if args.stats:
        _print_engine_stats(db)
    return 0


def _parse_stream_value(token: str):
    """An ``insert`` operand: Python literal if it parses, else a string."""
    import ast

    try:
        return ast.literal_eval(token)
    except (ValueError, SyntaxError):
        return token


def _parse_address(spec: str) -> Tuple[str, int]:
    """``HOST:PORT`` (IPv6 hosts may be bracketed) for serve/client."""
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ReproError(f"expected HOST:PORT, got {spec!r}")
    return host.strip("[]") or "127.0.0.1", int(port)


def _cmd_online(args: argparse.Namespace) -> int:
    """Replay a query-lifecycle stream through the sharded service."""
    if args.stream is None and args.serve is None:
        raise ReproError("online needs a stream file, --serve, or both")
    db = load_database(args.database)
    workers = args.workers
    # Read the stream before spawning any worker threads: an unreadable
    # path must fail before there is anything to leak.
    source = (
        ""
        if args.stream is None
        else Path(args.stream).read_text(encoding="utf-8")
    )
    durability = None
    if args.durable_dir is not None:
        from .db import DurabilityConfig

        durability = DurabilityConfig(
            dir=Path(args.durable_dir),
            fsync=args.fsync,
            snapshot_store=args.snapshot_store,
        )
    remote_shards = tuple(
        _parse_address(spec) for spec in (args.remote_shard or ())
    )
    if args.executor == "remote" and not remote_shards:
        raise ReproError(
            "--executor remote needs at least one --remote-shard HOST:PORT"
        )
    config = ServiceConfig(
        shards=len(remote_shards) if remote_shards else args.shards,
        workers=workers,
        backend=args.backend,
        executor=args.executor,
        durability=durability,
        remote_shards=remote_shards,
    )
    service = ShardedCoordinationService(db, config)
    if service.recovered is not None and not service.recovered.empty:
        state = service.recovered
        print(
            f"recovered from {args.durable_dir}: snapshot generation "
            f"{state.generation}, {len(state.pending)} pending re-admitted, "
            f"{len(state.records)} WAL records replayed"
            + (", torn final record discarded"
               if state.torn_record_discarded else "")
        )

    # All satisfactions are reported through the resolution callback:
    # an arrival can retire a set it does not belong to (a previously
    # stalled component whose rows appeared), which the submit branch
    # alone would silently drop.  With workers, callbacks arrive on the
    # dispatcher thread; settle() drains before each report so the
    # printed replay is deterministic either way.
    resolutions: List = []
    service.on_resolved(resolutions.append)

    def settle() -> None:
        if workers is not None:
            service.drain()

    def drain_satisfied(prefix: str) -> int:
        reported = 0
        seen = set()
        for handle in resolutions:
            if handle.state is QueryState.SATISFIED:
                members = handle.satisfied_with
                if members not in seen:
                    seen.add(members)
                    print(f"{prefix}: satisfied {{{', '.join(sorted(members))}}}")
                    reported += 1
        resolutions.clear()
        return reported

    # Consecutive submits can coalesce into one submit_many_nowait
    # admission pass (--batch N); buffered entries flush before any
    # other operation so the replay stays stream-ordered.
    batch_size = max(1, args.batch)
    batched: List[Tuple[str, object]] = []

    def flush_batch() -> None:
        if not batched:
            return
        entries, batched[:] = list(batched), []
        handles = service.submit_many_nowait([q for _, q in entries])
        settle()
        for (prefix, query), handle in zip(entries, handles):
            if handle.state is QueryState.REJECTED:
                print(f"{prefix} {query.name}: rejected ({handle.reason})")
            elif handle.is_pending:
                shard = service.shard_of(query.name)
                print(f"{prefix} {query.name}: pending (shard {shard})")
            drain_satisfied(f"{prefix} {query.name}")

    operations = 0
    started = time.perf_counter()
    try:
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            op, _, rest = line.partition(" ")
            rest = rest.strip()
            known = (
                "submit", "batch", "retract", "insert", "delete",
                "flush", "flush_drain",
            )
            if op not in known:
                print(
                    f"error: line {lineno}: unknown operation {op!r} "
                    f"(expected {'/'.join(known)})",
                    file=sys.stderr,
                )
                return 2
            prefix = f"[{lineno:3d}] {op}"
            operations += 1
            try:
                if op == "submit":
                    query = parse_query(rest.rstrip(";"))
                    query.validate(db.schema)
                    if batch_size > 1:
                        batched.append((prefix, query))
                        if len(batched) >= batch_size:
                            flush_batch()
                        continue
                    # Admission is synchronous (routing, safety — and
                    # the duplicate/unsafe rejections below); only the
                    # evaluation overlaps, and settle() drains it before
                    # the line is reported, keeping the replay output
                    # deterministic.
                    handle = service.submit_nowait(query)
                    settle()
                    if handle.is_pending:
                        shard = service.shard_of(query.name)
                        print(f"{prefix} {query.name}: pending (shard {shard})")
                    drain_satisfied(f"{prefix} {query.name}")
                elif op == "batch":
                    # One admission pass for a ';'-separated query list
                    # (submit_many): queries in the same batch see each
                    # other before evaluation, so postcondition-free
                    # queries can coordinate instead of retiring alone.
                    flush_batch()
                    queries = parse_queries(rest)
                    for query in queries:
                        query.validate(db.schema)
                    handles = service.submit_many_nowait(queries)
                    settle()
                    for query, handle in zip(queries, handles):
                        if handle.state is QueryState.REJECTED:
                            print(
                                f"{prefix} {query.name}: rejected "
                                f"({handle.reason})"
                            )
                        elif handle.is_pending:
                            shard = service.shard_of(query.name)
                            print(
                                f"{prefix} {query.name}: pending "
                                f"(shard {shard})"
                            )
                    drain_satisfied(prefix)
                elif op == "retract":
                    flush_batch()
                    service.retract(rest)
                    settle()
                    print(f"{prefix} {rest}: retracted")
                    resolutions.clear()  # the retraction itself
                elif op == "insert":
                    flush_batch()
                    tokens = shlex.split(rest)
                    if len(tokens) < 2:
                        raise ReproError(
                            f"line {lineno}: insert needs a relation and values"
                        )
                    # service.insert barriers behind in-flight evaluations
                    # (worker mode), keeping the replay stream-ordered.
                    service.insert(
                        tokens[0], [_parse_stream_value(t) for t in tokens[1:]]
                    )
                    print(f"{prefix} {tokens[0]}: ok")
                elif op == "delete":
                    flush_batch()
                    tokens = shlex.split(rest)
                    if len(tokens) < 2:
                        raise ReproError(
                            f"line {lineno}: delete needs a relation and values"
                        )
                    deleted = service.delete(
                        tokens[0], [_parse_stream_value(t) for t in tokens[1:]]
                    )
                    print(
                        f"{prefix} {tokens[0]}: "
                        f"{'ok' if deleted else 'absent'}"
                    )
                elif op == "flush":
                    flush_batch()
                    service.flush()
                    settle()
                    if not drain_satisfied(prefix):
                        print(f"{prefix}: nothing coordinated")
                elif op == "flush_drain":
                    # Flush to fixpoint: placement-independent, the
                    # form scenario streams use (see repro.scenarios).
                    flush_batch()
                    service.flush_drain()
                    settle()
                    if not drain_satisfied(prefix):
                        print(f"{prefix}: nothing coordinated")
            except ReproError as error:
                # Per-event rejections (unsafe arrivals, unknown retracts,
                # parse errors) are part of a replay's normal output.
                print(f"{prefix}: rejected ({error})")
                resolutions.clear()

        flush_batch()
        settle()
        elapsed = time.perf_counter() - started
        rate = operations / elapsed if elapsed > 0 else float("inf")
        loads = ", ".join(str(n) for n in service.shard_pending_counts())
        mode = "" if workers is None else f", {workers} workers"
        if args.stream is not None:
            print(
                f"done: {len(service.pending())} pending "
                f"[per shard: {loads}], {service.migrations} migrations{mode} "
                f"({operations} ops, {rate:.0f} ops/s)"
            )
        if args.stats:
            _print_engine_stats(db)
        if args.serve is not None:
            from .core import Gateway

            host, port = _parse_address(args.serve)
            gateway = Gateway(
                service,
                host=host,
                port=port,
                allow_shutdown=args.allow_remote_shutdown,
            )
            bound_host, bound_port = gateway.start()
            print(f"serving on {bound_host}:{bound_port}", flush=True)
            try:
                gateway.wait()
                print("gateway stopped")
            except KeyboardInterrupt:
                print("interrupted")
            finally:
                gateway.close()
        return 0
    finally:
        # Always stop the worker/dispatcher threads, also when an
        # unexpected error escapes the replay (repeated main() calls
        # from tests/libraries must not accumulate leaked threads).
        # Deferred worker errors surface only when not already
        # unwinding an exception, which close() must not mask.
        service.close(raise_deferred=sys.exc_info()[0] is None)


def _cmd_client(args: argparse.Namespace) -> int:
    """Drive a running gateway (``online --serve``) over the wire."""
    from .core import GatewayClient

    host, port = _parse_address(args.address)
    with GatewayClient(host, port, timeout=args.timeout) as client:
        op = args.op
        operands = args.operands
        if op == "ping":
            client.ping()
            print("pong")
        elif op == "submit":
            if not operands:
                raise ReproError("client submit needs a query string")
            query = parse_query(" ".join(operands).rstrip(";"))
            reply = client.submit(query)
            print(f"{reply['name']}: {reply['state']}")
            if args.wait and reply["state"] == "pending":
                record = client.wait_resolved(reply["name"])
                members = record.get("satisfied_with")
                detail = (
                    f" with {{{', '.join(sorted(members))}}}" if members else ""
                )
                print(f"{record['query']}: {record['state']}{detail}")
        elif op == "retract":
            if len(operands) != 1:
                raise ReproError("client retract needs exactly one query name")
            reply = client.retract(operands[0])
            print(f"{operands[0]}: {reply['state']}")
        elif op == "insert":
            if len(operands) < 2:
                raise ReproError("client insert needs a relation and values")
            inserted = client.insert(
                operands[0], [_parse_stream_value(t) for t in operands[1:]]
            )
            print("inserted" if inserted else "duplicate")
        elif op == "delete":
            if len(operands) < 2:
                raise ReproError("client delete needs a relation and values")
            deleted = client.delete(
                operands[0], [_parse_stream_value(t) for t in operands[1:]]
            )
            print("deleted" if deleted else "absent")
        elif op in ("flush", "flush-drain"):
            results = client.flush() if op == "flush" else client.flush_drain()
            retired = [r for r in results if r is not None and r.chosen]
            for result in retired:
                print(f"satisfied {{{', '.join(sorted(result.chosen.members))}}}")
            if not retired:
                print("nothing coordinated")
        elif op == "pending":
            names = client.pending()
            print(f"{len(names)} pending: {', '.join(names)}")
        elif op == "status":
            if len(operands) != 1:
                raise ReproError("client status needs exactly one query name")
            print(client.status(operands[0]) or "unknown")
        elif op == "stats":
            stats = client.stats()
            print(f"pending per shard: {stats['pending_per_shard']}")
            print(f"cost scores:       {stats['cost_scores']}")
            print(f"migrations:        {stats['migrations']}")
            print(f"rebalances:        {stats['rebalances']}")
        elif op == "shutdown":
            client.shutdown()
            print("shutdown requested")
        else:  # pragma: no cover - argparse choices guard this
            raise ReproError(f"unknown client op {op!r}")
    return 0


def _cmd_shard_host(args: argparse.Namespace) -> int:
    """Run one remote shard host until interrupted."""
    from .core import ShardHost

    host, port = _parse_address(args.address)
    shard_host = ShardHost(
        host=host, port=port, worker_threads=args.worker_threads
    )
    bound_host, bound_port = shard_host.start()
    # The bound address is the machine-readable contract: port 0 asks
    # the OS for a free port, and whoever spawned this process reads
    # the line to learn where to point --remote-shard.
    print(f"shard host on {bound_host}:{bound_port}", flush=True)
    try:
        shard_host.wait()
        print("shard host stopped")
    except KeyboardInterrupt:
        print("interrupted")
    finally:
        shard_host.close()
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    """Generate, run, or export a catalog scenario (repro.scenarios)."""
    from .scenarios import SCENARIOS, drive, get_scenario, write_scenario

    if args.list or args.name is None:
        width = max(len(s.name) for s in SCENARIOS)
        for scenario in SCENARIOS:
            print(
                f"{scenario.name:<{width}}  {scenario.title}\n"
                f"{'':<{width}}  stresses {scenario.stresses} "
                f"(default scale {scenario.default_scale})"
            )
        return 0
    try:
        scenario = get_scenario(args.name)
    except KeyError as error:
        raise ReproError(str(error.args[0])) from None
    scale = args.scale if args.scale is not None else scenario.default_scale
    db, events = scenario.build(scale, args.seed)
    if args.out is not None:
        db_path, ops_path = write_scenario(db, events, args.out)
        print(
            f"{scenario.name} (scale {scale}, seed {args.seed}): "
            f"wrote {db_path} and {ops_path}\n"
            f"replay: python -m repro online {db_path} {ops_path}"
        )
        return 0
    config = ServiceConfig(
        shards=args.shards,
        workers=args.workers,
        backend=args.backend,
        executor=args.executor,
        plan_cache=False if args.no_plan_cache else None,
        composite_indexes=False if args.no_composite_indexes else None,
    )
    service = ShardedCoordinationService(db, config)
    try:
        run = drive(service, events)
    finally:
        service.close(raise_deferred=sys.exc_info()[0] is None)
    rate = run.operations / run.seconds if run.seconds > 0 else float("inf")
    print(
        f"{scenario.name} (scale {scale}, seed {args.seed}): "
        f"{run.operations} events, {run.resolved} resolved, "
        f"{run.rejected} rejected, {run.pending} pending, "
        f"{run.migrations} migrations "
        f"({run.seconds:.3f}s, {rate:.0f} events/s)"
    )
    if args.stats:
        _print_engine_stats(db)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .db import DatabaseBuilder

    db = (
        DatabaseBuilder()
        .table("Flights", ["flightId", "destination"], key="flightId")
        .rows("Flights", [(101, "Zurich")])
        .build()
    )
    queries = parse_queries(
        """
        gwyneth: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, 'Zurich');
        chris:   {} R(Chris, y) :- Flights(y, 'Zurich');
        """
    )
    result = scc_coordinate(db, queries)
    assert result.chosen is not None
    print("demo: Gwyneth flies with Chris (Section 2.1)")
    print(f"coordinating set: {result.chosen}")
    print(f"shared flight: {result.chosen.value_of('gwyneth', 'x')}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Entangled-query coordination (VLDB 2012 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    check = subparsers.add_parser(
        "check", help="validate a query program and report its properties"
    )
    check.add_argument("database", help="database JSON spec")
    check.add_argument("queries", help="entangled-query program file")
    check.set_defaults(func=_cmd_check)

    coordinate = subparsers.add_parser(
        "coordinate", help="find a coordinating set"
    )
    coordinate.add_argument("database", help="database JSON spec")
    coordinate.add_argument("queries", help="entangled-query program file")
    coordinate.add_argument(
        "--algorithm",
        choices=["scc", "gupta", "exact"],
        default="scc",
        help="which solver to run (default: scc)",
    )
    coordinate.add_argument(
        "--trace", action="store_true", help="print the execution narration"
    )
    coordinate.add_argument(
        "--dot", metavar="FILE", help="also write the coordination graph as dot"
    )
    coordinate.add_argument(
        "--stats",
        action="store_true",
        help="print the database engine counters (queries, index probes, "
        "plan cache, composite indexes) after the run",
    )
    coordinate.set_defaults(func=_cmd_coordinate)

    online = subparsers.add_parser(
        "online",
        help="replay a query-lifecycle stream through the sharded service",
    )
    online.add_argument("database", help="database JSON spec")
    online.add_argument(
        "stream",
        nargs="?",
        default=None,
        help="operations file: submit/retract/insert/flush, one per line "
        "(optional with --serve: replayed before serving)",
    )
    online.add_argument(
        "--shards",
        type=int,
        default=2,
        help="number of engine shards (default: 2)",
    )
    online.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run N shards on worker threads (concurrent executor; "
        "overrides --shards)",
    )
    online.add_argument(
        "--backend",
        choices=["shared", "replicated"],
        default="shared",
        help="storage backend: one locked shared store, or per-shard "
        "lock-free replicas with versioned invalidation (default: shared; "
        "thread executor only — process shards always use replicas)",
    )
    online.add_argument(
        "--executor",
        choices=["thread", "process", "remote"],
        default="thread",
        help="what shards run on: in-process engines (thread), worker "
        "processes with wire-synced replicas (process), or remote shard "
        "hosts over TCP (remote, with --remote-shard; default: thread)",
    )
    online.add_argument(
        "--remote-shard",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="with --executor remote: a shard host address (repeat once "
        "per shard; the shard count is the number of addresses)",
    )
    online.add_argument(
        "--stats",
        action="store_true",
        help="print the authoritative store's engine counters after the "
        "replay (replicated/process evaluation tallies on the replicas)",
    )
    online.add_argument(
        "--durable-dir",
        default=None,
        metavar="DIR",
        help="persist the service to DIR (write-ahead log + snapshots) "
        "and recover whatever a previous run left there before "
        "replaying — survives kill -9 (default: in-memory only)",
    )
    online.add_argument(
        "--fsync",
        choices=["always", "never"],
        default="always",
        help="WAL fsync policy with --durable-dir: every append "
        "(survives power loss) or never (still survives process "
        "kill -9; default: always)",
    )
    online.add_argument(
        "--snapshot-store",
        choices=["file", "sqlite"],
        default="file",
        help="snapshot storage with --durable-dir: one file per "
        "generation, or a WAL-journaled SQLite table (default: file)",
    )
    online.add_argument(
        "--batch",
        type=int,
        default=1,
        metavar="N",
        help="coalesce up to N consecutive submit lines into one batched "
        "admission pass (submit_many; default: 1 = per-line replay with "
        "deterministic per-line output)",
    )
    online.add_argument(
        "--serve",
        default=None,
        metavar="HOST:PORT",
        help="after the replay, serve the service over the async gateway "
        "on HOST:PORT (port 0 picks a free port) until interrupted",
    )
    online.add_argument(
        "--allow-remote-shutdown",
        action="store_true",
        help="with --serve: let gateway clients stop the server via the "
        "shutdown op (off by default)",
    )
    online.set_defaults(func=_cmd_online)

    client = subparsers.add_parser(
        "client",
        help="drive a running gateway (online --serve) over the wire",
    )
    client.add_argument("address", help="gateway address as HOST:PORT")
    client.add_argument(
        "op",
        choices=[
            "ping",
            "submit",
            "retract",
            "insert",
            "delete",
            "flush",
            "flush-drain",
            "pending",
            "status",
            "stats",
            "shutdown",
        ],
        help="operation to run against the gateway",
    )
    client.add_argument(
        "operands",
        nargs="*",
        help="operation operands (query text, name, or relation + values)",
    )
    client.add_argument(
        "--wait",
        action="store_true",
        help="with submit: block until the resolution record streams back",
    )
    client.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="socket timeout for gateway requests (default: 30)",
    )
    client.set_defaults(func=_cmd_client)

    shard_host = subparsers.add_parser(
        "shard-host",
        help="run one remote shard host (serves --executor remote shards)",
    )
    shard_host.add_argument(
        "address",
        help="bind address as HOST:PORT (port 0 picks a free port; the "
        "bound address is printed)",
    )
    shard_host.add_argument(
        "--worker-threads",
        type=int,
        default=8,
        metavar="N",
        help="size of the host's evaluation thread pool (default: 8)",
    )
    shard_host.set_defaults(func=_cmd_shard_host)

    scenario = subparsers.add_parser(
        "scenario",
        help="generate, run, or export a catalog scenario (repro.scenarios)",
    )
    scenario.add_argument(
        "name",
        nargs="?",
        default=None,
        help="scenario name (omit or use --list to see the catalog)",
    )
    scenario.add_argument(
        "--list", action="store_true", help="print the scenario catalog"
    )
    scenario.add_argument(
        "--scale",
        type=int,
        default=None,
        metavar="N",
        help="workload size (default: the scenario's default_scale)",
    )
    scenario.add_argument(
        "--seed",
        type=int,
        default=2012,
        metavar="S",
        help="generator seed; same seed, same stream (default: 2012)",
    )
    scenario.add_argument(
        "--out",
        default=None,
        metavar="PREFIX",
        help="instead of running, write PREFIX.db.json + PREFIX.ops "
        "for later replay with the online subcommand",
    )
    scenario.add_argument(
        "--shards", type=int, default=4, help="engine shards (default: 4)"
    )
    scenario.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run N shards on worker threads (default: serial)",
    )
    scenario.add_argument(
        "--backend",
        choices=["shared", "replicated"],
        default="shared",
        help="storage backend (default: shared)",
    )
    scenario.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="shard executor (default: thread)",
    )
    scenario.add_argument(
        "--no-plan-cache",
        action="store_true",
        help="ablate the query-plan cache (recompile every evaluation)",
    )
    scenario.add_argument(
        "--no-composite-indexes",
        action="store_true",
        help="ablate composite indexes (single-column probe + residual "
        "filter on multi-column lookups)",
    )
    scenario.add_argument(
        "--stats",
        action="store_true",
        help="print the engine counters after the run",
    )
    scenario.set_defaults(func=_cmd_scenario)

    demo = subparsers.add_parser("demo", help="run the built-in example")
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
