"""Unification of atoms and atom lists.

The paper's Section 2.3 defines two atoms as *unifiable* when they are
over the same relation and "do not contain different constants for the
same attribute value".  We implement full syntactic unification (via
:class:`~repro.logic.substitution.Substitution`), which refines the
paper's position-wise test: it additionally rejects pairs such as
``R(x, x)`` against ``R(1, 2)`` where repeated variables force a clash.
For every atom shape that appears in the paper the two notions coincide.

Queries own their variables, so before two queries' atoms are compared
they must be *standardised apart* — each query's variables moved into a
unique namespace (:func:`standardize_apart`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .atoms import Atom
from .substitution import Substitution


def unify_atoms(
    left: Atom,
    right: Atom,
    substitution: Optional[Substitution] = None,
) -> Optional[Substitution]:
    """Unify two atoms, optionally extending an existing substitution.

    Returns the extended substitution on success and ``None`` on failure.
    When ``substitution`` is provided it is *not* mutated on failure; a
    copy is extended and returned on success.
    """
    if left.relation != right.relation or left.arity != right.arity:
        return None
    sub = Substitution() if substitution is None else substitution.copy()
    for lt, rt in zip(left.terms, right.terms):
        if not sub.unify_terms(lt, rt):
            return None
    return sub


def unifiable(left: Atom, right: Atom) -> bool:
    """Return ``True`` if the two atoms unify (fresh substitution)."""
    return unify_atoms(left, right) is not None


def unify_atom_lists(
    pairs: Iterable[Tuple[Atom, Atom]],
    substitution: Optional[Substitution] = None,
) -> Optional[Substitution]:
    """Unify every pair of atoms simultaneously.

    This computes the most general unifier of the pair list: the least
    restrictive substitution under which each left atom equals its right
    counterpart.  Returns ``None`` if any pair fails.
    """
    sub = Substitution() if substitution is None else substitution.copy()
    for left, right in pairs:
        if left.relation != right.relation or left.arity != right.arity:
            return None
        for lt, rt in zip(left.terms, right.terms):
            if not sub.unify_terms(lt, rt):
                return None
    return sub


def standardize_apart(
    atom_lists: Sequence[Sequence[Atom]],
    namespaces: Optional[Sequence[str]] = None,
) -> List[List[Atom]]:
    """Rename each atom list's variables into its own namespace.

    ``namespaces`` defaults to ``"q0", "q1", ...``.  Returns new atom
    lists; inputs are never mutated.
    """
    if namespaces is None:
        namespaces = [f"q{i}" for i in range(len(atom_lists))]
    if len(namespaces) != len(atom_lists):
        raise ValueError("one namespace required per atom list")
    return [
        [atom.rename(namespace) for atom in atoms]
        for atoms, namespace in zip(atom_lists, namespaces)
    ]


def apply_substitution(atom: Atom, substitution: Substitution) -> Atom:
    """Rewrite an atom's terms to their current representatives.

    Variables bound to constants become those constants; variables merged
    into a class are replaced by the class root, making forced equalities
    syntactically visible.
    """
    return Atom(atom.relation, tuple(substitution.resolve(t) for t in atom.terms))


def apply_substitution_all(
    atoms: Iterable[Atom], substitution: Substitution
) -> List[Atom]:
    """Apply :func:`apply_substitution` to every atom in a list."""
    return [apply_substitution(atom, substitution) for atom in atoms]
