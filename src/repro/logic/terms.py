"""Terms of the logic substrate: variables and constants.

Entangled queries (Section 2.1 of the paper) are built from atoms over
two kinds of terms:

* :class:`Variable` — a named placeholder, local to the query it appears
  in.  Two queries using the same variable name refer to *different*
  variables; callers standardise queries apart (see
  :func:`repro.logic.unify.standardize_apart`) before unifying them.
* :class:`Constant` — a database value.  Values are ordinary hashable
  Python objects (strings, ints, ...).

Both classes are immutable, hashable value objects so they can be used
freely as dictionary keys and set members.  They are hand-written
(rather than dataclasses) with precomputed hashes: terms are the
hottest objects in the evaluator and unifier, and a cached hash is a
measurable win on the paper-scale benchmarks.
"""

from __future__ import annotations

from typing import Hashable, Union


class Variable:
    """A logic variable, identified by name and namespace.

    The ``namespace`` distinguishes variables of the same name that
    belong to different queries after standardising apart.  The default
    namespace is the empty string, so ``Variable("x")`` is plain ``x``.
    """

    __slots__ = ("name", "namespace", "_hash")

    def __init__(self, name: str, namespace: str = "") -> None:
        if not name:
            raise ValueError("variable name must be non-empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "namespace", namespace)
        object.__setattr__(self, "_hash", hash((name, namespace, "var")))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Variable is immutable")

    def qualified(self, namespace: str) -> "Variable":
        """Return a copy of this variable inside the given namespace."""
        return Variable(self.name, namespace)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return (
            isinstance(other, Variable)
            and self.name == other.name
            and self.namespace == other.namespace
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if self.namespace:
            return f"{self.namespace}.{self.name}"
        return self.name

    def __repr__(self) -> str:
        return f"Variable({str(self)!r})"


class Constant:
    """A constant term wrapping a hashable database value."""

    __slots__ = ("value", "_hash")

    def __init__(self, value: Hashable) -> None:
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("const", value)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Constant is immutable")

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


Term = Union[Variable, Constant]
"""A term is either a :class:`Variable` or a :class:`Constant`."""


def is_variable(term: Term) -> bool:
    """Return ``True`` if ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return ``True`` if ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)


def var(name: str, namespace: str = "") -> Variable:
    """Shorthand constructor for :class:`Variable`."""
    return Variable(name, namespace)


def const(value: Hashable) -> Constant:
    """Shorthand constructor for :class:`Constant`."""
    return Constant(value)


def as_term(value: object) -> Term:
    """Coerce ``value`` into a term.

    Existing terms pass through unchanged; any other (hashable) value is
    wrapped in a :class:`Constant`.  This keeps user-facing constructors
    convenient: ``Atom("F", [var("x"), "Zurich"])`` works directly.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    return Constant(value)
