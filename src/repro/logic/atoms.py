"""Atoms: a relation symbol applied to a tuple of terms.

Atoms appear in three places in an entangled query ``{P} H :- B``: the
postconditions ``P``, the head ``H`` (both over *answer* relations), and
the body ``B`` (over *database* relations).  The same class represents
all three; the distinction lives in the query and schema layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence, Tuple

from ..errors import LogicError
from .terms import Constant, Term, Variable, as_term


@dataclass(frozen=True)
class Atom:
    """An atom ``relation(t1, ..., tn)`` over terms.

    ``terms`` accepts raw values for convenience; anything that is not
    already a :class:`~repro.logic.terms.Variable` or
    :class:`~repro.logic.terms.Constant` is wrapped in a ``Constant``.
    """

    relation: str
    terms: Tuple[Term, ...] = field(default=())

    def __init__(self, relation: str, terms: Iterable[object] = ()) -> None:
        if not relation:
            raise LogicError("atom relation name must be non-empty")
        coerced = tuple(as_term(t) for t in terms)
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", coerced)
        object.__setattr__(
            self,
            "_variables",
            tuple(t for t in coerced if isinstance(t, Variable)),
        )

    @property
    def arity(self) -> int:
        """Number of terms in the atom."""
        return len(self.terms)

    def variables(self) -> Tuple[Variable, ...]:
        """All variables of the atom, in order, with duplicates."""
        return self._variables

    def variable_set(self) -> frozenset:
        """The set of distinct variables of the atom."""
        return frozenset(self.variables())

    def constants(self) -> Tuple[Constant, ...]:
        """All constants of the atom, in order, with duplicates."""
        return tuple(t for t in self.terms if isinstance(t, Constant))

    def is_ground(self) -> bool:
        """Return ``True`` if the atom contains no variables."""
        return all(isinstance(t, Constant) for t in self.terms)

    def rename(self, namespace: str) -> "Atom":
        """Move every variable of the atom into ``namespace``.

        Used to standardise queries apart before unification; constants
        are untouched.
        """
        renamed = tuple(
            t.qualified(namespace) if isinstance(t, Variable) else t
            for t in self.terms
        )
        return Atom(self.relation, renamed)

    def ground(self, assignment: Mapping[Variable, Hashable]) -> "GroundAtom":
        """Ground the atom under a total variable assignment.

        ``assignment`` maps variables to raw database values.  Raises
        :class:`~repro.errors.LogicError` if any variable is unassigned.
        """
        values = []
        for term in self.terms:
            if isinstance(term, Constant):
                values.append(term.value)
            else:
                if term not in assignment:
                    raise LogicError(f"variable {term} has no assigned value")
                values.append(assignment[term])
        return GroundAtom(self.relation, tuple(values))

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({inner})"

    def __repr__(self) -> str:
        return f"Atom({str(self)})"


@dataclass(frozen=True, slots=True)
class GroundAtom:
    """A fully grounded atom: relation name plus a tuple of raw values.

    Ground atoms are what Definition 1 of the paper quantifies over: the
    grounded postconditions of a coordinating set must be a subset of its
    grounded heads, and every grounded body atom must be a tuple of the
    database instance.
    """

    relation: str
    values: Tuple[Hashable, ...]

    def __str__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.relation}({inner})"


def atoms_variables(atoms: Sequence[Atom]) -> frozenset:
    """The set of distinct variables appearing in a list of atoms."""
    out: set = set()
    for atom in atoms:
        out.update(atom.variables())
    return frozenset(out)
