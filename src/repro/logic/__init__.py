"""Logic substrate: terms, atoms, substitutions, and unification.

This package provides the first-order machinery that entangled queries
are built from.  Terms are flat (no function symbols), which keeps
unification linear-time and occurs-check free.
"""

from .atoms import Atom, GroundAtom, atoms_variables
from .substitution import Substitution
from .terms import Constant, Term, Variable, as_term, const, is_constant, is_variable, var
from .unify import (
    apply_substitution,
    apply_substitution_all,
    standardize_apart,
    unifiable,
    unify_atom_lists,
    unify_atoms,
)

__all__ = [
    "Atom",
    "GroundAtom",
    "Constant",
    "Variable",
    "Term",
    "Substitution",
    "atoms_variables",
    "as_term",
    "const",
    "var",
    "is_constant",
    "is_variable",
    "unify_atoms",
    "unifiable",
    "unify_atom_lists",
    "standardize_apart",
    "apply_substitution",
    "apply_substitution_all",
]
