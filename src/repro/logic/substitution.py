"""Substitutions over flat terms, backed by a union–find structure.

Entangled queries contain only flat terms (variables and constants, no
function symbols), so unification never needs an occurs check.  A
substitution is an equivalence relation over variables where each
equivalence class may additionally be bound to at most one constant.
This is exactly a union–find forest whose roots optionally carry a
constant value.

The class is *persistent-friendly*: :meth:`copy` is cheap enough for the
backtracking used by the coordination algorithms, and all mutating
operations return ``bool`` success flags instead of raising, because
"these two things do not unify" is an expected outcome, not an error.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

from .terms import Constant, Term, Variable


class Substitution:
    """A most-general-unifier accumulator for flat terms.

    Internally maintains:

    * ``_parent`` — union–find parent pointers over variables,
    * ``_value`` — the constant bound to a class root, if any,
    * ``_rank`` — union-by-rank bookkeeping.

    The public API speaks in terms: :meth:`resolve` maps a term to its
    current representative (a constant if the class is bound, otherwise
    the root variable), :meth:`unify_terms` merges two terms, and
    :meth:`as_assignment` extracts a concrete variable→value mapping once
    every class is bound.
    """

    __slots__ = ("_parent", "_value", "_rank")

    def __init__(self) -> None:
        self._parent: Dict[Variable, Variable] = {}
        self._value: Dict[Variable, Constant] = {}
        self._rank: Dict[Variable, int] = {}

    # ------------------------------------------------------------------
    # Union–find internals
    # ------------------------------------------------------------------
    def _find(self, variable: Variable) -> Variable:
        """Find the class root of ``variable``, with path compression."""
        parent = self._parent
        if variable not in parent:
            parent[variable] = variable
            self._rank[variable] = 0
            return variable
        root = variable
        while parent[root] != root:
            root = parent[root]
        while parent[variable] != root:
            parent[variable], variable = root, parent[variable]
        return root

    def _union(self, a: Variable, b: Variable) -> bool:
        """Merge the classes of ``a`` and ``b``; fail on constant clash."""
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return True
        va, vb = self._value.get(ra), self._value.get(rb)
        if va is not None and vb is not None and va != vb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
            va, vb = vb, va
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        if va is None and vb is not None:
            self._value[ra] = vb
        self._value.pop(rb, None)
        return True

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def copy(self) -> "Substitution":
        """Return an independent copy (used for backtracking)."""
        dup = Substitution()
        dup._parent = dict(self._parent)
        dup._value = dict(self._value)
        dup._rank = dict(self._rank)
        return dup

    def resolve(self, term: Term) -> Term:
        """Return the current representative of ``term``.

        Constants resolve to themselves.  A variable resolves to the
        constant bound to its class if there is one, otherwise to the
        class root variable.
        """
        if isinstance(term, Constant):
            return term
        root = self._find(term)
        bound = self._value.get(root)
        return bound if bound is not None else root

    def value_of(self, variable: Variable) -> Optional[Hashable]:
        """The raw value bound to ``variable``'s class, or ``None``."""
        bound = self._value.get(self._find(variable))
        return bound.value if bound is not None else None

    def is_bound(self, variable: Variable) -> bool:
        """Return ``True`` if ``variable``'s class carries a constant."""
        return self._find(variable) in self._value

    def bind(self, variable: Variable, value: Hashable) -> bool:
        """Bind ``variable``'s class to a raw value; fail on clash."""
        return self.unify_terms(variable, Constant(value))

    def unify_terms(self, left: Term, right: Term) -> bool:
        """Merge two terms; return ``False`` if they cannot be equal."""
        left = self.resolve(left)
        right = self.resolve(right)
        if isinstance(left, Constant) and isinstance(right, Constant):
            return left == right
        if isinstance(left, Constant):
            left, right = right, left
        # left is now a variable.
        assert isinstance(left, Variable)
        if isinstance(right, Constant):
            root = self._find(left)
            existing = self._value.get(root)
            if existing is not None:
                return existing == right
            self._value[root] = right
            return True
        return self._union(left, right)

    def same_class(self, a: Term, b: Term) -> bool:
        """Return ``True`` if the two terms are already forced equal."""
        ra, rb = self.resolve(a), self.resolve(b)
        return ra == rb

    def variables(self) -> Iterator[Variable]:
        """Iterate over every variable the substitution has seen."""
        return iter(self._parent)

    def as_assignment(
        self, variables: Optional[Iterable[Variable]] = None
    ) -> Dict[Variable, Hashable]:
        """Extract a variable→value mapping for bound variables.

        If ``variables`` is given, only those variables are reported
        (unbound ones are silently skipped); otherwise all bound
        variables known to the substitution are reported.
        """
        targets = self._parent.keys() if variables is None else variables
        out: Dict[Variable, Hashable] = {}
        for variable in targets:
            bound = self._value.get(self._find(variable))
            if bound is not None:
                out[variable] = bound.value
        return out

    def unbound_roots(self, variables: Iterable[Variable]) -> Tuple[Variable, ...]:
        """Distinct class roots among ``variables`` with no bound value."""
        seen = []
        seen_set = set()
        for variable in variables:
            root = self._find(variable)
            if root in self._value or root in seen_set:
                continue
            seen_set.add(root)
            seen.append(root)
        return tuple(seen)

    def merge(self, other: "Substitution") -> bool:
        """Merge all constraints of ``other`` into this substitution.

        Returns ``False`` (leaving ``self`` in an unspecified but safe
        state; callers should discard it) when the two substitutions are
        incompatible.  Use on a :meth:`copy` when failure must not
        destroy the original.
        """
        for variable in list(other._parent):
            root = other._find(variable)
            if variable != root and not self._union(variable, root):
                return False
            bound = other._value.get(root)
            if bound is not None and not self.unify_terms(root, bound):
                return False
        return True

    @classmethod
    def from_mapping(cls, mapping: Mapping[Variable, Hashable]) -> "Substitution":
        """Build a substitution from a concrete variable→value mapping."""
        sub = cls()
        for variable, value in mapping.items():
            if not sub.bind(variable, value):
                raise ValueError(f"conflicting binding for {variable}")
        return sub

    def __len__(self) -> int:
        return len(self._parent)

    def __repr__(self) -> str:
        parts = []
        roots: Dict[Variable, list] = {}
        for variable in self._parent:
            roots.setdefault(self._find(variable), []).append(variable)
        for root, members in roots.items():
            bound = self._value.get(root)
            names = "=".join(sorted(str(m) for m in members))
            if bound is not None:
                parts.append(f"{names}={bound}")
            elif len(members) > 1:
                parts.append(names)
        inner = ", ".join(sorted(parts))
        return f"Substitution({inner})"
