"""Directed scale-free graph generation (Barabási–Albert style).

The paper's second and third experiments (Figures 5 and 6) derive each
query's coordination partners from its successors in a directed
scale-free network, citing Barabási & Albert [1] as "a reasonable model
of social networks": in-degrees follow a power law, with few highly
popular nodes and a long tail.

We implement directed preferential attachment: nodes arrive one at a
time; each new node draws ``out_degree`` targets among existing nodes
with probability proportional to ``in_degree + 1`` (the +1 smoothing
lets fresh nodes ever be chosen).  The repeated-target draw is rejected
so out-neighbourhoods are sets, matching how partner lists behave.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set

from ..errors import GraphError
from ..graphs import DiGraph


def scale_free_digraph(
    nodes: int,
    out_degree: int = 2,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> DiGraph:
    """Generate a directed scale-free graph on ``nodes`` vertices (0..n-1).

    Each arriving node links to ``min(out_degree, #existing)`` distinct
    existing nodes chosen by preferential attachment on in-degree.
    Node 0 has no outgoing edges (there is nothing earlier to cite),
    mirroring the "last query needs nobody" structure the paper's list
    experiment also uses.
    """
    if nodes < 1:
        raise GraphError("scale-free graph needs at least one node")
    if out_degree < 1:
        raise GraphError("out_degree must be >= 1")
    generator = rng if rng is not None else random.Random(seed)

    graph = DiGraph()
    graph.add_node(0)
    # repeated-nodes list: node i appears (in_degree(i) + 1) times.
    attachment: List[int] = [0]
    for new in range(1, nodes):
        graph.add_node(new)
        wanted = min(out_degree, new)
        targets: Set[int] = set()
        # Rejection sampling over the attachment multiset.
        guard = 0
        while len(targets) < wanted and guard < 50 * (wanted + 1):
            targets.add(generator.choice(attachment))
            guard += 1
        # Degenerate fallback (tiny graphs): fill with arbitrary nodes.
        fill = 0
        while len(targets) < wanted:
            targets.add(fill)
            fill += 1
        for target in sorted(targets):
            graph.add_edge(new, target)
            attachment.append(target)
        attachment.append(new)
    return graph


def in_degree_sequence(graph: DiGraph) -> List[int]:
    """Sorted (descending) in-degree sequence — power-law shaped for
    scale-free graphs; tests check heavy-tailedness."""
    return sorted((graph.in_degree(n) for n in graph.nodes()), reverse=True)


def degree_tail_ratio(graph: DiGraph, top_fraction: float = 0.1) -> float:
    """Share of total in-degree held by the top ``top_fraction`` nodes.

    A crude heavy-tail statistic: uniform-degree graphs score near
    ``top_fraction``; preferential-attachment graphs score well above.
    """
    degrees = in_degree_sequence(graph)
    total = sum(degrees)
    if total == 0:
        return 0.0
    top = max(1, int(len(degrees) * top_fraction))
    return sum(degrees[:top]) / total
