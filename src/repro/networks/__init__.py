"""Synthetic social networks and graph generators for workloads."""

from .random_graphs import (
    complete_digraph,
    gnp_digraph,
    list_digraph,
    ring_digraph,
    star_digraph,
)
from .scale_free import degree_tail_ratio, in_degree_sequence, scale_free_digraph
from .social import (
    SLASHDOT_SIZE,
    add_friend_table,
    member_name,
    slashdot_like_members,
    slashdot_like_network,
)

__all__ = [
    "SLASHDOT_SIZE",
    "add_friend_table",
    "complete_digraph",
    "degree_tail_ratio",
    "gnp_digraph",
    "in_degree_sequence",
    "list_digraph",
    "member_name",
    "ring_digraph",
    "scale_free_digraph",
    "slashdot_like_members",
    "slashdot_like_network",
    "star_digraph",
]
