"""A synthetic Slashdot-like social network and member table.

The paper's SCC-algorithm experiments (Section 6.1) query a table built
from the Slashdot social-network dataset with **82 168 entries**.  The
dataset itself is not redistributable here, so this module generates a
synthetic equivalent (documented substitution — see DESIGN.md §4):

* the same cardinality by default;
* user names ``user00000 ...`` with a handful of profile attributes so
  that query bodies have something to select on;
* a companion directed friendship edge list with a power-law degree
  distribution (via :func:`repro.networks.scale_free.scale_free_digraph`),
  matching the qualitative structure of the original signed network.

The SCC experiments only require (a) a large member table in which every
query body is satisfiable and (b) realistic partner-selection structure;
both are preserved.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..db import Database, DatabaseBuilder
from ..graphs import DiGraph
from .scale_free import scale_free_digraph

SLASHDOT_SIZE = 82_168

_REGIONS = ("NA", "EU", "AS", "SA", "AF", "OC")
_INTERESTS = ("games", "science", "linux", "apple", "hardware", "politics")


def member_name(index: int) -> str:
    """Canonical synthetic user name for ``index``."""
    return f"user{index:05d}"


def slashdot_like_members(
    size: int = SLASHDOT_SIZE,
    seed: int = 2012,
) -> Database:
    """A member table of the Slashdot dataset's cardinality.

    Schema: ``Members(username, region, interest, karma)`` with
    ``username`` as key.  Attribute values are drawn deterministically
    from the seed, so benchmark databases are identical run-to-run.
    """
    rng = random.Random(seed)
    builder = DatabaseBuilder()
    builder.table(
        "Members", ["username", "region", "interest", "karma"], key="username"
    )
    rows: List[Tuple[str, str, str, int]] = []
    for index in range(size):
        rows.append(
            (
                member_name(index),
                rng.choice(_REGIONS),
                rng.choice(_INTERESTS),
                rng.randrange(0, 100),
            )
        )
    builder.rows("Members", rows)
    return builder.build()


def slashdot_like_network(
    users: int,
    out_degree: int = 3,
    seed: int = 2012,
) -> DiGraph:
    """A directed power-law friendship graph over ``users`` members.

    Node ``i`` corresponds to :func:`member_name`\\ ``(i)``.
    """
    return scale_free_digraph(users, out_degree=out_degree, seed=seed)


def add_friend_table(
    db: Database,
    graph: DiGraph,
    relation: str = "Friends",
) -> int:
    """Materialise a friendship graph as a ``(user, friend)`` relation.

    Returns the number of edges inserted.  Node indexes are translated
    through :func:`member_name`.
    """
    if relation not in db:
        db.create_relation(relation, ["user", "friend"])
    count = 0
    for source, target in graph.edges():
        count += db.insert(relation, (member_name(source), member_name(target)))
    return count
